//! Two-node high-availability cluster (Sun-style): where does the
//! downtime actually come from, and what is a faster failover worth?
//!
//! Run with `cargo run --example ha_cluster`.

use reliab::core::Error;
use reliab::markov::sensitivity;
use reliab::models::cluster::{cluster_availability, cluster_ctmc, ClusterParams};

fn main() -> Result<(), Error> {
    let p = ClusterParams::default();
    let r = cluster_availability(&p)?;
    println!("two-node HA cluster (node MTTF 4000 h, repair 4 h, coverage 0.95, failover 30 s)");
    println!(
        "  availability: {:.8} ({:.2} min/yr)",
        r.availability, r.downtime_min_per_year
    );
    println!("  downtime decomposition:");
    println!(
        "    failover switching : {:>5.1}%",
        100.0 * r.downtime_share_failover
    );
    println!(
        "    uncovered failures : {:>5.1}%",
        100.0 * r.downtime_share_uncovered
    );
    println!(
        "    double failures    : {:>5.1}%",
        100.0 * r.downtime_share_double
    );

    // What is each knob worth? Elasticities of availability.
    println!("\nelasticity of availability (x/A · dA/dx):");
    for (name, f) in [
        (
            "coverage",
            Box::new(|x: f64| {
                Ok(cluster_availability(&ClusterParams { coverage: x, ..p })?.availability)
            }) as Box<dyn Fn(f64) -> Result<f64, Error>>,
        ),
        (
            "failover_rate",
            Box::new(|x: f64| {
                Ok(cluster_availability(&ClusterParams {
                    failover_rate: x,
                    ..p
                })?
                .availability)
            }),
        ),
        (
            "repair rate mu",
            Box::new(
                |x: f64| Ok(cluster_availability(&ClusterParams { mu: x, ..p })?.availability),
            ),
        ),
    ] {
        let x0 = match name {
            "coverage" => p.coverage,
            "failover_rate" => p.failover_rate,
            _ => p.mu,
        };
        let s = sensitivity(f, x0, 1e-6)?;
        println!("  {name:<14}: {:+.3e}", s.elasticity);
    }

    // Transient: probability the service is down at time t after a
    // cold start (all up), from the underlying CTMC.
    let (ctmc, st) = cluster_ctmc(&p)?;
    let init = ctmc.point_mass(st.up2);
    println!("\nP(service down at t):");
    for &t in &[1.0, 10.0, 100.0, 1000.0, 10_000.0] {
        let pi = ctmc.transient(&init, t)?;
        let down = pi[st.failover.index()] + pi[st.uncovered.index()] + pi[st.down.index()];
        println!("  t = {t:>7.0} h: {down:.3e}");
    }
    Ok(())
}
