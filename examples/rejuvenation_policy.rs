//! Software rejuvenation: sweep the rejuvenation interval, print the
//! U-shaped downtime curve, and locate the optimum — the tutorial's
//! aging-software MRGP example.
//!
//! Run with `cargo run --example rejuvenation_policy`.

use reliab::core::Error;
use reliab::models::rejuv::{
    optimal_rejuvenation, rejuvenation_downtime, rejuvenation_measures, RejuvParams,
};

fn main() -> Result<(), Error> {
    let p = RejuvParams::default();
    println!(
        "aging: robust {} h -> failure-probable {} h; recovery {} h, rejuvenation {:.2} h\n",
        p.robust_mean, p.failure_prone_mean, p.recovery_time, p.rejuvenation_time
    );
    println!(
        "{:>10} {:>14} {:>16} {:>12}",
        "delta (h)", "availability", "downtime (m/yr)", "P(crash)"
    );
    for &delta in &[24.0, 72.0, 168.0, 336.0, 720.0, 2160.0, 8760.0] {
        let m = rejuvenation_measures(&p, delta)?;
        println!(
            "{delta:>10.0} {:>14.7} {:>16.1} {:>12.4}",
            m.availability,
            rejuvenation_downtime(&p, delta)?,
            m.failure_probability
        );
    }
    let (d_opt, m_opt) = optimal_rejuvenation(&p, 4.0, 8760.0)?;
    println!(
        "\noptimal interval: {:.1} h -> availability {:.7} ({:.1} min/yr downtime)",
        d_opt,
        m_opt.availability,
        rejuvenation_downtime(&p, d_opt)?
    );
    Ok(())
}
