//! Fault-tree analysis of the tutorial's fault-tolerant
//! multiprocessor: top-event probability, minimal cut sets, importance
//! ranking, and a coverage-sensitivity sweep on the companion Markov
//! model.
//!
//! Run with `cargo run --example multiprocessor_analysis`.

use reliab::core::Error;
use reliab::models::multiproc::{
    coverage_ctmc, multiproc_fault_tree, multiproc_probs, MultiprocParams,
};

fn main() -> Result<(), Error> {
    let params = MultiprocParams::default();
    let (mut ft, events) = multiproc_fault_tree(&params)?;
    let probs = multiproc_probs(&params);

    let q_top = ft.top_event_probability(&probs)?;
    println!("multiprocessor fault tree (2 CPUs, 2-of-3 memories, bus)");
    println!("  top-event probability: {q_top:.6e}");
    println!("  BDD size: {} nodes\n", ft.bdd_size());

    println!("minimal cut sets:");
    for cut in ft.minimal_cut_sets(10_000)? {
        let names: Vec<&str> = cut.events().iter().map(|&e| ft.event_name(e)).collect();
        println!("  {{{}}}", names.join(", "));
    }

    println!("\nimportance measures:");
    println!(
        "  {:<10} {:>10} {:>12} {:>16}",
        "event", "birnbaum", "criticality", "fussell-vesely"
    );
    let mut imp = ft.importance(&probs)?;
    imp.sort_by(|a, b| b.birnbaum.partial_cmp(&a.birnbaum).expect("finite"));
    for m in &imp {
        println!(
            "  {:<10} {:>10.5} {:>12.5} {:>16.5}",
            m.component, m.birnbaum, m.criticality, m.fussell_vesely
        );
    }
    let _ = events;

    println!("\nMTTF vs failover coverage (2 CPUs, lambda = 1e-3/h, no repair):");
    println!("  {:>9} {:>12}", "coverage", "MTTF (h)");
    for &c in &[0.90, 0.95, 0.99, 0.999, 1.0] {
        let (ctmc, s2, _, sf) = coverage_ctmc(1e-3, c, None)?;
        let mttf = ctmc.mttf(&ctmc.point_mass(s2), &[sf])?;
        println!("  {c:>9.3} {mttf:>12.1}");
    }
    Ok(())
}
