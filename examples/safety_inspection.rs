//! Periodic inspection of a standby safety system with latent
//! failures: how often should you test the emergency generator?
//!
//! Run with `cargo run --example safety_inspection`.

use reliab::core::Error;
use reliab::dist::Weibull;
use reliab::semimarkov::renewal::{inspection_measures, optimal_inspection_interval};

fn main() -> Result<(), Error> {
    // Emergency generator: wear-out failures (Weibull shape 2, scale
    // 4000 h ≈ 5.5-month characteristic life), failures are LATENT —
    // nobody notices until the next test. A test takes the generator
    // offline for 2 h; a discovered failure takes 48 h to repair.
    let ttf = Weibull::new(2.0, 4000.0)?;
    let (inspection_time, repair_time) = (2.0, 48.0);

    println!("standby generator: Weibull(2, 4000h) TTF, 2h tests, 48h repairs\n");
    println!(
        "{:>12} {:>14} {:>20} {:>14}",
        "test every", "availability", "mean undetected (h)", "cycle (h)"
    );
    for &tau in &[24.0, 168.0, 720.0, 2190.0, 8760.0] {
        let m = inspection_measures(&ttf, tau, inspection_time, repair_time)?;
        let label = match tau as u64 {
            24 => "day",
            168 => "week",
            720 => "month",
            2190 => "quarter",
            _ => "year",
        };
        println!(
            "{label:>12} {:>14.6} {:>20.1} {:>14.0}",
            m.availability, m.mean_detection_delay, m.cycle_length
        );
    }

    let (tau_opt, m_opt) =
        optimal_inspection_interval(&ttf, inspection_time, repair_time, 4.0, 20_000.0)?;
    println!(
        "\noptimal test interval: {:.0} h (~{:.0} days) -> availability {:.6}",
        tau_opt,
        tau_opt / 24.0,
        m_opt.availability
    );
    println!(
        "mean undetected-failure exposure at the optimum: {:.1} h",
        m_opt.mean_detection_delay
    );

    // Sensitivity: a cheaper (faster) test moves the optimum earlier.
    let (tau_fast, _) = optimal_inspection_interval(&ttf, 0.25, repair_time, 4.0, 20_000.0)?;
    println!(
        "with a 15-minute test instead: optimal interval {:.0} h (test more often)",
        tau_fast
    );
    assert!(tau_fast < tau_opt);
    Ok(())
}
