//! Periodic inspection of a standby safety system with latent
//! failures: how often should you test the emergency generator? —
//! then the inspected generators feed a site-blackout fault tree
//! solved under explicit BDD variable-ordering hints.
//!
//! Run with `cargo run --example safety_inspection`.

use reliab::core::Error;
use reliab::dist::Weibull;
use reliab::semimarkov::renewal::{inspection_measures, optimal_inspection_interval};
use reliab::spec::{solve_str_with, SolveOptions, VarOrder};

fn main() -> Result<(), Error> {
    // Emergency generator: wear-out failures (Weibull shape 2, scale
    // 4000 h ≈ 5.5-month characteristic life), failures are LATENT —
    // nobody notices until the next test. A test takes the generator
    // offline for 2 h; a discovered failure takes 48 h to repair.
    let ttf = Weibull::new(2.0, 4000.0)?;
    let (inspection_time, repair_time) = (2.0, 48.0);

    println!("standby generator: Weibull(2, 4000h) TTF, 2h tests, 48h repairs\n");
    println!(
        "{:>12} {:>14} {:>20} {:>14}",
        "test every", "availability", "mean undetected (h)", "cycle (h)"
    );
    for &tau in &[24.0, 168.0, 720.0, 2190.0, 8760.0] {
        let m = inspection_measures(&ttf, tau, inspection_time, repair_time)?;
        let label = match tau as u64 {
            24 => "day",
            168 => "week",
            720 => "month",
            2190 => "quarter",
            _ => "year",
        };
        println!(
            "{label:>12} {:>14.6} {:>20.1} {:>14.0}",
            m.availability, m.mean_detection_delay, m.cycle_length
        );
    }

    let (tau_opt, m_opt) =
        optimal_inspection_interval(&ttf, inspection_time, repair_time, 4.0, 20_000.0)?;
    println!(
        "\noptimal test interval: {:.0} h (~{:.0} days) -> availability {:.6}",
        tau_opt,
        tau_opt / 24.0,
        m_opt.availability
    );
    println!(
        "mean undetected-failure exposure at the optimum: {:.1} h",
        m_opt.mean_detection_delay
    );

    // Sensitivity: a cheaper (faster) test moves the optimum earlier.
    let (tau_fast, _) = optimal_inspection_interval(&ttf, 0.25, repair_time, 4.0, 20_000.0)?;
    println!(
        "with a 15-minute test instead: optimal interval {:.0} h (test more often)",
        tau_fast
    );
    assert!(tau_fast < tau_opt);

    // The inspected generators now feed a system model: site blackout
    // requires a grid outage AND loss of the emergency supply (both
    // generators unavailable, or the transfer switchgear stuck). Each
    // generator's unavailability is what the optimal test policy above
    // leaves behind. The spec carries a `var_order` hint, and
    // `SolveOptions::with_var_order` can override it per solve —
    // `VarOrder::Input` reproduces the historical declaration-order
    // compile, `Auto` defers to the spec/heuristic.
    let q_gen = 1.0 - m_opt.availability;
    let blackout_spec = format!(
        r#"{{
          "fault_tree": {{
            "var_order": "dfs",
            "events": [
              {{"name": "grid-outage", "probability": 2.7e-4}},
              {{"name": "gen-a-unavailable", "probability": {q_gen:.9}}},
              {{"name": "gen-b-unavailable", "probability": {q_gen:.9}}},
              {{"name": "switchgear-stuck", "probability": 1.0e-5}}
            ],
            "top": {{"and": [
              "grid-outage",
              {{"or": [
                {{"and": ["gen-a-unavailable", "gen-b-unavailable"]}},
                "switchgear-stuck"
              ]}}
            ]}}
          }}
        }}"#
    );

    println!("\nsite-blackout fault tree (generator unavailability {q_gen:.6}):");
    println!(
        "{:>10} {:>16} {:>10}",
        "ordering", "P(blackout)", "bdd nodes"
    );
    let mut reference = None;
    for order in [VarOrder::Auto, VarOrder::Input, VarOrder::Sift] {
        let opts = SolveOptions::default()
            .with_var_order(order)
            .with_gc_node_threshold(1 << 14);
        let report = solve_str_with(&blackout_spec, &opts)?;
        let q = report.measures.unreliability().expect("fault-tree measure");
        println!(
            "{:>10} {q:>16.3e} {:>10}",
            order.as_str(),
            report.stats.bdd_nodes.unwrap_or(0)
        );
        // The ordering changes the BDD shape, never the function.
        let q0 = *reference.get_or_insert(q);
        assert!((q - q0).abs() <= 1e-15);
    }
    Ok(())
}
