//! Boeing-787-style bounding workflow on a mesh reliability graph:
//! enumerate minimal cut sets up to a truncation order and bracket the
//! network unreliability, comparing against the exact value where it
//! is still computable.
//!
//! Run with `cargo run --example network_bounds`.

use reliab::core::Error;
use reliab::models::crn::{crn_bounds_sweep, crn_exact_unreliability, crn_mesh};

fn main() -> Result<(), Error> {
    let g = crn_mesh(3, 4)?;
    let q = 1e-3; // per-edge failure probability
    println!(
        "mesh current-return network: {} nodes, {} edges, q = {q}\n",
        g.num_nodes(),
        g.num_edges()
    );
    let exact = crn_exact_unreliability(&g, q)?;
    println!("exact unreliability (BDD): {exact:.6e}\n");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>12}",
        "order", "cut sets", "lower", "upper", "gap"
    );
    for row in crn_bounds_sweep(&g, q, &[2, 3, 4, 5])? {
        println!(
            "{:>6} {:>10} {:>14.6e} {:>14.6e} {:>12.2e}",
            row.max_order,
            row.cut_sets_used,
            row.bounds.lower,
            row.bounds.upper,
            row.bounds.gap()
        );
        assert!(row.bounds.lower <= exact + 1e-15 && exact <= row.bounds.upper + 1e-15);
    }
    println!("\nevery bracket contains the exact value ✓");
    Ok(())
}
