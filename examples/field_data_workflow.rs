//! The field-data workflow end to end: raw observed lifetimes →
//! empirical statistics → two-moment phase-type fit → semi-Markov
//! model → phase-type expansion into a CTMC for transient analysis →
//! simulation cross-check — the "non-exponential distributions"
//! chapter of the tutorial in one program.
//!
//! Run with `cargo run --example field_data_workflow`.

use reliab::core::Error;
use reliab::dist::{Empirical, Lifetime};
use reliab::semimarkov::{SemiMarkovBuilder, SmpStateId};
use reliab::sim::SystemSimulator;

fn main() -> Result<(), Error> {
    // --- 1. "Field data": synthetic but realistic observations -------
    // TTF: wear-out-ish, around 900 h; TTR: skewed, most repairs fast,
    // a few very slow.
    let ttf_obs: Vec<f64> = (0..240)
        .map(|i| {
            let u = (i as f64 + 0.5) / 240.0;
            // Weibull(2, 1000) quantiles as a stand-in for real data.
            1000.0 * (-(1.0 - u).ln()).powf(0.5)
        })
        .collect();
    let ttr_obs: Vec<f64> = (0..240)
        .map(|i| {
            let u = (i as f64 + 0.5) / 240.0;
            // Lognormal-ish: exp(1 + 1.2 z) via rough normal quantile.
            let z = (u - 0.5) * 5.0; // crude but monotone spread
            (1.0 + 0.6 * z).exp()
        })
        .collect();

    let ttf = Empirical::from_samples(&ttf_obs)?;
    let ttr = Empirical::from_samples(&ttr_obs)?;
    println!(
        "observed TTF: mean {:.1} h, cv² {:.3}",
        ttf.mean(),
        ttf.sample_cv2()
    );
    println!(
        "observed TTR: mean {:.2} h, cv² {:.3}",
        ttr.mean(),
        ttr.sample_cv2()
    );

    // --- 2. Fit tractable laws matching two moments -------------------
    let ttf_fit = ttf.fit()?;
    let ttr_fit = ttr.fit()?;
    let label = |f: &reliab::dist::TwoMomentFit| match f {
        reliab::dist::TwoMomentFit::Exponential(_) => "exponential",
        reliab::dist::TwoMomentFit::Erlang(_) => "Erlang",
        reliab::dist::TwoMomentFit::ErlangMixture(_) => "Erlang mixture (PH)",
        reliab::dist::TwoMomentFit::HyperExponential(_) => "hyperexponential",
    };
    println!(
        "fitted: TTF -> {}, TTR -> {}",
        label(&ttf_fit),
        label(&ttr_fit)
    );
    let analytic_availability = ttf.mean() / (ttf.mean() + ttr.mean());

    // --- 3. Semi-Markov model on the fitted laws ----------------------
    let mut b = SemiMarkovBuilder::new();
    let up = b.state("up", ttf_fit.into_lifetime());
    let down = b.state("down", ttr_fit.into_lifetime());
    b.transition(up, down, 1.0)?;
    b.transition(down, up, 1.0)?;
    let smp = b.build()?;
    let pi = smp.steady_state()?;
    println!(
        "\nsteady state: SMP availability {:.6} (renewal closed form {:.6})",
        pi[up.index()],
        analytic_availability
    );

    // --- 4. Phase-type expansion: transient availability --------------
    let exp = smp.expand_to_ctmc(SmpStateId::from_index(up.index()))?;
    println!(
        "phase-type expansion: {} CTMC states",
        exp.ctmc.num_states()
    );
    let p0 = exp.entry_distribution(up);
    println!("A(t) from the expanded CTMC:");
    for &t in &[100.0, 400.0, 1000.0, 4000.0, 20_000.0] {
        let dist = exp.ctmc.transient(&p0, t)?;
        let a_t = exp.aggregate(&dist)[up.index()];
        println!("  t = {t:>7.0} h: {a_t:.6}");
    }

    // --- 5. Simulation cross-check on the *empirical* laws ------------
    let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
    sim.component(Box::new(ttf), Box::new(ttr));
    let est = sim.availability(300_000.0, 24, 31)?;
    println!(
        "\nsimulated availability on raw data: {:.6} (95% CI [{:.6}, {:.6}])",
        est.interval.point, est.interval.lower, est.interval.upper
    );
    assert!(est.interval.contains(pi[up.index()]));
    println!("simulation confirms the fitted model ✓");
    Ok(())
}
