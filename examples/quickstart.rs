//! Quickstart: model a small redundant system three ways — RBD,
//! Markov chain, and simulation — and watch the answers agree.
//!
//! Run with `cargo run --example quickstart`.

use reliab::core::{downtime_minutes_per_year, Error};
use reliab::dist::Exponential;
use reliab::markov::CtmcBuilder;
use reliab::rbd::{Block, RbdBuilder};
use reliab::sim::SystemSimulator;

fn main() -> Result<(), Error> {
    // A database node: two replicated servers (either suffices) in
    // series with one storage array.
    let server_mttf = 2_000.0; // hours
    let server_mttr = 8.0;
    let storage_mttf = 10_000.0;
    let storage_mttr = 4.0;

    let a_server = server_mttf / (server_mttf + server_mttr);
    let a_storage = storage_mttf / (storage_mttf + storage_mttr);

    // --- 1. Reliability block diagram (non-state-space, exact under
    //        independent repair) -------------------------------------
    let mut b = RbdBuilder::new();
    let s1 = b.component("server-1");
    let s2 = b.component("server-2");
    let st = b.component("storage");
    let rbd = b.build(Block::series(vec![
        Block::parallel_of(&[s1, s2]),
        st.into(),
    ]))?;
    let a_rbd = rbd.availability(&[a_server, a_server, a_storage])?;

    // --- 2. The same system as a CTMC --------------------------------
    let (ls, ms) = (1.0 / server_mttf, 1.0 / server_mttr);
    let (lt, mt) = (1.0 / storage_mttf, 1.0 / storage_mttr);
    let mut cb = CtmcBuilder::new();
    let mut states = Vec::new();
    // State = (failed servers 0..=2, storage up?).
    for f in 0..=2u32 {
        for up in [true, false] {
            states.push(cb.state(&format!("s{f}-{}", if up { "up" } else { "dn" })));
        }
    }
    let idx = |f: u32, up: bool| (f * 2 + u32::from(!up)) as usize;
    for f in 0..=2u32 {
        for up in [true, false] {
            let from = states[idx(f, up)];
            if f < 2 {
                cb.transition(from, states[idx(f + 1, up)], f64::from(2 - f) * ls)?;
            }
            if f > 0 {
                cb.transition(from, states[idx(f - 1, up)], f64::from(f) * ms)?;
            }
            if up {
                cb.transition(from, states[idx(f, false)], lt)?;
            } else {
                cb.transition(from, states[idx(f, true)], mt)?;
            }
        }
    }
    let ctmc = cb.build()?;
    let up_states = [states[idx(0, true)], states[idx(1, true)]];
    let a_ctmc = ctmc.steady_state_probability_of(&up_states)?;

    // --- 3. Discrete-event simulation cross-check --------------------
    let mut sim = SystemSimulator::new(|s: &[bool]| (s[0] || s[1]) && s[2]);
    for _ in 0..2 {
        sim.component(
            Box::new(Exponential::new(ls)?),
            Box::new(Exponential::new(ms)?),
        );
    }
    sim.component(
        Box::new(Exponential::new(lt)?),
        Box::new(Exponential::new(mt)?),
    );
    let a_sim = sim.availability(200_000.0, 16, 2024)?;

    println!("steady-state availability of the database node");
    println!("  RBD (exact):        {a_rbd:.9}");
    println!("  CTMC (exact):       {a_ctmc:.9}");
    println!(
        "  simulation:         {:.6} (95% CI [{:.6}, {:.6}])",
        a_sim.interval.point, a_sim.interval.lower, a_sim.interval.upper
    );
    println!(
        "  downtime:           {:.2} minutes/year",
        downtime_minutes_per_year(a_rbd)?
    );

    assert!((a_rbd - a_ctmc).abs() < 1e-10);
    // A 95% CI misses the true value for ~1 seed in 20 by design, so
    // accept anything within three half-widths of the exact answer.
    let slack = 3.0 * a_sim.interval.half_width().max(1e-6);
    assert!(
        (a_sim.interval.point - a_rbd).abs() < slack,
        "simulation {} vs exact {a_rbd}",
        a_sim.interval.point
    );
    println!("\nall three routes agree ✓");
    Ok(())
}
