//! Hierarchical availability of a carrier-class router with a
//! downtime budget table and parameter-uncertainty interval — the
//! Cisco-style workflow from the tutorial.
//!
//! Run with `cargo run --example router_budget`.

use reliab::core::Error;
use reliab::models::router::{router_availability, RouterParams};
use reliab::uncert::{propagate, rate_posterior, PropagationOptions};

fn main() -> Result<(), Error> {
    let params = RouterParams::default();
    let report = router_availability(&params)?;

    println!("downtime budget (minutes/year)");
    println!(
        "  {:<18} {:>12} {:>14}",
        "subsystem", "availability", "downtime"
    );
    for row in &report.subsystems {
        println!(
            "  {:<18} {:>12.7} {:>14.3}",
            row.name, row.availability, row.downtime_min_per_year
        );
    }
    println!(
        "  {:<18} {:>12.7} {:>14.3}",
        "TOTAL", report.system_availability, report.system_downtime_min_per_year
    );

    // How sure are we? The route-processor failure rate is estimated
    // from, say, 5 field failures over 150k unit-hours; propagate that
    // epistemic uncertainty through the whole hierarchy.
    let posterior = rate_posterior(5, 150_000.0)?;
    let result = propagate(
        &[Box::new(posterior)],
        move |p| {
            let perturbed = RouterParams {
                rp_lambda: p[0],
                ..params
            };
            Ok(router_availability(&perturbed)?.system_downtime_min_per_year)
        },
        &PropagationOptions {
            samples: 4000,
            ..Default::default()
        },
    )?;
    println!(
        "\ntotal downtime with rp_lambda uncertainty (5 failures / 150kh):\n  \
         mean {:.3} min/yr, 95% CI [{:.3}, {:.3}]",
        result.mean, result.interval.lower, result.interval.upper
    );
    Ok(())
}
