//! Batch-solve every specification in `specs/` through the parallel
//! engine, then compare a single model's CTMC steady-state methods via
//! `SolveOptions`.
//!
//! ```bash
//! cargo run --example batch_solving
//! ```

use reliab::engine::BatchEngine;
use reliab::spec::{solve_str_with, SolveOptions, SteadySolver};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Load every shipped spec document.
    let dir = format!("{}/specs", env!("CARGO_MANIFEST_DIR"));
    let mut paths: Vec<_> = std::fs::read_dir(&dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    paths.sort();
    let texts: Vec<String> = paths
        .iter()
        .map(std::fs::read_to_string)
        .collect::<Result<_, _>>()?;

    // Fan out across the thread pool; results come back in input
    // order and are bitwise identical to solving sequentially.
    let engine = BatchEngine::new().with_jobs(0); // 0 = one per CPU
    let reports = engine.solve_texts(&texts);
    println!("batch of {} specs:", reports.len());
    for (path, report) in paths.iter().zip(&reports) {
        let name = path.file_name().unwrap().to_string_lossy();
        match report {
            Ok(r) => println!(
                "  {name:<24} availability={:?}  ({} iterations, {:.3} ms)",
                r.measures.availability(),
                r.stats.iterations,
                r.stats.wall_time.as_secs_f64() * 1e3,
            ),
            Err(e) => println!("  {name:<24} failed: {e}"),
        }
    }
    let stats = engine.last_stats();
    println!(
        "engine: {} solved, {} memo hits, {} errors\n",
        stats.solved, stats.memo_hits, stats.errors
    );

    // The same CTMC under each steady-state method.
    let ctmc = std::fs::read_to_string(format!("{dir}/two_component.json"))?;
    for method in [
        SteadySolver::Auto,
        SteadySolver::Gth,
        SteadySolver::Sor,
        SteadySolver::Power,
    ] {
        let opts = SolveOptions::default().with_steady_solver(method);
        let report = solve_str_with(&ctmc, &opts)?;
        println!(
            "two_component via {:>5}: availability={:.12}  residual={:?}",
            report.stats.method.unwrap_or("?"),
            report.measures.availability().unwrap(),
            report.stats.residual,
        );
    }
    Ok(())
}
