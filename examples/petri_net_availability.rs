//! Stochastic-reward-net modeling: a two-component repairable system
//! with one repair crew and failover routing, described as a Petri net
//! instead of a hand-enumerated CTMC — the tutorial's "let the tool
//! generate the state space" workflow.
//!
//! Run with `cargo run --example petri_net_availability`.

use reliab::core::{downtime_minutes_per_year, Error};
use reliab::models::two_comp::{two_component_availability, RepairPolicy};
use reliab::spn::SpnBuilder;

fn main() -> Result<(), Error> {
    let (lambda, mu) = (0.01, 1.0);

    // Places: tokens in "up" are working units, tokens in "broken" are
    // waiting for the single crew, a token in "in-repair" is on the
    // bench.
    let mut b = SpnBuilder::new();
    let up = b.place("up", 2);
    let broken = b.place("broken", 0);
    let in_repair = b.place("in-repair", 0);

    // Failures: each working unit fails at rate lambda => marking-
    // dependent rate #up * lambda.
    let fail = b.timed_fn("fail", move |m: &Vec<u32>| f64::from(m[0]) * lambda);
    b.input_arc(fail, up, 1);
    b.output_arc(fail, broken, 1);

    // The crew picks up a broken unit immediately when free.
    let start_repair = b.immediate("start-repair", 1.0, 0);
    b.input_arc(start_repair, broken, 1);
    b.output_arc(start_repair, in_repair, 1);
    b.inhibitor_arc(start_repair, in_repair, 1); // crew busy => wait

    // Repair completes at rate mu.
    let finish = b.timed("finish-repair", mu);
    b.input_arc(finish, in_repair, 1);
    b.output_arc(finish, up, 1);

    let spn = b.build()?;
    let solved = spn.solve()?;

    println!("two-unit system with one repair crew, as an SRN");
    println!("  tangible markings: {}", solved.num_markings());
    for m in solved.markings() {
        println!("    up={} broken={} in-repair={}", m[0], m[1], m[2]);
    }

    // Service needs at least one unit up.
    let availability = solved.steady_state_expected_reward(|m| if m[0] > 0 { 1.0 } else { 0.0 })?;
    println!("  availability (>=1 up): {availability:.9}");
    println!(
        "  downtime: {:.3} min/yr",
        downtime_minutes_per_year(availability)?
    );
    println!(
        "  repair-crew utilization: {:.4}",
        solved.steady_state_expected_reward(|m| f64::from(m[2]))?
    );
    println!("  failure throughput: {:.6} /h", solved.throughput(fail)?);
    println!(
        "  mean time until both units down: {:.1} h",
        solved.mean_time_to(|m| m[0] == 0)?
    );

    // Cross-check against the hand-built shared-crew CTMC from the
    // models crate.
    let reference = two_component_availability(lambda, mu, RepairPolicy::SharedCrew)?;
    assert!((availability - reference.parallel_availability).abs() < 1e-12);
    println!("\nmatches the hand-enumerated CTMC exactly ✓");
    Ok(())
}
