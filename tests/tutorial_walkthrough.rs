//! The tutorial's narrative arc as one executable walkthrough. Each
//! stage asserts the claim the tutorial makes at that point of the
//! talk, using this workspace's public API:
//!
//! 1. Independence makes non-state-space models exact and cheap.
//! 2. Dependence (a shared repair crew) breaks the product form — the
//!    RBD answer is now *wrong*, the CTMC answer is right.
//! 3. State spaces explode; hierarchy gives the best of both.
//! 4. Exact solution can be out of reach entirely — bounds still
//!    certify the answer.
//! 5. Non-exponential distributions: renewal/semi-Markov machinery and
//!    phase-type expansion keep the Markov toolbox usable.
//! 6. No input is exactly known: uncertainty propagation turns point
//!    estimates into intervals.

use reliab::bounds::ep_reliability_bounds;
use reliab::core::Result;
use reliab::dist::{Exponential, LogNormal};
use reliab::hier::ModelGraph;
use reliab::markov::CtmcBuilder;
use reliab::models::two_comp::{two_component_availability, RepairPolicy};
use reliab::rbd::{Block, RbdBuilder};
use reliab::semimarkov::{SemiMarkovBuilder, SmpStateId};
use reliab::uncert::{propagate, rate_posterior, PropagationOptions};

const LAMBDA: f64 = 0.01;
const MU: f64 = 1.0;

fn unit_availability() -> f64 {
    MU / (LAMBDA + MU)
}

/// Stage 1: with independent repair, the RBD product form IS the CTMC
/// answer.
#[test]
fn stage1_independence_makes_rbd_exact() -> Result<()> {
    let a = unit_availability();
    let mut b = RbdBuilder::new();
    let c = b.components("unit", 2);
    let rbd = b.build(Block::parallel_of(&c))?;
    let a_rbd = rbd.availability(&[a, a])?;
    let ctmc = two_component_availability(LAMBDA, MU, RepairPolicy::Independent)?;
    assert!((a_rbd - ctmc.parallel_availability).abs() < 1e-12);
    Ok(())
}

/// Stage 2: one shared crew makes components dependent; the RBD answer
/// is now optimistic and only the CTMC gets it right.
#[test]
fn stage2_dependence_breaks_the_product_form() -> Result<()> {
    let a = unit_availability();
    let rbd_answer = 1.0 - (1.0 - a) * (1.0 - a);
    let truth =
        two_component_availability(LAMBDA, MU, RepairPolicy::SharedCrew)?.parallel_availability;
    assert!(
        rbd_answer > truth + 1e-9,
        "the product form must overestimate: {rbd_answer} vs {truth}"
    );
    // And the error is material: roughly 2x in unavailability terms.
    let ratio = (1.0 - truth) / (1.0 - rbd_answer);
    assert!(ratio > 1.8, "unavailability underestimated by {ratio}x");
    Ok(())
}

/// Stage 3: hierarchy — solve the dependent subsystem with a small
/// CTMC, feed the result into a cheap top-level RBD, and match the
/// monolithic model without ever building the big chain.
#[test]
fn stage3_hierarchy_combines_both_worlds() -> Result<()> {
    // System: two dependent pairs (each with a shared crew) in series.
    // Monolithic truth: the pairs are mutually independent, so the
    // exact answer is the product of pair availabilities.
    let pair =
        two_component_availability(LAMBDA, MU, RepairPolicy::SharedCrew)?.parallel_availability;
    let truth = pair * pair;

    let mut g = ModelGraph::new();
    let pair_a = g.source("pair-a", || {
        Ok(two_component_availability(LAMBDA, MU, RepairPolicy::SharedCrew)?.parallel_availability)
    });
    let pair_b = g.source("pair-b", || {
        Ok(two_component_availability(LAMBDA, MU, RepairPolicy::SharedCrew)?.parallel_availability)
    });
    let top = g.node("system", &[pair_a, pair_b], |v| Ok(v[0] * v[1]));
    let hierarchical = g.solve_for(top)?;
    assert!((hierarchical - truth).abs() < 1e-12);
    Ok(())
}

/// Stage 4: when exact evaluation is infeasible, Esary–Proschan bounds
/// from the path/cut structure still certify the answer.
#[test]
fn stage4_bounds_certify_what_cannot_be_solved() -> Result<()> {
    // Bridge network structure (as if too large to solve exactly).
    let paths = vec![vec![0, 3], vec![1, 4], vec![0, 2, 4], vec![1, 2, 3]];
    let cuts = vec![vec![0, 1], vec![3, 4], vec![0, 2, 4], vec![1, 2, 3]];
    let p = [0.999; 5];
    let b = ep_reliability_bounds(&paths, &cuts, &p)?;
    // High-reliability regime: the bracket is tight enough to quote a
    // "number of nines" without the exact value.
    assert!(b.gap() < 1e-5, "gap {}", b.gap());
    assert!(b.lower > 0.999_99);
    Ok(())
}

/// Stage 5: non-exponential holding times — the SMP gives the exact
/// steady state, and its phase-type expansion hands transient analysis
/// back to the Markov solvers.
#[test]
fn stage5_non_exponential_distributions() -> Result<()> {
    let mut b = SemiMarkovBuilder::new();
    let up = b.state("up", Box::new(Exponential::from_mean(99.0)?));
    // Lognormal repair: heavily skewed, cv² = 6.
    let down = b.state("down", Box::new(LogNormal::from_mean_cv2(1.0, 6.0)?));
    b.transition(up, down, 1.0)?;
    b.transition(down, up, 1.0)?;
    let smp = b.build()?;
    let pi = smp.steady_state()?;
    assert!(
        (pi[up.index()] - 0.99).abs() < 1e-10,
        "means-only steady state"
    );

    let exp = smp.expand_to_ctmc(SmpStateId::from_index(up.index()))?;
    let agg = exp.aggregate(&exp.ctmc.steady_state()?);
    assert!(
        (agg[up.index()] - 0.99).abs() < 1e-9,
        "expansion preserves it"
    );
    // Transient behaviour exists and decays towards the steady state.
    let p0 = exp.entry_distribution(up);
    let early = exp.aggregate(&exp.ctmc.transient(&p0, 1.0)?)[up.index()];
    let late = exp.aggregate(&exp.ctmc.transient(&p0, 10_000.0)?)[up.index()];
    assert!(early > 0.98 && (late - 0.99).abs() < 1e-6);
    Ok(())
}

/// Stage 6: parametric uncertainty — the availability "number" from a
/// finite test campaign is really an interval, and it narrows with
/// data.
#[test]
fn stage6_uncertainty_turns_points_into_intervals() -> Result<()> {
    let availability_given = |lambda: f64| -> Result<f64> {
        let mut b = CtmcBuilder::new();
        let u = b.state("up");
        let d = b.state("down");
        b.transition(u, d, lambda)?;
        b.transition(d, u, MU)?;
        Ok(b.build()?.steady_state()?[0])
    };
    let run = |failures: u32, hours: f64| -> Result<(f64, f64)> {
        let posterior = rate_posterior(failures, hours)?;
        let r = propagate(
            &[Box::new(posterior)],
            |p| availability_given(p[0]),
            &PropagationOptions {
                samples: 3000,
                ..Default::default()
            },
        )?;
        Ok((r.mean, r.interval.upper - r.interval.lower))
    };
    // Same MLE rate (1 per 1000 h), 20x the evidence.
    let (mean_small, width_small) = run(2, 3000.0)?;
    let (mean_big, width_big) = run(59, 60_000.0)?;
    // Point estimates agree to first order...
    assert!((mean_small - mean_big).abs() < 5e-4);
    // ...but the quotable interval shrinks dramatically with data.
    assert!(
        width_big < 0.5 * width_small,
        "widths: {width_small} -> {width_big}"
    );
    Ok(())
}
