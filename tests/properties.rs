//! Property-based tests on cross-crate invariants, using proptest.

use proptest::prelude::*;
use reliab::bounds::ep_reliability_bounds;
use reliab::dist::{fit_two_moments, Exponential, Lifetime, Weibull};
use reliab::markov::CtmcBuilder;
use reliab::rbd::{Block, RbdBuilder};
use reliab::relgraph::RelGraphBuilder;

proptest! {
    /// RBD availability is monotone in every component availability.
    #[test]
    fn rbd_availability_is_monotone(
        p in proptest::collection::vec(0.0f64..=1.0, 5),
        bump_idx in 0usize..5,
        bump in 0.0f64..0.3,
    ) {
        let mut b = RbdBuilder::new();
        let c = b.components("c", 5);
        // A fixed non-trivial structure: (c0 || c1) && 2-of-(c2, c3, c4).
        let rbd = b.build(Block::series(vec![
            Block::parallel_of(&c[0..2]),
            Block::k_of_n_components(2, &c[2..5]),
        ])).unwrap();
        let a0 = rbd.availability(&p).unwrap();
        let mut p2 = p.clone();
        p2[bump_idx] = (p2[bump_idx] + bump).min(1.0);
        let a1 = rbd.availability(&p2).unwrap();
        prop_assert!(a1 >= a0 - 1e-12, "monotonicity violated: {a0} -> {a1}");
        prop_assert!((0.0..=1.0 + 1e-12).contains(&a0));
    }

    /// Esary–Proschan bounds always bracket the exact bridge-network
    /// reliability, whatever the edge probabilities.
    #[test]
    fn ep_bounds_bracket_bridge(
        p in proptest::collection::vec(0.01f64..=0.99, 5),
    ) {
        let mut gb = RelGraphBuilder::new();
        let s = gb.node("s");
        let a = gb.node("a");
        let c = gb.node("c");
        let t = gb.node("t");
        gb.edge(s, a, "e0");
        gb.edge(s, c, "e1");
        gb.edge(a, c, "e2");
        gb.edge(a, t, "e3");
        gb.edge(c, t, "e4");
        let g = gb.build(s, t).unwrap();
        let exact = g.reliability(&p).unwrap();
        let paths: Vec<Vec<usize>> = g
            .minimal_path_sets()
            .into_iter()
            .map(|ps| ps.into_iter().map(|e| e.index()).collect())
            .collect();
        let cuts: Vec<Vec<usize>> = g
            .minimal_cut_sets(10_000)
            .unwrap()
            .into_iter()
            .map(|cs| cs.into_iter().map(|e| e.index()).collect())
            .collect();
        let b = ep_reliability_bounds(&paths, &cuts, &p).unwrap();
        prop_assert!(b.lower <= exact + 1e-9, "lower {} > exact {exact}", b.lower);
        prop_assert!(exact <= b.upper + 1e-9, "upper {} < exact {exact}", b.upper);
    }

    /// CTMC transient distributions are stochastic vectors at all times.
    #[test]
    fn transient_is_a_distribution(
        rates in proptest::collection::vec(0.01f64..10.0, 6),
        t in 0.0f64..50.0,
    ) {
        // 3-state chain with arbitrary positive rates everywhere.
        let mut b = CtmcBuilder::new();
        let s: Vec<_> = (0..3).map(|i| b.state(&format!("s{i}"))).collect();
        let mut it = rates.into_iter();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    b.transition(s[i], s[j], it.next().unwrap()).unwrap();
                }
            }
        }
        let c = b.build().unwrap();
        let pi = c.transient(&c.point_mass(s[0]), t).unwrap();
        let total: f64 = pi.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        prop_assert!(pi.iter().all(|&x| (-1e-12..=1.0 + 1e-9).contains(&x)));
    }

    /// Two-moment fitting reproduces the target moments across the
    /// whole cv² range.
    #[test]
    fn two_moment_fit_is_exact(
        mean in 0.1f64..100.0,
        cv2 in 0.05f64..20.0,
    ) {
        let fit = fit_two_moments(mean, cv2).unwrap();
        let d = fit.as_lifetime();
        prop_assert!((d.mean() - mean).abs() < 1e-6 * mean);
        prop_assert!((d.cv_squared() - cv2).abs() < 1e-6 * cv2.max(1.0));
    }

    /// Distribution CDFs are monotone and bounded for arbitrary
    /// parameters.
    #[test]
    fn weibull_cdf_monotone(
        shape in 0.3f64..5.0,
        scale in 0.1f64..100.0,
        t1 in 0.0f64..200.0,
        dt in 0.0f64..50.0,
    ) {
        let d = Weibull::new(shape, scale).unwrap();
        let c1 = d.cdf(t1).unwrap();
        let c2 = d.cdf(t1 + dt).unwrap();
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c2 >= c1 - 1e-12);
    }

    /// Exponential quantile inverts the CDF for arbitrary rates.
    #[test]
    fn exponential_quantile_roundtrip(
        rate in 0.01f64..100.0,
        p in 0.01f64..0.99,
    ) {
        let d = Exponential::new(rate).unwrap();
        let x = d.quantile(p).unwrap();
        prop_assert!((d.cdf(x).unwrap() - p).abs() < 1e-9);
    }

    /// MTTF of a single absorbing chain equals mean of the lifetime:
    /// CTMC and distribution layers agree for arbitrary rates.
    #[test]
    fn absorbing_mttf_equals_distribution_mean(rate in 0.01f64..100.0) {
        let mut b = CtmcBuilder::new();
        let up = b.state("up");
        let down = b.state("down");
        b.transition(up, down, rate).unwrap();
        let c = b.build().unwrap();
        let mttf = c.mttf(&c.point_mass(up), &[down]).unwrap();
        let d = Exponential::new(rate).unwrap();
        prop_assert!((mttf - d.mean()).abs() < 1e-9 * d.mean());
    }

    /// Chapman–Kolmogorov: propagating to t1 and then t2 more equals
    /// propagating to t1 + t2 in one shot, for arbitrary chains.
    #[test]
    fn transient_satisfies_chapman_kolmogorov(
        rates in proptest::collection::vec(0.05f64..5.0, 6),
        t1 in 0.1f64..10.0,
        t2 in 0.1f64..10.0,
    ) {
        let mut b = CtmcBuilder::new();
        let s: Vec<_> = (0..3).map(|i| b.state(&format!("s{i}"))).collect();
        let mut it = rates.into_iter();
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    b.transition(s[i], s[j], it.next().unwrap()).unwrap();
                }
            }
        }
        let c = b.build().unwrap();
        let p0 = c.point_mass(s[0]);
        let two_hop = c.transient(&c.transient(&p0, t1).unwrap(), t2).unwrap();
        let one_hop = c.transient(&p0, t1 + t2).unwrap();
        for i in 0..3 {
            prop_assert!(
                (two_hop[i] - one_hop[i]).abs() < 1e-8,
                "state {i}: {} vs {}", two_hop[i], one_hop[i]
            );
        }
    }
}

/// Random coherent fault trees: MOCUS and BDD cut-set extraction must
/// agree, and the top-event probability must equal the union
/// probability of the minimal cut sets.
mod random_tree_equivalence {
    use proptest::prelude::*;
    use reliab::bounds::union_probability;
    use reliab::ftree::{EventId, FaultTreeBuilder, FtNode};

    /// Builder-independent tree shape generated by proptest; converted
    /// to [`FtNode`] once event handles exist.
    #[derive(Debug, Clone)]
    enum Shape {
        Leaf(usize),
        And(Vec<Shape>),
        Or(Vec<Shape>),
    }

    fn to_node(s: &Shape, events: &[EventId]) -> FtNode {
        match s {
            Shape::Leaf(i) => FtNode::Basic(events[*i]),
            Shape::And(xs) => FtNode::And(xs.iter().map(|x| to_node(x, events)).collect()),
            Shape::Or(xs) => FtNode::Or(xs.iter().map(|x| to_node(x, events)).collect()),
        }
    }

    /// Strategy: random tree over `n` events with AND/OR gates of
    /// width 2-3 and depth <= 3, leaves drawn from the event pool
    /// (repetition allowed => shared events).
    fn tree_strategy(n_events: usize) -> impl Strategy<Value = Shape> {
        let leaf = (0..n_events).prop_map(Shape::Leaf);
        leaf.prop_recursive(3, 24, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 2..=3).prop_map(Shape::And),
                proptest::collection::vec(inner, 2..=3).prop_map(Shape::Or),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn mocus_equals_bdd_and_cut_sets_reproduce_probability(
            shape in tree_strategy(5),
            probs in proptest::collection::vec(0.01f64..0.6, 5),
        ) {
            let mut b = FaultTreeBuilder::new();
            let events: Vec<EventId> =
                (0..5).map(|i| b.basic_event(&format!("e{i}"))).collect();
            let top = to_node(&shape, &events);
            let ft = b.build(top).unwrap();
            let mocus = ft.minimal_cut_sets(500_000).unwrap();
            let bdd = ft.minimal_cut_sets_bdd();
            prop_assert_eq!(&mocus, &bdd);
            // Exact union probability of the minimal cut sets equals
            // the BDD top-event probability.
            let q_top = ft.top_event_probability(&probs).unwrap();
            let sets: Vec<Vec<usize>> = mocus
                .iter()
                .map(|c| c.events().iter().map(|e| e.index()).collect())
                .collect();
            let q_union = union_probability(&sets, &probs, 5).unwrap();
            prop_assert!((q_top - q_union).abs() < 1e-12, "{q_top} vs {q_union}");
        }
    }
}
