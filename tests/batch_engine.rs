//! Batch-engine acceptance tests: solving the shipped `specs/*.json`
//! files through the parallel engine must be indistinguishable from
//! sequential solving, and every report must carry sane telemetry.

use reliab::engine::BatchEngine;
use reliab::spec::{ModelSpec, SolveReport};

const SPEC_FILES: [&str; 4] = [
    "bridge_network.json",
    "database_node.json",
    "multiprocessor.json",
    "two_component.json",
];

fn spec_texts() -> Vec<String> {
    SPEC_FILES
        .iter()
        .map(|name| {
            let path = format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"));
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        })
        .collect()
}

fn reports(jobs: usize) -> Vec<SolveReport> {
    BatchEngine::new()
        .with_jobs(jobs)
        .solve_texts(&spec_texts())
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|e| panic!("{} failed: {e}", SPEC_FILES[i])))
        .collect()
}

#[test]
fn parallel_batch_is_bitwise_identical_to_sequential() {
    let sequential = reports(1);
    for jobs in [2, 4, 0] {
        let parallel = reports(jobs);
        for (name, (s, p)) in SPEC_FILES.iter().zip(sequential.iter().zip(&parallel)) {
            // Measures carry every solved number (availabilities,
            // distributions, cut sets); PartialEq on f64 fields makes
            // this a bitwise comparison.
            assert_eq!(s.measures, p.measures, "{name} differs at jobs={jobs}");
        }
    }
}

#[test]
fn batch_of_32_specs_solves_and_keeps_order() {
    let texts = spec_texts();
    let batch: Vec<&String> = texts.iter().cycle().take(32).collect();
    let engine = BatchEngine::new().with_jobs(4);
    let results = engine.solve_texts(&batch);
    assert_eq!(results.len(), 32);
    let baseline = reports(1);
    for (i, r) in results.iter().enumerate() {
        let expected = &baseline[i % SPEC_FILES.len()].measures;
        assert_eq!(&r.as_ref().unwrap().measures, expected, "slot {i}");
    }
    // 32 inputs, 4 distinct models: the memo cache absorbs the repeats.
    // Concurrent workers may each solve a spec once before the first
    // result lands in the cache, so the split is bounded, not exact:
    // at most jobs solves per distinct model.
    let stats = engine.last_stats();
    assert_eq!(stats.solved + stats.memo_hits, 32);
    assert!(stats.solved >= 4 && stats.solved <= 16, "{stats:?}");
    assert_eq!(stats.errors, 0);

    // Sequentially the split is exact.
    let engine = BatchEngine::new().with_jobs(1);
    engine.solve_texts(&batch);
    let stats = engine.last_stats();
    assert_eq!(stats.solved, 4);
    assert_eq!(stats.memo_hits, 28);
}

#[test]
fn reports_carry_sane_stats() {
    for (name, report) in SPEC_FILES.iter().zip(reports(1)) {
        let stats = &report.stats;
        assert!(stats.iterations > 0, "{name}: no solver work recorded");
        // Dispatch on the stable kind discriminant, not the
        // #[non_exhaustive] enum.
        match report.measures.kind() {
            "rbd" | "fault_tree" | "rel_graph" => {
                assert!(stats.bdd_nodes.unwrap() > 0, "{name}: empty BDD");
                assert!(stats.bdd_cache_lookups.unwrap() > 0, "{name}");
            }
            "ctmc" => {
                assert!(stats.method.is_some(), "{name}: no steady method ran");
                assert!(stats.residual.is_some(), "{name}");
                assert!(stats.bdd_nodes.is_none(), "{name}: CTMC has no BDD");
            }
            other => panic!("unexpected measures for {name}: {other:?}"),
        }
        assert!(
            report.measures.primary_value().is_some(),
            "{name}: no primary value"
        );
    }
}

#[test]
fn parsed_specs_round_trip_through_canonical_form() {
    for (name, text) in SPEC_FILES.iter().zip(spec_texts()) {
        let spec = ModelSpec::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{name} failed to parse: {e}"));
        let again = ModelSpec::from_json_str(&spec.canonical_string()).unwrap();
        assert_eq!(spec, again, "{name}");
    }
}
