//! The JSON specification files shipped in `specs/` must stay valid
//! and produce sensible results — they are the first thing a new user
//! runs.

use reliab::spec::{solve_str_with, SolveOptions, SolvedMeasures};

fn solve_file(name: &str) -> SolvedMeasures {
    let path = format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"));
    let contents =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    solve_str_with(&contents, &SolveOptions::default())
        .unwrap_or_else(|e| panic!("{name} failed to solve: {e}"))
        .measures
}

#[test]
fn database_node_spec() {
    match solve_file("database_node.json") {
        SolvedMeasures::Rbd {
            availability,
            downtime_minutes_per_year,
            importance,
        } => {
            assert!(availability > 0.999 && availability < 1.0);
            assert!(downtime_minutes_per_year > 0.0);
            let imp = importance.expect("importance defined");
            assert_eq!(imp.len(), 3);
            // Storage is the single point of failure: highest Birnbaum.
            let storage = imp.iter().find(|r| r.name == "storage").unwrap();
            for row in &imp {
                assert!(storage.birnbaum >= row.birnbaum);
            }
        }
        other => panic!("expected RBD result, got {other:?}"),
    }
}

#[test]
fn multiprocessor_spec() {
    match solve_file("multiprocessor.json") {
        SolvedMeasures::FaultTree {
            top_event_probability,
            minimal_cut_sets,
            ..
        } => {
            assert!((top_event_probability - 8.341925725e-3).abs() < 1e-10);
            assert_eq!(minimal_cut_sets.len(), 5);
            assert_eq!(minimal_cut_sets[0], vec!["bus"]);
        }
        other => panic!("expected fault-tree result, got {other:?}"),
    }
}

#[test]
fn two_component_spec() {
    match solve_file("two_component.json") {
        SolvedMeasures::Ctmc {
            steady_state,
            availability,
            mttf,
            transient,
            ..
        } => {
            let pi = steady_state.expect("irreducible chain");
            assert!((pi.iter().map(|(_, p)| p).sum::<f64>() - 1.0).abs() < 1e-10);
            assert!(availability.expect("up_states given") > 0.99);
            assert!(mttf.expect("absorbing given") > 0.0);
            assert_eq!(transient.expect("at_times given").len(), 3);
        }
        other => panic!("expected CTMC result, got {other:?}"),
    }
}

#[test]
fn bridge_network_spec() {
    match solve_file("bridge_network.json") {
        SolvedMeasures::RelGraph {
            reliability,
            all_terminal_reliability,
            minimal_path_sets,
            minimal_cut_sets,
        } => {
            assert!(reliability > 0.999);
            assert!(all_terminal_reliability.expect("requested") <= reliability);
            assert_eq!(minimal_path_sets.len(), 4);
            assert_eq!(minimal_cut_sets.len(), 4);
        }
        other => panic!("expected rel-graph result, got {other:?}"),
    }
}

#[test]
fn tandem_queue_spec() {
    match solve_file("tandem_queue.json") {
        SolvedMeasures::Spn {
            num_markings,
            expected_tokens,
            throughput,
        } => {
            // Both stages are capped at 8 tokens and the routing place
            // is vanishing, so the tangible space is small but 2-D.
            assert!(num_markings > 9 && num_markings <= 81);
            assert_eq!(expected_tokens.len(), 2);
            for (name, mean) in &expected_tokens {
                assert!(
                    *mean > 0.0 && *mean < 8.0,
                    "{name} mean tokens out of range: {mean}"
                );
            }
            // Stage-2 departures cannot exceed the arrival rate.
            let (_, served) = &throughput[0];
            assert!(*served > 0.0 && *served < 2.0);
        }
        other => panic!("expected SPN result, got {other:?}"),
    }
}

#[test]
fn sip_hierarchy_spec() {
    match solve_file("sip_hierarchy.json") {
        SolvedMeasures::Hierarchy {
            submodels,
            output,
            value,
            iterations,
            residual,
        } => {
            assert_eq!(output, "sip-service");
            assert_eq!(submodels.len(), 3);
            // Series rollup of proxy x registrar x dns availabilities.
            assert!(value > 0.99 && value < 1.0, "value out of range: {value}");
            // Acyclic import graph: converges in depth + 1 sweeps.
            assert!(iterations <= 3, "too many sweeps: {iterations}");
            assert!(residual <= 1e-12);
        }
        other => panic!("expected hierarchy result, got {other:?}"),
    }
}

#[test]
fn rejuvenation_smp_spec() {
    match solve_file("rejuvenation_smp.json") {
        SolvedMeasures::SemiMarkov {
            steady_state,
            availability,
            mean_first_passage,
            interval_availability,
            ..
        } => {
            assert_eq!(steady_state.len(), 4);
            let a = availability.expect("up_states given");
            assert!(a > 0.999 && a < 1.0, "availability out of range: {a}");
            assert!(mean_first_passage.expect("targets given") > 1000.0);
            let ia = interval_availability.expect("interval_times given");
            assert_eq!(ia.len(), 2);
            // Starting all-up, interval availability descends toward
            // the steady value as the window grows.
            assert!(ia[0].1 > ia[1].1 && ia[1].1 > a);
        }
        other => panic!("expected semi-Markov result, got {other:?}"),
    }
}

#[test]
fn two_component_uncert_spec() {
    match solve_file("two_component_uncert.json") {
        SolvedMeasures::Uncertainty {
            measure,
            mean,
            std_dev,
            ci_lower,
            ci_upper,
            level,
            samples,
        } => {
            assert_eq!(measure, "availability");
            assert_eq!(samples, 200);
            assert!((level - 0.95).abs() < 1e-12);
            assert!(std_dev > 0.0);
            assert!(ci_lower <= mean && mean <= ci_upper);
            assert!(mean > 0.99 && mean < 1.0, "mean out of range: {mean}");
        }
        other => panic!("expected uncertainty result, got {other:?}"),
    }
}

#[test]
fn b787_bounds_spec() {
    match solve_file("b787_bounds.json") {
        SolvedMeasures::Bounds {
            exact,
            ep_lower,
            ep_upper,
            truncated_lower,
            truncated_upper,
            truncation_order,
            num_cut_sets,
            num_path_sets,
        } => {
            assert_eq!(truncation_order, 2);
            assert_eq!(num_cut_sets, 3);
            assert_eq!(num_path_sets, 5);
            let q = exact.expect("explicit sets give an exact SDP value");
            assert!(q > 0.0 && q < 1e-4, "exact out of range: {q}");
            assert!(ep_lower.expect("path sets given") <= q);
            assert!(q <= ep_upper.expect("path sets given"));
            assert!(truncated_lower <= q && q <= truncated_upper);
        }
        other => panic!("expected bounds result, got {other:?}"),
    }
}
