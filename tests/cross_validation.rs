//! Cross-crate validation: the same system solved through different
//! model classes (RBD, fault tree, reliability graph, CTMC, SPN, SMP,
//! simulation) must give the same answers.

use reliab::dist::{Exponential, Lifetime};
use reliab::ftree::{FaultTreeBuilder, FtNode};
use reliab::markov::CtmcBuilder;
use reliab::rbd::{Block, RbdBuilder};
use reliab::relgraph::RelGraphBuilder;
use reliab::semimarkov::SemiMarkovBuilder;
use reliab::sim::SystemSimulator;
use reliab::spn::SpnBuilder;

/// RBD and fault tree are duals: system works iff top event does not
/// fire.
#[test]
fn rbd_and_fault_tree_duality() {
    // System: (a || b) && c.
    let mut rb = RbdBuilder::new();
    let a = rb.component("a");
    let b = rb.component("b");
    let c = rb.component("c");
    let rbd = rb
        .build(Block::series(vec![Block::parallel_of(&[a, b]), c.into()]))
        .unwrap();

    let mut fb = FaultTreeBuilder::new();
    let fa = fb.basic_event("a");
    let fbv = fb.basic_event("b");
    let fc = fb.basic_event("c");
    // Fails if (a fails AND b fails) OR c fails.
    let ft = fb
        .build(FtNode::or(vec![FtNode::and_of(&[fa, fbv]), fc.into()]))
        .unwrap();

    for probs in [[0.9, 0.8, 0.95], [0.5, 0.5, 0.5], [0.99, 0.01, 0.7]] {
        let avail = rbd.availability(&probs).unwrap();
        let fail_probs: Vec<f64> = probs.iter().map(|p| 1.0 - p).collect();
        let q = ft.top_event_probability(&fail_probs).unwrap();
        assert!((avail + q - 1.0).abs() < 1e-12, "probs {probs:?}");
    }
}

/// A series-parallel reliability graph equals the corresponding RBD.
#[test]
fn relgraph_matches_rbd_on_series_parallel() {
    // Two parallel paths of two edges each.
    let mut gb = RelGraphBuilder::new();
    let s = gb.node("s");
    let m1 = gb.node("m1");
    let m2 = gb.node("m2");
    let t = gb.node("t");
    gb.edge(s, m1, "e0");
    gb.edge(m1, t, "e1");
    gb.edge(s, m2, "e2");
    gb.edge(m2, t, "e3");
    let g = gb.build(s, t).unwrap();

    let mut rb = RbdBuilder::new();
    let c = rb.components("e", 4);
    let rbd = rb
        .build(Block::parallel(vec![
            Block::series_of(&c[0..2]),
            Block::series_of(&c[2..4]),
        ]))
        .unwrap();

    let p = [0.95, 0.9, 0.85, 0.8];
    let r_graph = g.reliability(&p).unwrap();
    let r_rbd = rbd.availability(&p).unwrap();
    assert!((r_graph - r_rbd).abs() < 1e-12);
}

/// CTMC steady state equals SPN steady state for the same queueing
/// system, and both match the closed form.
#[test]
fn spn_reduces_to_same_ctmc() {
    let (lambda, mu, k) = (1.0f64, 3.0f64, 5usize);

    // Direct CTMC.
    let mut cb = CtmcBuilder::new();
    let states: Vec<_> = (0..=k).map(|i| cb.state(&format!("n{i}"))).collect();
    for i in 0..k {
        cb.transition(states[i], states[i + 1], lambda).unwrap();
        cb.transition(states[i + 1], states[i], mu).unwrap();
    }
    let ctmc = cb.build().unwrap();
    let pi = ctmc.steady_state().unwrap();

    // SPN of the same M/M/1/K queue.
    let mut sb = SpnBuilder::new();
    let q = sb.place("queue", 0);
    let arrive = sb.timed("arrive", lambda);
    sb.output_arc(arrive, q, 1);
    sb.inhibitor_arc(arrive, q, k as u32);
    let serve = sb.timed("serve", mu);
    sb.input_arc(serve, q, 1);
    let spn = sb.build().unwrap();
    let solved = spn.solve().unwrap();
    assert_eq!(solved.num_markings(), k + 1);

    for (n, &pi_n) in pi.iter().enumerate().take(k + 1) {
        let p_spn = solved
            .steady_state_expected_reward(|m| if m[0] as usize == n { 1.0 } else { 0.0 })
            .unwrap();
        assert!((p_spn - pi_n).abs() < 1e-12, "state {n}");
        // Closed form for M/M/1/K.
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        assert!((pi_n - rho.powi(n as i32) / norm).abs() < 1e-12);
    }
}

/// Semi-Markov with exponential sojourns equals the CTMC.
#[test]
fn smp_with_exponential_sojourns_equals_ctmc() {
    let (l, m) = (0.25f64, 2.0f64);
    let mut cb = CtmcBuilder::new();
    let up = cb.state("up");
    let down = cb.state("down");
    cb.transition(up, down, l).unwrap();
    cb.transition(down, up, m).unwrap();
    let pi_ctmc = cb.build().unwrap().steady_state().unwrap();

    let mut sb = SemiMarkovBuilder::new();
    let sup = sb.state("up", Box::new(Exponential::new(l).unwrap()));
    let sdown = sb.state("down", Box::new(Exponential::new(m).unwrap()));
    sb.transition(sup, sdown, 1.0).unwrap();
    sb.transition(sdown, sup, 1.0).unwrap();
    let pi_smp = sb.build().unwrap().steady_state().unwrap();

    assert!((pi_ctmc[0] - pi_smp[0]).abs() < 1e-12);
    assert!((pi_ctmc[1] - pi_smp[1]).abs() < 1e-12);
}

/// Simulation confirms the analytic availability of a 2-of-3 system.
#[test]
fn simulation_confirms_rbd_two_of_three() {
    let (l, m) = (0.02f64, 0.5f64);
    let a = m / (l + m);
    let mut rb = RbdBuilder::new();
    let c = rb.components("c", 3);
    let rbd = rb.build(Block::k_of_n_components(2, &c)).unwrap();
    let analytic = rbd.availability(&[a, a, a]).unwrap();

    let mut sim = SystemSimulator::new(|s: &[bool]| s.iter().filter(|&&b| b).count() >= 2);
    for _ in 0..3 {
        sim.component(
            Box::new(Exponential::new(l).unwrap()),
            Box::new(Exponential::new(m).unwrap()),
        );
    }
    let est = sim.availability(30_000.0, 32, 17).unwrap();
    assert!(
        est.interval.contains(analytic),
        "simulated [{}, {}] vs analytic {analytic}",
        est.interval.lower,
        est.interval.upper
    );
}

/// Uniformization agrees with a direct matrix exponential
/// (scaling-and-squaring Taylor series) on a dense random chain.
#[test]
fn uniformization_matches_matrix_exponential() {
    use reliab::numeric::DenseMatrix;
    // 4-state chain with deterministic pseudo-random rates.
    let n = 4;
    let mut b = CtmcBuilder::new();
    let s: Vec<_> = (0..n).map(|i| b.state(&format!("s{i}"))).collect();
    let mut seed = 0xABCDEFu64;
    let mut next = || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        0.05 + ((seed >> 33) as f64) / (u32::MAX as f64) * 3.0
    };
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.transition(s[i], s[j], next()).unwrap();
            }
        }
    }
    let ctmc = b.build().unwrap();
    let q = ctmc.generator_dense();

    // expm(Q t) by scaling & squaring + Taylor series.
    let expm = |t: f64| -> DenseMatrix {
        let norm = q.max_abs() * t;
        let scalings = (norm.log2().ceil().max(0.0) as u32) + 4;
        let scale = f64::from(2u32.pow(scalings));
        // A = Q t / 2^s
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, q.get(i, j) * t / scale);
            }
        }
        // e^A by Taylor to order 20.
        let mut result = DenseMatrix::identity(n);
        let mut term = DenseMatrix::identity(n);
        for k in 1..=20 {
            term = term.matmul(&a).unwrap();
            let mut scaled = DenseMatrix::zeros(n, n);
            let fact: f64 = (1..=k).map(f64::from).product();
            for i in 0..n {
                for j in 0..n {
                    scaled.set(i, j, term.get(i, j) / fact);
                }
            }
            for i in 0..n {
                for j in 0..n {
                    result.add_to(i, j, scaled.get(i, j));
                }
            }
        }
        for _ in 0..scalings {
            result = result.matmul(&result).unwrap();
        }
        result
    };

    let p0 = ctmc.point_mass(s[0]);
    for &t in &[0.1, 0.5, 2.0, 10.0] {
        let via_uniformization = ctmc.transient(&p0, t).unwrap();
        let e = expm(t);
        let via_expm = e.vecmat(&p0).unwrap();
        for i in 0..n {
            assert!(
                (via_uniformization[i] - via_expm[i]).abs() < 1e-8,
                "t = {t}, state {i}: {} vs {}",
                via_uniformization[i],
                via_expm[i]
            );
        }
    }
}

/// Field-data pipeline: empirical sample -> two-moment phase-type fit
/// -> simulator, recovering the alternating-renewal availability that
/// only depends on the means.
#[test]
fn empirical_fit_simulation_pipeline() {
    use reliab::dist::Empirical;
    // Synthetic "field data": deterministic grid with mean 20, cv² < 1.
    let ttf_data: Vec<f64> = (0..400)
        .map(|i| 10.0 + 20.0 * (i as f64 + 0.5) / 400.0)
        .collect();
    let ttr_data: Vec<f64> = (0..400)
        .map(|i| 0.5 + 1.0 * (i as f64 + 0.5) / 400.0)
        .collect();
    let ttf_emp = Empirical::from_samples(&ttf_data).unwrap();
    let ttr_emp = Empirical::from_samples(&ttr_data).unwrap();
    let expected = ttf_emp.mean() / (ttf_emp.mean() + ttr_emp.mean());

    let ttf_fit = ttf_emp.fit().unwrap().into_lifetime();
    let ttr_fit = ttr_emp.fit().unwrap().into_lifetime();
    assert!((ttf_fit.mean() - ttf_emp.mean()).abs() < 1e-9);

    let mut sim = SystemSimulator::new(|s: &[bool]| s[0]);
    sim.component(ttf_fit, ttr_fit);
    let est = sim.availability(50_000.0, 24, 5).unwrap();
    assert!(
        est.interval.contains(expected),
        "[{}, {}] vs {expected}",
        est.interval.lower,
        est.interval.upper
    );
}

/// BDD-extracted minimal cut sets of a fault tree representing the
/// bridge network equal the graph-theoretic cut sets.
#[test]
fn bdd_cut_sets_match_graph_cut_sets() {
    use reliab::relgraph::RelGraphBuilder;
    let mut gb = RelGraphBuilder::new();
    let s = gb.node("s");
    let a = gb.node("a");
    let c = gb.node("c");
    let t = gb.node("t");
    gb.edge(s, a, "e0");
    gb.edge(s, c, "e1");
    gb.edge(a, c, "e2");
    gb.edge(a, t, "e3");
    gb.edge(c, t, "e4");
    let g = gb.build(s, t).unwrap();
    let graph_cuts: Vec<Vec<usize>> = g
        .minimal_cut_sets(1000)
        .unwrap()
        .into_iter()
        .map(|cs| cs.into_iter().map(|e| e.index()).collect())
        .collect();

    // Same system as a fault tree: fails if all edges of some cut
    // fail... build instead from the works-side: the failure function
    // is the complement, and its minimal solutions over failure
    // variables are exactly the graph's minimal cut sets. Encode with
    // the path sets: system works if some path works.
    let mut fb = FaultTreeBuilder::new();
    let ev = fb.basic_events("edge", 5);
    // Failure = for every path, at least one edge failed. Paths:
    // {0,3}, {1,4}, {0,2,4}, {1,2,3}.
    let paths: Vec<Vec<usize>> = vec![vec![0, 3], vec![1, 4], vec![0, 2, 4], vec![1, 2, 3]];
    let top = FtNode::and(
        paths
            .iter()
            .map(|p| FtNode::or_of(&p.iter().map(|&i| ev[i]).collect::<Vec<_>>()))
            .collect(),
    );
    let ft = fb.build(top).unwrap();
    let ft_cuts: Vec<Vec<usize>> = ft
        .minimal_cut_sets_bdd()
        .into_iter()
        .map(|cs| cs.events().iter().map(|e| e.index()).collect())
        .collect();
    assert_eq!(graph_cuts, ft_cuts);
}

/// Absorbing-CTMC reliability equals the RBD reliability with
/// exponential lifetimes and no repair.
#[test]
fn absorbing_ctmc_matches_rbd_reliability() {
    // Parallel pair, rates 1 and 2, no repair.
    let mut cb = CtmcBuilder::new();
    let both = cb.state("both");
    let only1 = cb.state("only-1");
    let only2 = cb.state("only-2");
    let dead = cb.state("dead");
    cb.transition(both, only2, 1.0).unwrap(); // comp 1 (rate 1) fails
    cb.transition(both, only1, 2.0).unwrap(); // comp 2 (rate 2) fails
    cb.transition(only1, dead, 1.0).unwrap();
    cb.transition(only2, dead, 2.0).unwrap();
    let ctmc = cb.build().unwrap();
    let p0 = ctmc.point_mass(both);

    let mut rb = RbdBuilder::new();
    let c = rb.components("c", 2);
    let rbd = rb.build(Block::parallel_of(&c)).unwrap();
    let d1 = Exponential::new(1.0).unwrap();
    let d2 = Exponential::new(2.0).unwrap();
    let lifetimes: Vec<&dyn Lifetime> = vec![&d1, &d2];

    for &t in &[0.1, 0.5, 1.0, 2.0] {
        let r_ctmc = ctmc.reliability_at(&p0, &[dead], t).unwrap();
        let r_rbd = rbd.reliability(&lifetimes, t).unwrap();
        assert!(
            (r_ctmc - r_rbd).abs() < 1e-9,
            "t = {t}: {r_ctmc} vs {r_rbd}"
        );
    }

    // And the MTTFs agree too: 1/1 + 1/2 - 1/3.
    let mttf_ctmc = ctmc.mttf(&p0, &[dead]).unwrap();
    let mttf_rbd = rbd.mttf(&lifetimes).unwrap();
    let exact = 1.0 + 0.5 - 1.0 / 3.0;
    assert!((mttf_ctmc - exact).abs() < 1e-10);
    assert!((mttf_rbd - exact).abs() < 1e-7);
}
