//! Every shipped spec file must come back with *populated* solver
//! telemetry — a `SolveReport` whose stats still carry their defaults
//! means an instrumentation path was silently dropped.

use reliab::obs;
use reliab::spec::{solve_str_with, SolveOptions, SolveReport, SteadySolver};
use std::sync::Arc;

const SPEC_FILES: [&str; 4] = [
    "bridge_network.json",
    "database_node.json",
    "multiprocessor.json",
    "two_component.json",
];

const METHODS: [SteadySolver; 4] = [
    SteadySolver::Auto,
    SteadySolver::Gth,
    SteadySolver::Sor,
    SteadySolver::Power,
];

fn solve_file(name: &str, method: SteadySolver) -> SolveReport {
    let path = format!("{}/specs/{name}", env!("CARGO_MANIFEST_DIR"));
    let contents =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let opts = SolveOptions::default().with_steady_solver(method);
    solve_str_with(&contents, &opts).unwrap_or_else(|e| panic!("{name} failed to solve: {e}"))
}

fn kind_of(name: &str) -> &'static str {
    match name {
        "bridge_network.json" => "rel_graph",
        "database_node.json" => "rbd",
        "multiprocessor.json" => "fault_tree",
        "two_component.json" => "ctmc",
        other => panic!("unknown spec file {other}"),
    }
}

#[test]
fn every_spec_and_method_populates_stats() {
    for file in SPEC_FILES {
        for method in METHODS {
            let report = solve_file(file, method);
            let stats = &report.stats;
            let ctx = format!("{file} with {method:?}");

            assert!(
                stats.wall_time.as_nanos() > 0,
                "{ctx}: wall_time not recorded"
            );
            match kind_of(file) {
                "ctmc" => {
                    assert!(stats.iterations > 0, "{ctx}: no iteration count");
                    let m = stats.method.unwrap_or_else(|| panic!("{ctx}: no method"));
                    match method {
                        SteadySolver::Gth => assert_eq!(m, "gth", "{ctx}"),
                        SteadySolver::Sor => assert_eq!(m, "sor", "{ctx}"),
                        SteadySolver::Power => assert_eq!(m, "power", "{ctx}"),
                        // Auto resolves to a concrete method name.
                        _ => assert!(["gth", "sor", "power"].contains(&m), "{ctx}: {m}"),
                    }
                    let residual = stats
                        .residual
                        .unwrap_or_else(|| panic!("{ctx}: no residual"));
                    assert!(residual.is_finite() && residual >= 0.0, "{ctx}: {residual}");
                    if matches!(method, SteadySolver::Sor | SteadySolver::Power) {
                        assert!(residual > 0.0, "{ctx}: iterative residual should be > 0");
                    }
                }
                // BDD-backed models: table sizes and cache counters.
                _ => {
                    let nodes = stats
                        .bdd_nodes
                        .unwrap_or_else(|| panic!("{ctx}: no bdd_nodes"));
                    assert!(nodes > 0, "{ctx}: empty BDD arena");
                    let lookups = stats
                        .bdd_cache_lookups
                        .unwrap_or_else(|| panic!("{ctx}: no bdd_cache_lookups"));
                    assert!(lookups > 0, "{ctx}: BDD never consulted its cache");
                    assert!(
                        stats.bdd_cache_hits.is_some(),
                        "{ctx}: no bdd_cache_hits counter"
                    );
                    assert!(stats.iterations > 0, "{ctx}: iterations not set");
                }
            }
        }
    }
}

/// Single in-process trace test: subscribers are process-global, so
/// keeping all assertions in one `#[test]` (with `>=`-style counts)
/// avoids racing other tests in this binary.
#[test]
fn trace_covers_solver_layers() {
    let mem = Arc::new(obs::MemorySubscriber::default());
    obs::install_subscriber(mem.clone());
    obs::set_metrics_enabled(true);

    for file in SPEC_FILES {
        solve_file(file, SteadySolver::Auto);
    }

    assert!(mem.count_spans("spec.solve") >= 4);
    assert!(mem.count_spans("markov.steady") >= 1);
    assert!(mem.count_spans("ftree.compile_bdd") >= 1);
    assert!(mem.count_spans("rbd.compile_bdd") >= 1);
    assert!(mem.count_events("markov.iteration") >= 1);
    assert!(mem.count_events("bdd.ite") >= 1);
    assert!(mem.count_events("spec.solved") >= 4);

    // Spans nest: every spec.solve span must have enclosed at least
    // one child span or event.
    let records = mem.records();
    let solve_ids: Vec<u64> = records
        .iter()
        .filter_map(|r| match r {
            obs::TraceRecord::SpanStart {
                id,
                name: "spec.solve",
                ..
            } => Some(*id),
            _ => None,
        })
        .collect();
    for id in solve_ids {
        let has_child = records.iter().any(|r| match r {
            obs::TraceRecord::SpanStart { parent, .. } => *parent == id,
            obs::TraceRecord::Event { span, .. } => *span == id,
            _ => false,
        });
        assert!(has_child, "span {id} (spec.solve) has no children");
    }

    // The metrics registry picked up series from several layers.
    let snapshot = obs::registry().snapshot();
    assert!(
        snapshot.series_count() >= 8,
        "expected >= 8 metric series, got {}",
        snapshot.series_count()
    );

    obs::clear_subscribers();
    obs::set_metrics_enabled(false);
}
