//! Differential testing of the discrete-event simulation subsystem
//! against analytic oracles (EXPERIMENTS.md E6 and E19).
//!
//! * **E6 — transient reliability.** A repairable multiprocessor
//!   (2 processors 1-of-2, 3 memories 2-of-3, one bus, all
//!   exponential) is solved two ways that share no code: as a CTMC
//!   over component-failure bitmasks with an absorbing system-failure
//!   state (uniformization transient), and by simulating mission
//!   reliability. The analytic `R(t)` must fall inside the simulated
//!   99% confidence interval at every checked time point.
//! * **E19 — insensitivity.** Steady-state availability of the
//!   workstations-and-file-server system depends only on the *means*
//!   of the repair distributions (single-component alternating renewal
//!   insensitivity), so the exponential closed form must sit inside
//!   the simulated CI even when repairs are lognormal (cv² = 4) or
//!   heavy-tailed Pareto — distributions no Markov model can express.
//!
//! Every simulation here is a pure function of its seed, so failures
//! reproduce exactly.

use reliab::dist::{Exponential, Lifetime, LogNormal, Pareto};
use reliab::markov::Ctmc;
use reliab::models::wfs::{wfs_availability, WfsParams};
use reliab::sim::{Measure, SimOptions, SystemSimulator};
use reliab::spec::{solve_str_with, SolveOptions, SolvedMeasures};

/// Component layout of the E6 multiprocessor: indices 0–1 processors,
/// 2–4 memories, 5 bus.
const N_COMP: usize = 6;
const PROC_RATE: f64 = 1.0 / 8000.0;
const MEM_RATE: f64 = 1.0 / 5000.0;
const BUS_RATE: f64 = 1.0 / 20000.0;
const REPAIR_RATE: f64 = 1.0 / 4.0; // 4 h mean repair, every component

fn comp_fail_rate(i: usize) -> f64 {
    match i {
        0 | 1 => PROC_RATE,
        2..=4 => MEM_RATE,
        _ => BUS_RATE,
    }
}

/// Structure function: up iff ≥1 processor, ≥2 memories, and the bus.
fn multiproc_works(up: &[bool]) -> bool {
    let procs = up[..2].iter().filter(|&&u| u).count();
    let mems = up[2..5].iter().filter(|&&u| u).count();
    procs >= 1 && mems >= 2 && up[5]
}

/// Analytic mission reliability: CTMC over failed-component bitmasks
/// with repairs, plus one absorbing state entered at the first system
/// failure. `R(t) = 1 − P(absorbed by t)` via uniformization.
fn multiproc_reliability_ctmc(times: &[f64]) -> Vec<f64> {
    let n_states = 1usize << N_COMP; // bitmask of failed components
    let fail_state = n_states; // absorbing "system failed"
    let up_of = |mask: usize| -> Vec<bool> { (0..N_COMP).map(|i| mask & (1 << i) == 0).collect() };
    let mut transitions: Vec<(usize, usize, f64)> = Vec::new();
    for mask in 0..n_states {
        if !multiproc_works(&up_of(mask)) {
            continue; // unreachable before absorption
        }
        for i in 0..N_COMP {
            let bit = 1 << i;
            if mask & bit == 0 {
                let next = mask | bit;
                let to = if multiproc_works(&up_of(next)) {
                    next
                } else {
                    fail_state
                };
                transitions.push((mask, to, comp_fail_rate(i)));
            } else {
                transitions.push((mask, mask & !bit, REPAIR_RATE));
            }
        }
    }
    let names = (0..=n_states).map(|m| format!("m{m}")).collect();
    let ctmc = Ctmc::from_parts(names, transitions).expect("valid multiprocessor chain");
    let mut initial = vec![0.0; n_states + 1];
    initial[0] = 1.0;
    times
        .iter()
        .map(|&t| {
            let pi = ctmc
                .transient(&initial, t)
                .expect("uniformization transient");
            1.0 - pi[fail_state]
        })
        .collect()
}

fn multiproc_simulator() -> SystemSimulator {
    let mut sim = SystemSimulator::new(multiproc_works);
    for i in 0..N_COMP {
        sim.component(
            Box::new(Exponential::new(comp_fail_rate(i)).unwrap()),
            Box::new(Exponential::new(REPAIR_RATE).unwrap()),
        );
    }
    sim
}

#[test]
fn e6_simulated_transient_reliability_brackets_uniformization() {
    let times = [1000.0, 5000.0, 20000.0];
    let analytic = multiproc_reliability_ctmc(&times);
    let sim = multiproc_simulator();
    for (k, (&t, &exact)) in times.iter().zip(&analytic).enumerate() {
        let opts = SimOptions::default()
            .with_seed(0xE6_0001 + k as u64)
            .with_rel_precision(0.0)
            .with_max_replications(4096)
            .with_confidence(0.99);
        let report = sim
            .simulate(Measure::Reliability { mission_time: t }, &opts)
            .unwrap();
        assert!(
            report.interval.contains(exact),
            "t = {t}: analytic R(t) = {exact} outside simulated CI \
             [{}, {}] (point {})",
            report.interval.lower,
            report.interval.upper,
            report.interval.point,
        );
        // The estimate itself should also be close in absolute terms.
        assert!(
            (report.interval.point - exact).abs() < 0.05,
            "t = {t}: point {} vs analytic {exact}",
            report.interval.point
        );
    }
}

#[test]
fn e6_reliability_decreases_with_mission_time() {
    let times = [1000.0, 5000.0, 20000.0];
    let analytic = multiproc_reliability_ctmc(&times);
    assert!(analytic[0] > analytic[1] && analytic[1] > analytic[2]);
    assert!(analytic[0] < 1.0 && analytic[2] > 0.0);
}

/// E19 harness: the WFS system with exponential failures and the given
/// repair distributions, simulated to steady state.
fn wfs_simulated_availability(
    ws_repair: impl Fn() -> Box<dyn Lifetime>,
    fs_repair: Box<dyn Lifetime>,
    seed: u64,
) -> reliab::sim::SimReport {
    // 1-of-2 workstations in series with the file server.
    let mut sim = SystemSimulator::new(|up: &[bool]| (up[0] || up[1]) && up[2]);
    let p = WfsParams::default();
    for _ in 0..2 {
        sim.component(
            Box::new(Exponential::new(1.0 / p.ws_mttf).unwrap()),
            ws_repair(),
        );
    }
    sim.component(
        Box::new(Exponential::new(1.0 / p.fs_mttf).unwrap()),
        fs_repair,
    );
    let opts = SimOptions::default()
        .with_seed(seed)
        .with_rel_precision(0.0)
        .with_max_replications(192)
        .with_confidence(0.99);
    sim.simulate(Measure::Availability { horizon: 60_000.0 }, &opts)
        .unwrap()
}

#[test]
fn e19_wfs_availability_is_insensitive_to_repair_distribution() {
    let p = WfsParams::default();
    let analytic = wfs_availability(&p).unwrap();

    // Exponential repairs: the baseline the closed form describes.
    let exp = wfs_simulated_availability(
        || Box::new(Exponential::new(1.0 / WfsParams::default().ws_mttr).unwrap()),
        Box::new(Exponential::new(1.0 / p.fs_mttr).unwrap()),
        0xE19_0001,
    );
    // Lognormal repairs, cv² = 4, same means.
    let logn = wfs_simulated_availability(
        || Box::new(LogNormal::from_mean_cv2(WfsParams::default().ws_mttr, 4.0).unwrap()),
        Box::new(LogNormal::from_mean_cv2(p.fs_mttr, 4.0).unwrap()),
        0xE19_0002,
    );
    // Heavy-tailed Lomax repairs, shape 2.5, mean-matched:
    // mean = scale / (shape − 1) so scale = 1.5 × mean.
    let pareto = wfs_simulated_availability(
        || Box::new(Pareto::new(2.5, 1.5 * WfsParams::default().ws_mttr).unwrap()),
        Box::new(Pareto::new(2.5, 1.5 * p.fs_mttr).unwrap()),
        0xE19_0003,
    );

    for (label, report) in [
        ("exponential", &exp),
        ("lognormal", &logn),
        ("pareto", &pareto),
    ] {
        assert!(
            report.interval.contains(analytic),
            "{label}: analytic A = {analytic} outside simulated CI [{}, {}]",
            report.interval.lower,
            report.interval.upper,
        );
    }
}

/// The spec-level sim pipeline must be bitwise deterministic at any
/// worker count — the PR's headline reproducibility guarantee, checked
/// through the public `solve_str_with` API end to end.
#[test]
fn spec_sim_results_are_bitwise_identical_across_worker_counts() {
    let text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/specs/wfs_lognormal.json"
    ))
    .expect("shipped spec");
    let base = solve_str_with(&text, &SolveOptions::default()).unwrap();
    let SolvedMeasures::Sim { point, .. } = base.measures else {
        panic!("expected sim measures");
    };
    assert!((0.99..=1.0).contains(&point));
    for jobs in [2, 4, 8] {
        let par = solve_str_with(&text, &SolveOptions::default().with_sim_jobs(jobs)).unwrap();
        assert_eq!(par.measures, base.measures, "sim_jobs = {jobs}");
    }
}
