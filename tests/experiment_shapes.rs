//! Qualitative shape checks for every experiment E1–E14: the
//! assertions that `EXPERIMENTS.md` records (who wins, where the
//! crossovers are, which direction curves bend). These are the
//! integration-level guarantees behind the `repro` tables.

use reliab::core::Result;
use reliab::dist::{Exponential, Lifetime, Weibull};
use reliab::hier::FixedPointOptions;
use reliab::models::crn::{crn_bounds_sweep, crn_exact_unreliability, crn_mesh};
use reliab::models::multiproc::{
    coverage_ctmc, coverage_mttf_closed_form, multiproc_fault_tree, multiproc_probs,
    MultiprocParams,
};
use reliab::models::rejuv::{optimal_rejuvenation, rejuvenation_measures, RejuvParams};
use reliab::models::router::{router_availability, RouterParams};
use reliab::models::sip::{sip_availability, SipParams};
use reliab::models::two_comp::{two_component_availability, RepairPolicy};
use reliab::models::wfs::{wfs_availability, wfs_ctmc, WfsParams};
use reliab::rbd::{Block, RbdBuilder};
use reliab::semimarkov::renewal::{optimal_policy_age, policy_measures, PolicyCosts};
use reliab::uncert::{propagate, rate_posterior, PropagationOptions};

#[test]
fn e1_wfs_rbd_equals_ctmc_and_degrades_with_mttr() -> Result<()> {
    let base = WfsParams::default();
    let a0 = wfs_availability(&base)?;
    let (ctmc, up) = wfs_ctmc(&base)?;
    assert!((a0 - ctmc.steady_state_probability_of(&up)?).abs() < 1e-10);
    let slow_repair = WfsParams {
        fs_mttr: 20.0,
        ..base
    };
    assert!(wfs_availability(&slow_repair)? < a0);
    Ok(())
}

#[test]
fn e2_more_redundancy_helps_less_required_helps() -> Result<()> {
    let d = Exponential::new(1e-3)?;
    let r = |k: usize, n: usize, t: f64| -> Result<f64> {
        let mut b = RbdBuilder::new();
        let c = b.components("c", n);
        let rbd = b.build(Block::k_of_n_components(k, &c))?;
        let lifetimes: Vec<&dyn Lifetime> = vec![&d; n];
        rbd.reliability(&lifetimes, t)
    };
    let t = 800.0;
    // 1-of-2 beats 2-of-3 beats 3-of-5 at long missions (more required
    // components = worse).
    assert!(r(1, 2, t)? > r(2, 3, t)?);
    assert!(r(2, 3, t)? > r(3, 5, t)?);
    // Adding a spare at fixed k helps: 2-of-4 beats 2-of-3.
    assert!(r(2, 4, t)? > r(2, 3, t)?);
    Ok(())
}

#[test]
fn e3_bus_dominates_birnbaum_memories_dominate_fv() -> Result<()> {
    let p = MultiprocParams::default();
    let (mut ft, ev) = multiproc_fault_tree(&p)?;
    let probs = multiproc_probs(&p);
    let imp = ft.importance(&probs)?;
    let bus = &imp[ev.bus.index()];
    for pr in &ev.procs {
        assert!(bus.birnbaum > imp[pr.index()].birnbaum);
    }
    // The memory subsystem contributes most of the failure probability
    // at these numbers: FV of a memory exceeds FV of the bus.
    assert!(imp[ev.mems[0].index()].fussell_vesely > bus.fussell_vesely);
    Ok(())
}

#[test]
fn e4_bounds_contain_exact_and_gap_shrinks_monotonically() -> Result<()> {
    let g = crn_mesh(3, 3)?;
    let q = 5e-3;
    let exact = crn_exact_unreliability(&g, q)?;
    let rows = crn_bounds_sweep(&g, q, &[2, 3, 4])?;
    let mut last = f64::INFINITY;
    for r in rows {
        assert!(r.bounds.lower <= exact + 1e-12 && exact <= r.bounds.upper + 1e-12);
        assert!(r.bounds.gap() <= last);
        last = r.bounds.gap();
    }
    Ok(())
}

#[test]
fn e5_shared_repair_roughly_doubles_downtime() -> Result<()> {
    let ind = two_component_availability(0.01, 1.0, RepairPolicy::Independent)?;
    let sh = two_component_availability(0.01, 1.0, RepairPolicy::SharedCrew)?;
    let ratio = sh.parallel_downtime_min_per_year / ind.parallel_downtime_min_per_year;
    assert!(
        (1.8..2.2).contains(&ratio),
        "shared/independent downtime ratio {ratio}"
    );
    Ok(())
}

#[test]
fn e6_transient_reliability_decreases_and_approaches_exponential_tail() -> Result<()> {
    let (ctmc, s2, _, sf) = coverage_ctmc(1e-3, 0.95, Some(0.2))?;
    let p0 = ctmc.point_mass(s2);
    let mut last = 1.0;
    for &t in &[10.0, 100.0, 1000.0, 10_000.0] {
        let r = ctmc.reliability_at(&p0, &[sf], t)?;
        assert!(r < last && r > 0.0);
        last = r;
    }
    Ok(())
}

#[test]
fn e7_mttf_increases_linearly_in_coverage() -> Result<()> {
    let lambda = 1e-3;
    let mut prev = 0.0;
    for &c in &[0.0, 0.25, 0.5, 0.75, 1.0] {
        let (ctmc, s2, _, sf) = coverage_ctmc(lambda, c, None)?;
        let mttf = ctmc.mttf(&ctmc.point_mass(s2), &[sf])?;
        assert!((mttf - coverage_mttf_closed_form(lambda, c)).abs() < 1e-6 / lambda);
        assert!(mttf > prev);
        prev = mttf;
    }
    Ok(())
}

#[test]
fn e8_blocking_vanishes_as_buffer_grows() -> Result<()> {
    use reliab::spn::SpnBuilder;
    let mut last_block = 1.0;
    for k in [2u32, 8, 32] {
        let mut b = SpnBuilder::new();
        let q = b.place("q", 0);
        let arrive = b.timed("arrive", 1.5);
        b.output_arc(arrive, q, 1);
        b.inhibitor_arc(arrive, q, k);
        let serve = b.timed_fn("serve", |m: &Vec<u32>| f64::from(m[0].min(2)));
        b.input_arc(serve, q, 1);
        let spn = b.build()?;
        let solved = spn.solve()?;
        let p_full = solved.steady_state_expected_reward(|m| if m[0] == k { 1.0 } else { 0.0 })?;
        assert!(p_full < last_block);
        last_block = p_full;
        // Offered load 1.5 < capacity 2: throughput approaches 1.5.
        let tput = solved.throughput(serve)?;
        assert!(tput <= 1.5 + 1e-12);
        if k == 32 {
            assert!((tput - 1.5).abs() < 1e-3);
        }
    }
    Ok(())
}

#[test]
fn e9_rejuvenation_optimum_is_interior_and_beats_extremes() -> Result<()> {
    let p = RejuvParams::default();
    let (d_opt, m_opt) = optimal_rejuvenation(&p, 4.0, 8760.0)?;
    assert!(d_opt > 4.0 && d_opt < 8760.0);
    assert!(m_opt.availability > rejuvenation_measures(&p, 8.0)?.availability);
    assert!(m_opt.availability > rejuvenation_measures(&p, 8000.0)?.availability);
    Ok(())
}

#[test]
fn e10_fabric_dominates_budget_and_total_is_product() -> Result<()> {
    let r = router_availability(&RouterParams::default())?;
    let fabric = r
        .subsystems
        .iter()
        .find(|s| s.name == "switch-fabric")
        .expect("fabric row");
    for s in &r.subsystems {
        assert!(fabric.downtime_min_per_year >= s.downtime_min_per_year);
    }
    let product: f64 = r.subsystems.iter().map(|s| s.availability).product();
    assert!((r.system_availability - product).abs() < 1e-12);
    Ok(())
}

#[test]
fn e11_fixed_point_converges_and_load_coupling_costs_availability() -> Result<()> {
    let coupled = sip_availability(&SipParams::default(), &FixedPointOptions::default())?;
    let decoupled = sip_availability(
        &SipParams {
            alpha: 0.0,
            ..Default::default()
        },
        &FixedPointOptions::default(),
    )?;
    assert!(coupled.server_availability < decoupled.server_availability);
    assert!(coupled.iterations >= decoupled.iterations);
    Ok(())
}

#[test]
fn e12_more_test_data_narrows_the_interval() -> Result<()> {
    let width = |fails: u32, hours: f64| -> Result<f64> {
        let posterior = rate_posterior(fails, hours)?;
        let r = propagate(
            &[Box::new(posterior)],
            |p| {
                Ok(
                    two_component_availability(p[0], 1.0, RepairPolicy::SharedCrew)?
                        .parallel_availability,
                )
            },
            &PropagationOptions {
                samples: 2000,
                ..Default::default()
            },
        )?;
        Ok(r.interval.upper - r.interval.lower)
    };
    // Same posterior-mean rate (~5e-4), 20x the data.
    assert!(width(50, 100_000.0)? < width(2, 4_000.0)?);
    Ok(())
}

#[test]
fn e13_pm_helps_only_under_wear_out() -> Result<()> {
    let no_pm_avail = |shape: f64| -> Result<f64> {
        let ttf = Weibull::new(shape, 1000.0)?;
        Ok(policy_measures(&ttf, 48.0, 4.0, 49_999.0, &PolicyCosts::default())?.availability)
    };
    let opt_avail = |shape: f64| -> Result<f64> {
        let ttf = Weibull::new(shape, 1000.0)?;
        Ok(optimal_policy_age(&ttf, 48.0, 4.0, 10.0, 50_000.0)?
            .1
            .availability)
    };
    // Memoryless: optimum is "never", no gain.
    assert!((opt_avail(1.0)? - no_pm_avail(1.0)?).abs() < 1e-6);
    // Wear-out: clear gain, growing with shape.
    let gain2 = opt_avail(2.0)? - no_pm_avail(2.0)?;
    let gain4 = opt_avail(4.0)? - no_pm_avail(4.0)?;
    assert!(gain2 > 0.01);
    assert!(gain4 > gain2);
    Ok(())
}

#[test]
fn e14_routes_agree_and_ctmc_state_space_explodes() -> Result<()> {
    // Inline reimplementation of the bench crate's scaling family to
    // avoid a dev-dependency on it.
    for n in [2usize, 4] {
        let mut b = RbdBuilder::new();
        let mut blocks = Vec::new();
        let mut avail = Vec::new();
        for i in 0..n {
            let c1 = b.component(&format!("p{i}a"));
            let c2 = b.component(&format!("p{i}b"));
            blocks.push(Block::parallel_of(&[c1, c2]));
            let a = 0.95 + 0.04 * (i as f64 / n as f64);
            avail.push(a);
            avail.push(a - 0.01);
        }
        let rbd = b.build(Block::series(blocks))?;
        // BDD stays linear in n while the flat CTMC is 4^n.
        assert!(rbd.bdd_size() <= 2 * n);
        assert!(rbd.availability(&avail)? > 0.9);
    }
    Ok(())
}
