//! Differential testing of the CTMC solvers on randomly generated
//! chains.
//!
//! Two independent oracles cross-check each other:
//!
//! * **Transient**: uniformization (Jensen's method, the production
//!   path) against the dense matrix exponential
//!   `π(t) = π(0)·exp(Qt)` computed by `reliab::numeric::expm`
//!   (Padé-13 scaling and squaring) — a completely different
//!   algorithm sharing no code with the Poisson-sum path.
//! * **Steady state**: GTH elimination (direct, subtraction-free),
//!   SOR sweeps, and power iteration on the uniformized DTMC must all
//!   land on the same stationary vector.
//!
//! All randomness flows through a seeded [`SmallRng`], so every case
//! is reproducible from the seed printed in the assertion message.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use reliab::markov::{Ctmc, IterativeOptions, SteadyStateMethod};
use reliab::numeric::{expm, DenseMatrix};

fn u01(rng: &mut SmallRng) -> f64 {
    ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// A random irreducible generator on `n` states: a Hamiltonian cycle
/// guarantees irreducibility, then each remaining ordered pair gets an
/// arc with probability `density`. Rates are drawn log-uniformly from
/// `[1, stiffness]`, so `stiffness` is the spread between the fastest
/// and slowest transition.
fn random_transitions(
    rng: &mut SmallRng,
    n: usize,
    density: f64,
    stiffness: f64,
) -> Vec<(usize, usize, f64)> {
    let rate = |rng: &mut SmallRng| stiffness.powf(u01(rng)) * (0.5 + u01(rng));
    let mut transitions = Vec::new();
    for i in 0..n {
        transitions.push((i, (i + 1) % n, rate(rng)));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j && j != (i + 1) % n && u01(rng) < density {
                transitions.push((i, j, rate(rng)));
            }
        }
    }
    transitions
}

fn ctmc_from(n: usize, transitions: &[(usize, usize, f64)]) -> Ctmc {
    let names = (0..n).map(|i| format!("s{i}")).collect();
    Ctmc::from_parts(names, transitions.to_vec()).expect("valid random chain")
}

/// The generator as a dense matrix scaled by `t`, ready for `expm`.
fn q_times_t(n: usize, transitions: &[(usize, usize, f64)], t: f64) -> DenseMatrix {
    let mut q = DenseMatrix::zeros(n, n);
    for &(i, j, r) in transitions {
        q.add_to(i, j, r * t);
        q.add_to(i, i, -r * t);
    }
    q
}

/// A random point on the probability simplex, occasionally degenerate
/// (a point mass) to exercise sparse initial vectors.
fn random_initial(rng: &mut SmallRng, n: usize) -> Vec<f64> {
    if u01(rng) < 0.3 {
        let mut pi0 = vec![0.0; n];
        pi0[(rng.next_u64() as usize) % n] = 1.0;
        return pi0;
    }
    let raw: Vec<f64> = (0..n).map(|_| u01(rng) + 1e-3).collect();
    let total: f64 = raw.iter().sum();
    raw.into_iter().map(|x| x / total).collect()
}

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Uniformization vs `π(0)·exp(Qt)` on one random chain.
fn check_transient_vs_expm(seed: u64, n: usize, density: f64, stiffness: f64, t: f64, tol: f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let transitions = random_transitions(&mut rng, n, density, stiffness);
    let ctmc = ctmc_from(n, &transitions);
    let pi0 = random_initial(&mut rng, n);

    let via_uniformization = ctmc.transient(&pi0, t).expect("uniformization solves");
    let p = expm(&q_times_t(n, &transitions, t)).expect("expm solves");
    let via_expm = p.vecmat(&pi0).expect("dimensions match");

    let mass: f64 = via_expm.iter().sum();
    assert!(
        (mass - 1.0).abs() < 1e-9,
        "seed {seed}: expm oracle lost probability mass: {mass}"
    );
    let diff = max_abs_diff(&via_uniformization, &via_expm);
    assert!(
        diff < tol,
        "seed {seed} (n={n}, density={density}, stiffness={stiffness:.0e}, t={t}): \
         uniformization vs expm differ by {diff:.3e} (tol {tol:.0e})"
    );
}

#[test]
fn transient_matches_expm_on_dense_chains() {
    for seed in 0..8 {
        for t in [0.05, 0.7, 3.0] {
            check_transient_vs_expm(1000 + seed, 4 + (seed as usize) * 3, 0.8, 10.0, t, 1e-8);
        }
    }
}

#[test]
fn transient_matches_expm_on_sparse_chains() {
    for seed in 0..6 {
        let n = 20 + (seed as usize) * 8;
        // ~3 off-cycle arcs per state regardless of n.
        check_transient_vs_expm(2000 + seed, n, 3.0 / n as f64, 50.0, 1.2, 1e-8);
    }
}

/// Stiff chains: rates span six orders of magnitude. The horizon is
/// scaled so `q·t` stays moderate — this probes accuracy under
/// stiffness, not the truncation economics of huge `q·t` (which
/// steady-state detection handles and other suites cover).
#[test]
fn transient_matches_expm_on_stiff_chains() {
    for (seed, stiffness) in [(3001u64, 1e3), (3002, 1e4), (3003, 1e6), (3004, 1e6)] {
        for t_scale in [0.1, 2.0] {
            check_transient_vs_expm(seed, 8, 0.5, stiffness, t_scale / stiffness, 1e-8);
        }
    }
}

/// GTH, SOR, and power iteration must agree on the stationary vector.
fn check_steady_three_way(seed: u64, n: usize, density: f64, stiffness: f64, with_power: bool) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let transitions = random_transitions(&mut rng, n, density, stiffness);
    let ctmc = ctmc_from(n, &transitions);

    let tight = IterativeOptions {
        tolerance: 1e-14,
        max_iterations: 2_000_000,
        relaxation: 1.0,
    };
    let gth = ctmc
        .steady_state_with(&SteadyStateMethod::Gth)
        .expect("GTH solves");
    let sor = ctmc
        .steady_state_with(&SteadyStateMethod::Sor(tight))
        .expect("SOR converges");

    let mass: f64 = gth.iter().sum();
    assert!((mass - 1.0).abs() < 1e-12, "seed {seed}: GTH mass {mass}");
    let d_sor = max_abs_diff(&gth, &sor);
    assert!(
        d_sor < 1e-10,
        "seed {seed} (n={n}, stiffness={stiffness:.0e}): GTH vs SOR differ by {d_sor:.3e}"
    );

    if with_power {
        let power = ctmc
            .steady_state_with(&SteadyStateMethod::Power(tight))
            .expect("power iteration converges");
        let d_pow = max_abs_diff(&gth, &power);
        assert!(
            d_pow < 1e-10,
            "seed {seed} (n={n}, stiffness={stiffness:.0e}): GTH vs power differ by {d_pow:.3e}"
        );
    }
}

#[test]
fn steady_state_methods_agree_three_ways() {
    for seed in 0..6 {
        check_steady_three_way(4000 + seed, 5 + (seed as usize) * 2, 0.6, 1e3, true);
    }
}

/// At stiffness 10⁶ power iteration's uniformized DTMC mixes too
/// slowly to be practical, so the stiff sweep checks the direct method
/// against SOR only.
#[test]
fn steady_state_gth_and_sor_agree_on_stiff_chains() {
    for seed in 0..4 {
        check_steady_three_way(5000 + seed, 8 + (seed as usize) * 4, 0.4, 1e6, false);
    }
}
