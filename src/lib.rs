//! # reliab — Reliability and Availability Modeling in Practice
//!
//! A SHARPE-style analytic modeling toolkit in Rust, reproducing the
//! model classes and workflows of Trivedi's DSN 2016 tutorial
//! *Reliability and Availability Modeling in Practice*:
//!
//! * **Non-state-space models** — reliability block diagrams
//!   ([`rbd`]), fault trees ([`ftree`]), reliability graphs
//!   ([`relgraph`]), all BDD-exact under shared components.
//! * **Bounding methods** ([`bounds`]) for systems too large to solve
//!   exactly.
//! * **State-space models** — Markov chains ([`markov`]), stochastic
//!   Petri nets / stochastic reward nets ([`spn`]), semi-Markov and
//!   regenerative processes ([`semimarkov`]).
//! * **Streaming large-model tier** ([`stream`]) — out-of-core
//!   transient and steady-state solvers that regenerate generator rows
//!   on demand instead of materializing the matrix.
//! * **Hierarchical & fixed-point composition** ([`hier`]).
//! * **Parametric uncertainty propagation** ([`uncert`]).
//! * **Discrete-event simulation** ([`sim`]) for cross-validation.
//! * **Lifetime distributions** ([`dist`]) including non-exponential
//!   laws and phase-type fitting.
//! * **Observability** ([`obs`]) — structured tracing (spans/events)
//!   and a metrics registry threaded through every solver hot path.
//! * **Case studies** ([`models`]) — the tutorial's worked examples
//!   (workstations & file server, multiprocessor, Boeing-787-class
//!   network bounds, router hierarchy, SIP fixed point, software
//!   rejuvenation).
//!
//! ## Quick start
//!
//! ```
//! use reliab::rbd::{Block, RbdBuilder};
//!
//! # fn main() -> Result<(), reliab::core::Error> {
//! let mut b = RbdBuilder::new();
//! let pump = b.component("pump-a");
//! let spare = b.component("pump-b");
//! let valve = b.component("valve");
//! let system = Block::series(vec![Block::parallel_of(&[pump, spare]), valve.into()]);
//! let rbd = b.build(system)?;
//! let availability = rbd.availability(&[0.99, 0.99, 0.999])?;
//! assert!(availability > 0.998);
//! # Ok(())
//! # }
//! ```
//!
//! See `EXPERIMENTS.md` in the repository for the full experiment
//! index (E1–E14) and `cargo run -p reliab-bench --bin repro` to
//! regenerate every table.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub use reliab_core as core;
pub use reliab_dist as dist;
pub use reliab_numeric as numeric;
pub use reliab_obs as obs;

pub use reliab_bdd as bdd;
pub use reliab_ftree as ftree;
pub use reliab_rbd as rbd;
pub use reliab_relgraph as relgraph;

pub use reliab_bounds as bounds;
pub use reliab_hier as hier;
pub use reliab_markov as markov;
pub use reliab_semimarkov as semimarkov;
pub use reliab_spn as spn;
pub use reliab_stream as stream;

pub use reliab_engine as engine;
pub use reliab_models as models;
pub use reliab_sim as sim;
pub use reliab_spec as spec;
pub use reliab_uncert as uncert;
