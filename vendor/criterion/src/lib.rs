//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion its benches use:
//! [`Criterion`], benchmark groups, [`BenchmarkId`], `Bencher::iter`,
//! and the [`criterion_group!`] / [`criterion_main!`] macros. The
//! statistics are deliberately simple — median over a fixed number of
//! timed samples after a short warm-up — but the reported ns/iter are
//! real wall-clock measurements, good enough for the relative
//! comparisons (method A vs. method B, sequential vs. parallel) the
//! benches exist to make.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! benchmark body runs exactly once so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An identifier that is just the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_owned(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the per-iteration median.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.result = Some(Duration::ZERO);
            return;
        }
        // Warm-up and batch sizing: aim for ~2 ms per sample.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            per_iter.push(t0.elapsed() / batch);
        }
        per_iter.sort();
        self.result = Some(per_iter[per_iter.len() / 2]);
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Builds a driver from the process arguments: `--test` switches to
    /// run-once mode, the first free argument filters by substring.
    pub fn from_args() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => test_mode = true,
                "--bench" => {}
                s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_owned()),
                _ => {}
            }
        }
        Criterion { test_mode, filter }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            samples: 20,
        }
    }

    /// Prints the closing line (upstream prints a summary report).
    pub fn final_summary(&self) {}

    fn run(&self, label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            samples,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some(d) if !self.test_mode => {
                println!("{label:<50} {:>12.1} ns/iter", d.as_nanos() as f64)
            }
            Some(_) => println!("{label:<50} ok (test mode)"),
            None => println!("{label:<50} (no measurement)"),
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        self.criterion.run(&label, self.samples, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.label);
        self.criterion
            .run(&label, self.samples, &mut |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut g = c.benchmark_group("t");
        let mut ran = 0;
        g.sample_size(3).bench_function("one", |b| {
            b.iter(|| 1 + 1);
        });
        g.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| {
            ran = x;
            b.iter(|| x * 2);
        });
        g.finish();
        assert_eq!(ran, 7);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion {
            test_mode: true,
            filter: Some("match-me".into()),
        };
        let mut ran = false;
        c.run("other/label", 3, &mut |_b| ran = true);
        assert!(!ran);
        c.run("group/match-me", 3, &mut |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(ran);
    }
}
