//! Offline vendored subset of the `proptest` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest it uses: the [`proptest!`]
//! test macro, [`Strategy`] with `prop_map` / `prop_recursive` /
//! `boxed`, range and [`collection::vec`] strategies, [`prop_oneof!`],
//! and the `prop_assert*` macros. Unlike upstream there is no
//! shrinking: a failing case panics with the generated inputs in the
//! assertion message, which is enough to reproduce because generation
//! is deterministic per test name.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic generator driving value generation (xorshift64*).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from a test name, so each test gets
    /// a stable, independent stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, avoiding the zero state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h | 1 }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive strategies: `recurse` receives the strategy for the
    /// previous depth level and returns one for the next; nesting is
    /// bounded by `depth`. The `_desired_size` and `_expected_branch`
    /// hints are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut current = self.boxed();
        for _ in 0..depth {
            current = recurse(current).boxed();
        }
        current
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.next_f64() * (hi - lo)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        self.start() + rng.below(self.end() - self.start() + 1)
    }
}

/// Uniform choice among boxed strategies; used by [`prop_oneof!`].
pub fn one_of<T>(choices: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { choices }
}

/// Strategy choosing uniformly among alternatives.
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len());
        self.choices[idx].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on generated collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.saturating_sub(1),
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common import surface, mirroring upstream proptest.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { #![proptest_config($crate::ProptestConfig::default())] $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::one_of(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 2usize..7, y in 0.5f64..=1.5) {
            prop_assert!((2..7).contains(&x));
            prop_assert!((0.5..=1.5).contains(&y));
        }

        #[test]
        fn vec_sizes_respect_bounds(v in crate::collection::vec(0.0f64..1.0, 2..=4)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn oneof_and_map_compose(x in prop_oneof![(0usize..1).prop_map(|_| -1i32), (0usize..1).prop_map(|_| 1i32)]) {
            prop_assert!(x == -1 || x == 1);
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(xs) => 1 + xs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0usize..1)
            .prop_map(|_| T::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                crate::collection::vec(inner, 1..=2).prop_map(T::Node)
            });
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..32 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
        }
    }
}
