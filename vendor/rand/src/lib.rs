//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the tiny slice of `rand` it actually uses:
//! [`RngCore`], [`SeedableRng`], and [`rngs::SmallRng`]. The generator
//! is xoshiro256++ seeded through SplitMix64 — high-quality,
//! deterministic, and stable across platforms, which is all the
//! simulation and sampling layers require. Statistical output differs
//! from upstream `rand`; no test in this workspace depends on the
//! exact stream, only on its quality and determinism.

/// A random number generator core: the object-safe sampling surface.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it to the full
    /// internal state.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn bits_look_uniform() {
        // Crude sanity: mean of u01-style draws near 0.5.
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n)
            .map(|_| ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
