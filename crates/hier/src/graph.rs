//! Acyclic hierarchical model graphs.

use reliab_core::{Error, Result};
use std::fmt;

/// Handle to a measure node in a [`ModelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MeasureId(usize);

impl MeasureId {
    /// Index into the solved-values vector.
    pub fn index(self) -> usize {
        self.0
    }
}

type Compute = Box<dyn Fn(&[f64]) -> Result<f64> + Send + Sync>;

struct Node {
    name: String,
    inputs: Vec<usize>,
    compute: Compute,
}

/// A directed acyclic graph of model measures.
///
/// Each node computes one scalar measure (an availability, an MTTF, a
/// repair-coverage factor, ...) from the measures of its input nodes —
/// typically by solving a submodel from another `reliab` crate inside
/// the closure. [`ModelGraph::solve`] evaluates every node once in
/// dependency order, which is exactly the tutorial's "import lower
/// level results as parameters of the upper level" workflow.
///
/// Cyclic dependencies are rejected; use
/// [`crate::fixed_point`] for genuinely cyclic compositions.
#[derive(Default)]
pub struct ModelGraph {
    nodes: Vec<Node>,
}

impl fmt::Debug for ModelGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelGraph")
            .field(
                "nodes",
                &self.nodes.iter().map(|n| &n.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ModelGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ModelGraph::default()
    }

    /// Adds a source node (no inputs): a constant or a self-contained
    /// submodel solve.
    pub fn source<F>(&mut self, name: &str, compute: F) -> MeasureId
    where
        F: Fn() -> Result<f64> + Send + Sync + 'static,
    {
        self.nodes.push(Node {
            name: name.to_owned(),
            inputs: Vec::new(),
            compute: Box::new(move |_| compute()),
        });
        MeasureId(self.nodes.len() - 1)
    }

    /// Adds a constant parameter node.
    pub fn constant(&mut self, name: &str, value: f64) -> MeasureId {
        self.source(name, move || Ok(value))
    }

    /// Adds a derived node computing its measure from the inputs'
    /// solved values (passed in the order given here).
    pub fn node<F>(&mut self, name: &str, inputs: &[MeasureId], compute: F) -> MeasureId
    where
        F: Fn(&[f64]) -> Result<f64> + Send + Sync + 'static,
    {
        self.nodes.push(Node {
            name: name.to_owned(),
            inputs: inputs.iter().map(|m| m.0).collect(),
            compute: Box::new(compute),
        });
        MeasureId(self.nodes.len() - 1)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Evaluates every node in dependency order and returns all
    /// measures, indexed by [`MeasureId::index`].
    ///
    /// # Errors
    ///
    /// * [`Error::Model`] — empty graph, dangling input (forward
    ///   reference to a node added later creates a cycle by
    ///   construction, since inputs must already exist), or a compute
    ///   closure returning a non-finite value.
    /// * Errors from node closures propagate unchanged.
    pub fn solve(&self) -> Result<Vec<f64>> {
        if self.nodes.is_empty() {
            return Err(Error::model("model graph is empty"));
        }
        // Inputs always reference earlier nodes (handles are only
        // obtainable after insertion), so index order IS a topological
        // order; still validate.
        let mut values = vec![f64::NAN; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let mut args = Vec::with_capacity(node.inputs.len());
            for &j in &node.inputs {
                if j >= i {
                    return Err(Error::model(format!(
                        "node '{}' depends on a node not yet defined (cycle?)",
                        node.name
                    )));
                }
                args.push(values[j]);
            }
            let v = (node.compute)(&args)?;
            if !v.is_finite() {
                return Err(Error::model(format!(
                    "node '{}' produced non-finite measure {v}",
                    node.name
                )));
            }
            values[i] = v;
        }
        Ok(values)
    }

    /// Solves the graph and returns a single measure.
    ///
    /// # Errors
    ///
    /// See [`ModelGraph::solve`].
    pub fn solve_for(&self, m: MeasureId) -> Result<f64> {
        Ok(self.solve()?[m.0])
    }

    /// Name of a node.
    pub fn name(&self, m: MeasureId) -> &str {
        &self.nodes[m.0].name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_level_hierarchy() {
        // Leaves: subsystem availabilities; top: series composition.
        let mut g = ModelGraph::new();
        let a = g.constant("power", 0.999);
        let b = g.source("controller", || Ok(0.99));
        let top = g.node("system", &[a, b], |v| Ok(v[0] * v[1]));
        let out = g.solve().unwrap();
        assert!((out[top.index()] - 0.999 * 0.99).abs() < 1e-15);
        assert!((g.solve_for(top).unwrap() - 0.999 * 0.99).abs() < 1e-15);
        assert_eq!(g.name(top), "system");
    }

    #[test]
    fn diamond_dependencies() {
        let mut g = ModelGraph::new();
        let base = g.constant("base", 2.0);
        let l = g.node("left", &[base], |v| Ok(v[0] * 3.0));
        let r = g.node("right", &[base], |v| Ok(v[0] + 1.0));
        let top = g.node("top", &[l, r], |v| Ok(v[0] + v[1]));
        assert_eq!(g.solve_for(top).unwrap(), 9.0);
        assert_eq!(g.len(), 4);
    }

    #[test]
    fn errors_propagate_with_node_context() {
        let mut g = ModelGraph::new();
        let bad = g.source("bad", || Err(Error::model("submodel failed")));
        let _top = g.node("top", &[bad], |v| Ok(v[0]));
        assert!(g.solve().is_err());

        let mut g = ModelGraph::new();
        g.source("nan", || Ok(f64::NAN));
        let err = g.solve().unwrap_err();
        assert!(err.to_string().contains("nan"), "{err}");
    }

    #[test]
    fn empty_graph_rejected() {
        assert!(ModelGraph::new().solve().is_err());
        assert!(ModelGraph::new().is_empty());
    }
}
