//! # reliab-hier
//!
//! Hierarchical and fixed-point model composition — the tutorial's
//! scalability workhorse. Large real systems (the Cisco router, IBM's
//! SIP-on-WebSphere cluster) are not solved as one monolithic Markov
//! chain: each subsystem gets the cheapest adequate model (a small
//! CTMC, an RBD, a closed form), and the levels exchange scalar
//! measures. Acyclic exchanges are a [`ModelGraph`] (solved by
//! topological evaluation); cyclic parameter dependencies — submodel A
//! needs a measure of B which needs a measure of A — are solved by the
//! damped [`fixed_point`] iteration.
//!
//! ```
//! use reliab_hier::{fixed_point, FixedPointOptions};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // x = cos(x): the classic contraction, fixed point ~0.739.
//! let r = fixed_point(
//!     |x| Ok(vec![x[0].cos()]),
//!     vec![0.0],
//!     &FixedPointOptions::default(),
//! )?;
//! assert!((r.values[0] - 0.7390851332151607).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod graph;
mod iterate;

pub use graph::{MeasureId, ModelGraph};
pub use iterate::{fixed_point, fixed_point_observed, FixedPointOptions, FixedPointResult};
