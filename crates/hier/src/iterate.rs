//! Damped fixed-point iteration for cyclic model compositions.

use reliab_core::{Error, Result};

/// Options for [`fixed_point`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedPointOptions {
    /// Convergence tolerance on the `∞`-norm of the relative change.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Damping factor `α ∈ (0, 1]`:
    /// `x_{k+1} = α F(x_k) + (1 − α) x_k`. `1.0` is undamped; smaller
    /// values stabilize oscillating compositions at the cost of speed.
    pub damping: f64,
}

impl Default for FixedPointOptions {
    fn default() -> Self {
        FixedPointOptions {
            tolerance: 1e-10,
            max_iterations: 10_000,
            damping: 1.0,
        }
    }
}

impl FixedPointOptions {
    /// Sets the convergence tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Sets the damping factor.
    #[must_use]
    pub fn with_damping(mut self, damping: f64) -> Self {
        self.damping = damping;
        self
    }
}

/// Result of a fixed-point solve.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPointResult {
    /// The converged vector.
    pub values: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Residual (`∞`-norm relative change) per iteration — the
    /// convergence trace reported in the tutorial's tables.
    pub residuals: Vec<f64>,
}

/// Solves `x = F(x)` by damped successive substitution.
///
/// The tutorial's fixed-point compositions (e.g. the SIP availability
/// model) are monotone contractions on `[0,1]^n`, for which this
/// converges geometrically; the `residuals` trace lets callers verify
/// that in benches.
///
/// # Errors
///
/// * [`Error::InvalidParameter`] — bad options or empty start vector.
/// * [`Error::Convergence`] — iteration budget exhausted.
/// * [`Error::Numerical`] — `F` produced a non-finite value.
/// * Errors from `F` itself propagate unchanged.
pub fn fixed_point<F>(f: F, x0: Vec<f64>, opts: &FixedPointOptions) -> Result<FixedPointResult>
where
    F: Fn(&[f64]) -> Result<Vec<f64>>,
{
    fixed_point_observed(f, x0, opts, &mut |_, _| {})
}

/// [`fixed_point`] with a per-iteration observer: `observe(iter,
/// residual)` fires after every sweep (1-based iteration, `∞`-norm
/// relative change). This is the telemetry hook used by front-ends to
/// stream fixed-point deltas into the obs flight recorder without
/// coupling this crate to the obs layer.
///
/// # Errors
///
/// Same contract as [`fixed_point`].
pub fn fixed_point_observed<F>(
    f: F,
    x0: Vec<f64>,
    opts: &FixedPointOptions,
    observe: &mut dyn FnMut(usize, f64),
) -> Result<FixedPointResult>
where
    F: Fn(&[f64]) -> Result<Vec<f64>>,
{
    if x0.is_empty() {
        return Err(Error::invalid("fixed-point start vector is empty"));
    }
    if opts.tolerance.is_nan() || opts.tolerance <= 0.0 {
        return Err(Error::invalid(format!(
            "tolerance must be positive, got {}",
            opts.tolerance
        )));
    }
    if opts.max_iterations == 0 {
        return Err(Error::invalid("max_iterations must be > 0"));
    }
    if !(opts.damping > 0.0 && opts.damping <= 1.0) {
        return Err(Error::invalid(format!(
            "damping must lie in (0, 1], got {}",
            opts.damping
        )));
    }
    let mut x = x0;
    let mut residuals = Vec::new();
    for iter in 1..=opts.max_iterations {
        let fx = f(&x)?;
        if fx.len() != x.len() {
            return Err(Error::model(format!(
                "fixed-point map changed dimension: {} -> {}",
                x.len(),
                fx.len()
            )));
        }
        let mut worst = 0.0f64;
        for i in 0..x.len() {
            if !fx[i].is_finite() {
                return Err(Error::numerical(format!(
                    "fixed-point map produced non-finite component {i}: {}",
                    fx[i]
                )));
            }
            let new = opts.damping * fx[i] + (1.0 - opts.damping) * x[i];
            let scale = new.abs().max(x[i].abs()).max(1e-30);
            worst = worst.max((new - x[i]).abs() / scale);
            x[i] = new;
        }
        residuals.push(worst);
        observe(iter, worst);
        if worst < opts.tolerance {
            return Ok(FixedPointResult {
                values: x,
                iterations: iter,
                residuals,
            });
        }
    }
    Err(Error::Convergence {
        what: "fixed-point iteration".into(),
        iterations: opts.max_iterations,
        residual: *residuals.last().unwrap_or(&f64::NAN),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_contraction() {
        let r = fixed_point(
            |x| Ok(vec![0.5 * x[0] + 1.0]),
            vec![0.0],
            &FixedPointOptions::default(),
        )
        .unwrap();
        assert!((r.values[0] - 2.0).abs() < 1e-9);
        assert!(r.iterations < 100);
        assert_eq!(r.residuals.len(), r.iterations);
    }

    #[test]
    fn residuals_decrease_geometrically() {
        let r = fixed_point(
            |x| Ok(vec![0.5 * x[0] + 1.0]),
            vec![0.0],
            &FixedPointOptions::default(),
        )
        .unwrap();
        for w in r.residuals.windows(2).take(10) {
            assert!(w[1] < w[0]);
        }
    }

    #[test]
    fn coupled_two_dimensional_system() {
        // x = 0.3 y + 0.2 ; y = 0.4 x + 0.1
        // Solution: x = 0.2614..., y = 0.2045...
        let r = fixed_point(
            |v| Ok(vec![0.3 * v[1] + 0.2, 0.4 * v[0] + 0.1]),
            vec![0.0, 0.0],
            &FixedPointOptions::default(),
        )
        .unwrap();
        let x = 0.23 / 0.88;
        let y = 0.4 * x + 0.1;
        assert!((r.values[0] - x).abs() < 1e-9);
        assert!((r.values[1] - y).abs() < 1e-9);
    }

    #[test]
    fn damping_stabilizes_oscillation() {
        // x = 1 - x oscillates undamped from x0 = 0; damping 0.5 lands
        // on the fixed point 0.5 immediately.
        let oscillating = fixed_point(
            |x| Ok(vec![1.0 - x[0]]),
            vec![0.0],
            &FixedPointOptions {
                max_iterations: 50,
                ..Default::default()
            },
        );
        assert!(oscillating.is_err());
        let damped = fixed_point(
            |x| Ok(vec![1.0 - x[0]]),
            vec![0.0],
            &FixedPointOptions {
                damping: 0.5,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((damped.values[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn error_propagation_and_validation() {
        let opts = FixedPointOptions::default();
        assert!(fixed_point(|x| Ok(x.to_vec()), vec![], &opts).is_err());
        assert!(fixed_point(
            |_| Err(Error::model("inner model failed")),
            vec![1.0],
            &opts
        )
        .is_err());
        assert!(fixed_point(|_| Ok(vec![f64::NAN]), vec![1.0], &opts).is_err());
        assert!(fixed_point(|_| Ok(vec![1.0, 2.0]), vec![1.0], &opts).is_err());
        let bad = FixedPointOptions {
            damping: 0.0,
            ..Default::default()
        };
        assert!(fixed_point(|x| Ok(x.to_vec()), vec![1.0], &bad).is_err());
    }

    #[test]
    fn observer_sees_every_residual() {
        let mut seen: Vec<(usize, f64)> = Vec::new();
        let r = fixed_point_observed(
            |x| Ok(vec![0.5 * x[0] + 1.0]),
            vec![0.0],
            &FixedPointOptions::default(),
            &mut |iter, res| seen.push((iter, res)),
        )
        .unwrap();
        assert_eq!(seen.len(), r.iterations);
        for (k, &(iter, res)) in seen.iter().enumerate() {
            assert_eq!(iter, k + 1, "observer iterations are 1-based");
            assert_eq!(res, r.residuals[k]);
        }
    }

    #[test]
    fn budget_exhaustion_reports_convergence_error() {
        let r = fixed_point(
            |x| Ok(vec![0.999999 * x[0] + 1e-7]),
            vec![0.0],
            &FixedPointOptions {
                max_iterations: 5,
                tolerance: 1e-14,
                damping: 1.0,
            },
        );
        assert!(matches!(r, Err(Error::Convergence { iterations: 5, .. })));
    }
}
