//! Property tests: garbage collection must be invisible to holders of
//! protected references.
//!
//! Random Boolean expressions are built alongside random garbage
//! (unprotected temporaries), then a full mark-and-sweep runs. Three
//! things must survive: the protected function's truth table, its
//! probability (bitwise — GC must not perturb the DAG walked by the
//! probability recursion), and canonicity — rebuilding the same
//! expression in the swept manager must return the *same* node id,
//! proving the rebuilt unique table still hash-conses into the
//! retained subgraph instead of duplicating it.

use proptest::collection::vec;
use proptest::prelude::*;
use reliab_bdd::{Bdd, NodeId};

const NVARS: u32 = 6;

/// Builder-independent expression over variables `0..NVARS`.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Vec<Expr>),
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Xor(Vec<Expr>),
}

fn expr_strategy() -> BoxedStrategy<Expr> {
    (0usize..NVARS as usize)
        .prop_map(Expr::Var)
        .prop_recursive(3, 48, 3, |inner| {
            prop_oneof![
                vec(inner.clone(), 1..=1).prop_map(Expr::Not),
                vec(inner.clone(), 2..=3).prop_map(Expr::And),
                vec(inner.clone(), 2..=3).prop_map(Expr::Or),
                vec(inner, 2..=2).prop_map(Expr::Xor),
            ]
        })
}

fn build(bdd: &mut Bdd, e: &Expr) -> NodeId {
    match e {
        Expr::Var(i) => bdd.var(*i as u32).expect("var in range"),
        Expr::Not(xs) => {
            let x = build(bdd, &xs[0]);
            bdd.not(x)
        }
        Expr::And(xs) => {
            let ids: Vec<NodeId> = xs.iter().map(|x| build(bdd, x)).collect();
            bdd.and_all(ids)
        }
        Expr::Or(xs) => {
            let ids: Vec<NodeId> = xs.iter().map(|x| build(bdd, x)).collect();
            bdd.or_all(ids)
        }
        Expr::Xor(xs) => {
            let a = build(bdd, &xs[0]);
            let b = build(bdd, &xs[1]);
            bdd.xor(a, b)
        }
    }
}

fn truth_table(bdd: &Bdd, f: NodeId) -> Vec<bool> {
    (0..1u32 << NVARS)
        .map(|bits| {
            let assignment: Vec<bool> = (0..NVARS).map(|v| bits & (1 << v) != 0).collect();
            bdd.eval(f, &assignment)
                .expect("assignment covers all vars")
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gc_preserves_protected_functions_and_canonicity(
        expr in expr_strategy(),
        garbage in vec(expr_strategy(), 2..=5),
        probs in vec(0.05f64..0.95, NVARS as usize..=NVARS as usize),
    ) {
        let mut bdd = Bdd::new(NVARS);
        let f = build(&mut bdd, &expr);
        let guard = bdd.protect(f);

        let truth_before = truth_table(&bdd, f);
        let q_before = bdd.probability(f, &probs).expect("valid probabilities");

        // Unprotected temporaries: dead the moment they are built.
        for g in &garbage {
            let _ = build(&mut bdd, g);
        }

        let run = bdd.gc();
        // Compaction renumbers every node: re-read the root through
        // its guard before touching it again.
        let f = bdd.current(&guard);
        prop_assert_eq!(
            run.live,
            bdd.node_count(f),
            "after a sweep with one protected root, exactly that root's \
             decision nodes remain live"
        );
        prop_assert_eq!(
            run.live + 2,
            bdd.arena_size(),
            "compaction leaves only the live cone in the arena"
        );

        prop_assert_eq!(truth_table(&bdd, f), truth_before);
        let q_after = bdd.probability(f, &probs).expect("valid probabilities");
        prop_assert_eq!(q_after.to_bits(), q_before.to_bits());

        // Canonicity: the swept unique table must still recognize the
        // retained subgraph node for node.
        let rebuilt = build(&mut bdd, &expr);
        prop_assert_eq!(rebuilt, f);

        bdd.unprotect(guard);
    }
}
