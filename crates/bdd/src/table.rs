//! Open-addressing unique table: the hash-consing index of the node
//! arena.
//!
//! The table stores bare node indices; keys `(var, low, high)` live in
//! the arena itself, so a probe costs one cache line for the slot plus
//! one arena read for the candidate — no tuple keys, no per-entry
//! allocation, and FxHash instead of SipHash. Deletion (needed by
//! garbage collection and by level swaps during sifting) uses
//! tombstones; tombstone build-up triggers a same-size rehash, growth a
//! doubling rehash, both bounded by a 3/4 load factor.

use crate::{Node, NodeId};
use reliab_core::fxhash::hash_u32x3;

const EMPTY: u32 = u32::MAX;
const DELETED: u32 = u32::MAX - 1;
const MIN_CAPACITY: usize = 256;

/// Result of probing for a key: the node that holds it, or the slot
/// where it should be inserted.
pub(crate) enum Probe {
    /// Key present: the canonical node.
    Found(NodeId),
    /// Key absent: insert position for [`UniqueTable::commit`].
    Insert(usize),
}

#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Box<[u32]>,
    len: usize,
    tombstones: usize,
}

impl UniqueTable {
    pub(crate) fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; MIN_CAPACITY].into_boxed_slice(),
            len: 0,
            tombstones: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn mask(&self) -> u64 {
        (self.slots.len() - 1) as u64
    }

    /// Looks up `(var, low, high)`, returning the canonical node or the
    /// slot to insert into (reusing the first tombstone on the probe
    /// path, keeping chains short).
    #[inline]
    pub(crate) fn probe(&self, nodes: &[Node], var: u32, low: NodeId, high: NodeId) -> Probe {
        let mask = self.mask();
        let mut idx = (hash_u32x3(var, low.0, high.0) & mask) as usize;
        let mut first_tombstone: Option<usize> = None;
        loop {
            let slot = self.slots[idx];
            if slot == EMPTY {
                return Probe::Insert(first_tombstone.unwrap_or(idx));
            }
            if slot == DELETED {
                if first_tombstone.is_none() {
                    first_tombstone = Some(idx);
                }
            } else {
                let n = &nodes[slot as usize];
                if n.var == var && n.low == low && n.high == high {
                    return Probe::Found(NodeId(slot));
                }
            }
            idx = (idx + 1) & mask as usize;
        }
    }

    /// Fills the slot returned by [`UniqueTable::probe`] with `id`.
    /// Returns `true` if the caller must follow up with
    /// [`UniqueTable::rebuild`] (load factor exceeded).
    #[inline]
    pub(crate) fn commit(&mut self, slot: usize, id: NodeId) -> bool {
        if self.slots[slot] == DELETED {
            self.tombstones -= 1;
        }
        self.slots[slot] = id.0;
        self.len += 1;
        (self.len + self.tombstones) * 4 >= self.slots.len() * 3
    }

    /// Inserts `id` under its current arena key (no duplicate check
    /// beyond the probe). Used by level swaps, which re-key nodes in
    /// place.
    pub(crate) fn insert(&mut self, nodes: &[Node], id: NodeId) -> bool {
        let n = &nodes[id.0 as usize];
        match self.probe(nodes, n.var, n.low, n.high) {
            Probe::Found(existing) => {
                debug_assert_eq!(existing, id, "duplicate unique-table key");
                false
            }
            Probe::Insert(slot) => self.commit(slot, id),
        }
    }

    /// Removes `id`, which must still carry the key it was inserted
    /// under (callers remove *before* rewriting a node in place).
    pub(crate) fn remove(&mut self, nodes: &[Node], id: NodeId) {
        let n = &nodes[id.0 as usize];
        let mask = self.mask();
        let mut idx = (hash_u32x3(n.var, n.low.0, n.high.0) & mask) as usize;
        loop {
            let slot = self.slots[idx];
            if slot == id.0 {
                self.slots[idx] = DELETED;
                self.len -= 1;
                self.tombstones += 1;
                return;
            }
            debug_assert!(
                slot != EMPTY,
                "removing a node absent from the unique table"
            );
            if slot == EMPTY {
                return;
            }
            idx = (idx + 1) & mask as usize;
        }
    }

    /// Rehashes into a table sized for the current population: doubles
    /// when genuinely full, otherwise just purges tombstones.
    pub(crate) fn rebuild(&mut self, nodes: &[Node]) {
        let target = (self.len * 2).max(MIN_CAPACITY).next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; target].into_boxed_slice());
        self.len = 0;
        self.tombstones = 0;
        for &slot in old.iter() {
            if slot != EMPTY && slot != DELETED {
                self.insert(nodes, NodeId(slot));
            }
        }
    }

    /// Drops every entry and re-indexes the live (non-free,
    /// non-terminal) arena nodes — the post-GC path.
    pub(crate) fn rebuild_from_arena<I: Iterator<Item = u32>>(&mut self, nodes: &[Node], live: I) {
        for s in self.slots.iter_mut() {
            *s = EMPTY;
        }
        self.len = 0;
        self.tombstones = 0;
        for id in live {
            self.insert(nodes, NodeId(id));
        }
        if (self.len * 4) < self.slots.len() && self.slots.len() > MIN_CAPACITY {
            self.rebuild(nodes);
        }
    }
}
