//! Open-addressing unique table: the hash-consing index of the node
//! arena.
//!
//! The table stores bare node indices; keys `(var, low, high)` live in
//! the arena itself, so a probe costs one cache line for the slot plus
//! one arena read for the candidate — no tuple keys, no per-entry
//! allocation, and FxHash instead of SipHash. Deletion (needed by
//! level swaps during sifting) uses tombstones; tombstone build-up
//! triggers a same-size rehash, growth a doubling rehash, both bounded
//! by a 3/4 load factor. Garbage collection compacts the arena and
//! re-indexes from scratch via [`UniqueTable::rebuild_from_arena`].

use crate::NodeArena;
use reliab_core::fxhash::hash_u32x3;

const EMPTY: u32 = u32::MAX;
const DELETED: u32 = u32::MAX - 1;
const MIN_CAPACITY: usize = 256;

/// Result of probing for a key: the node that holds it, or the slot
/// where it should be inserted.
pub(crate) enum Probe {
    /// Key present: the canonical node.
    Found(u32),
    /// Key absent: insert position for [`UniqueTable::commit`].
    Insert(usize),
}

#[derive(Debug)]
pub(crate) struct UniqueTable {
    slots: Box<[u32]>,
    len: usize,
    tombstones: usize,
}

impl UniqueTable {
    pub(crate) fn new() -> Self {
        UniqueTable {
            slots: vec![EMPTY; MIN_CAPACITY].into_boxed_slice(),
            len: 0,
            tombstones: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn mask(&self) -> u64 {
        (self.slots.len() - 1) as u64
    }

    /// Looks up `(var, low, high)`, returning the canonical node or the
    /// slot to insert into (reusing the first tombstone on the probe
    /// path, keeping chains short).
    #[inline]
    pub(crate) fn probe(&self, arena: &NodeArena, var: u16, low: u32, high: u32) -> Probe {
        let mask = self.mask();
        let mut idx = (hash_u32x3(var as u32, low, high) & mask) as usize;
        let mut first_tombstone: Option<usize> = None;
        loop {
            let slot = self.slots[idx];
            if slot == EMPTY {
                return Probe::Insert(first_tombstone.unwrap_or(idx));
            }
            if slot == DELETED {
                if first_tombstone.is_none() {
                    first_tombstone = Some(idx);
                }
            } else if arena.var(slot) == var && arena.low(slot) == low && arena.high(slot) == high {
                return Probe::Found(slot);
            }
            idx = (idx + 1) & mask as usize;
        }
    }

    /// Read-only lookup for concurrent readers: the canonical node for
    /// `(var, low, high)` if it exists. Parallel apply workers probe
    /// the main table through a shared `&Bdd` while interning fresh
    /// nodes into their own sharded side table.
    #[inline]
    pub(crate) fn find(&self, arena: &NodeArena, var: u16, low: u32, high: u32) -> Option<u32> {
        match self.probe(arena, var, low, high) {
            Probe::Found(id) => Some(id),
            Probe::Insert(_) => None,
        }
    }

    /// Fills the slot returned by [`UniqueTable::probe`] with `id`.
    /// Returns `true` if the caller must follow up with
    /// [`UniqueTable::rebuild`] (load factor exceeded).
    #[inline]
    pub(crate) fn commit(&mut self, slot: usize, id: u32) -> bool {
        if self.slots[slot] == DELETED {
            self.tombstones -= 1;
        }
        self.slots[slot] = id;
        self.len += 1;
        (self.len + self.tombstones) * 4 >= self.slots.len() * 3
    }

    /// Inserts `id` under its current arena key (no duplicate check
    /// beyond the probe). Used by level swaps, which re-key nodes in
    /// place, and by the post-GC re-index.
    pub(crate) fn insert(&mut self, arena: &NodeArena, id: u32) -> bool {
        match self.probe(arena, arena.var(id), arena.low(id), arena.high(id)) {
            Probe::Found(existing) => {
                debug_assert_eq!(existing, id, "duplicate unique-table key");
                false
            }
            Probe::Insert(slot) => self.commit(slot, id),
        }
    }

    /// Removes `id`, which must still carry the key it was inserted
    /// under (callers remove *before* rewriting a node in place).
    pub(crate) fn remove(&mut self, arena: &NodeArena, id: u32) {
        let mask = self.mask();
        let mut idx =
            (hash_u32x3(arena.var(id) as u32, arena.low(id), arena.high(id)) & mask) as usize;
        loop {
            let slot = self.slots[idx];
            if slot == id {
                self.slots[idx] = DELETED;
                self.len -= 1;
                self.tombstones += 1;
                return;
            }
            debug_assert!(
                slot != EMPTY,
                "removing a node absent from the unique table"
            );
            if slot == EMPTY {
                return;
            }
            idx = (idx + 1) & mask as usize;
        }
    }

    /// Rehashes into a table sized for the current population: doubles
    /// when genuinely full, otherwise just purges tombstones.
    pub(crate) fn rebuild(&mut self, arena: &NodeArena) {
        let target = (self.len * 2).max(MIN_CAPACITY).next_power_of_two();
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; target].into_boxed_slice());
        self.len = 0;
        self.tombstones = 0;
        for &slot in old.iter() {
            if slot != EMPTY && slot != DELETED {
                self.insert(arena, slot);
            }
        }
    }

    /// Drops every entry and re-indexes a freshly compacted arena,
    /// whose slots `2..len` are exactly the live decision nodes. The
    /// insertion order (ascending id) is fixed, so the table layout is
    /// deterministic after every collection.
    pub(crate) fn rebuild_from_arena(&mut self, arena: &NodeArena) {
        for s in self.slots.iter_mut() {
            *s = EMPTY;
        }
        self.len = 0;
        self.tombstones = 0;
        // Size up front: rebuild_from_arena runs right after
        // compaction, when the live population is known exactly.
        let target = (arena.len() * 2).max(MIN_CAPACITY).next_power_of_two();
        if target != self.slots.len() {
            self.slots = vec![EMPTY; target].into_boxed_slice();
        }
        for id in 2..arena.len() as u32 {
            self.insert(arena, id);
        }
    }
}
