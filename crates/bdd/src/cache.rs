//! Bounded, direct-mapped ITE computed-table.
//!
//! One slot per hash bucket, overwrite on collision: the classic BDD
//! computed-table design (Brace–Rudell–Bryant). Unlike the previous
//! unbounded `HashMap`, memory is capped — an eviction costs at most a
//! recomputation, never an out-of-memory on long batch runs.
//!
//! Invalidation is generation-tagged: bumping a 32-bit generation
//! counter retires every entry in O(1), which is how garbage collection
//! guards against node-id reuse without touching each slot.
//!
//! The table starts small and doubles under sustained eviction pressure
//! (evictions since the last resize exceeding the table length) up to
//! the configured capacity, so small models never pay for a large
//! cache. Growth is deliberately reluctant and invalidation shrinks the
//! table back to its initial size: useful hits are temporally local, so
//! a compact, cache-resident table wins over a large one.

use crate::NodeId;
use reliab_core::fxhash::hash_u32x3;

/// Default maximum number of cache entries (power of two). At 20 bytes
/// an entry this bounds the cache at ~20 MiB.
pub(crate) const DEFAULT_ITE_CACHE_CAPACITY: usize = 1 << 20;

const INITIAL_ENTRIES: usize = 1 << 12;
const MIN_CAPACITY: usize = 1 << 6;

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    f: u32,
    g: u32,
    h: u32,
    r: u32,
    generation: u32,
}

#[derive(Debug)]
pub(crate) struct IteCache {
    entries: Vec<Entry>,
    /// Entries tagged with a different generation are logically absent.
    /// Starts at 1 so that zero-initialized slots never match.
    generation: u32,
    capacity: usize,
    occupied: usize,
    lookups: u64,
    hits: u64,
    evictions: u64,
    /// Evictions since the last resize; drives adaptive growth.
    pressure: usize,
}

impl IteCache {
    /// `capacity` is the maximum entry count; `0` selects the default.
    /// Values are clamped to a power of two in `[64, 2^30]`.
    pub(crate) fn new(capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            DEFAULT_ITE_CACHE_CAPACITY
        } else {
            capacity.clamp(MIN_CAPACITY, 1 << 30).next_power_of_two()
        };
        IteCache {
            entries: Vec::new(),
            generation: 1,
            capacity,
            occupied: 0,
            lookups: 0,
            hits: 0,
            evictions: 0,
            pressure: 0,
        }
    }

    pub(crate) fn lookups(&self) -> u64 {
        self.lookups
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Live entries in the current generation.
    pub(crate) fn len(&self) -> usize {
        self.occupied
    }

    #[inline]
    pub(crate) fn get(&mut self, f: NodeId, g: NodeId, h: NodeId) -> Option<NodeId> {
        self.lookups += 1;
        if self.entries.is_empty() {
            return None;
        }
        let idx = (hash_u32x3(f.0, g.0, h.0) & (self.entries.len() - 1) as u64) as usize;
        let e = self.entries[idx];
        if e.generation == self.generation && e.f == f.0 && e.g == g.0 && e.h == h.0 {
            self.hits += 1;
            Some(NodeId(e.r))
        } else {
            None
        }
    }

    #[inline]
    pub(crate) fn put(&mut self, f: NodeId, g: NodeId, h: NodeId, r: NodeId) {
        if self.entries.is_empty() {
            self.entries = vec![Entry::default(); INITIAL_ENTRIES.min(self.capacity)];
        }
        let idx = (hash_u32x3(f.0, g.0, h.0) & (self.entries.len() - 1) as u64) as usize;
        let e = &mut self.entries[idx];
        if e.generation != self.generation {
            self.occupied += 1;
        } else if e.f != f.0 || e.g != g.0 || e.h != h.0 {
            self.evictions += 1;
            self.pressure += 1;
        }
        *e = Entry {
            f: f.0,
            g: g.0,
            h: h.0,
            r: r.0,
            generation: self.generation,
        };
        if self.pressure >= self.entries.len() && self.entries.len() < self.capacity {
            self.grow();
        }
    }

    /// Doubles the table, rehashing the current generation's entries
    /// into it. Keeping the contents matters: every dropped entry is a
    /// future recomputation, and the table doubles ~10 times while a
    /// large compile ramps up to the configured capacity.
    fn grow(&mut self) {
        let target = (self.entries.len() * 2).min(self.capacity);
        let old = std::mem::replace(&mut self.entries, vec![Entry::default(); target]);
        let mask = (target - 1) as u64;
        let mut kept = 0;
        for e in old {
            if e.generation == self.generation {
                let slot = &mut self.entries[(hash_u32x3(e.f, e.g, e.h) & mask) as usize];
                if slot.generation != self.generation {
                    kept += 1;
                }
                *slot = e;
            }
        }
        self.occupied = kept;
        self.pressure = 0;
    }

    /// Folds per-worker computed-table counters from a parallel apply
    /// into the manager totals, so hit-rate reporting covers the
    /// worker-local caches too.
    pub(crate) fn fold_external(&mut self, lookups: u64, hits: u64) {
        self.lookups += lookups;
        self.hits += hits;
    }

    /// Retires every entry by bumping the generation tag. Called by
    /// GC: freed node ids may be re-allocated to different functions,
    /// so stale results must never be served.
    ///
    /// Also releases the table storage: every entry is dead after the
    /// bump, and restarting small restores cache locality for the next
    /// burst of operations (the table regrows under eviction pressure).
    /// Measured on large compiles, useful ITE hits are overwhelmingly
    /// temporally local, so a compact table hits almost as often as a
    /// huge one and probes far faster.
    pub(crate) fn invalidate_all(&mut self) {
        self.occupied = 0;
        self.pressure = 0;
        self.entries = Vec::new();
        if self.generation == u32::MAX {
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }
}
