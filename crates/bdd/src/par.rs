//! Work-partitioned parallel ITE.
//!
//! A large `ite(f, g, h)` call is decomposed by cofactoring all three
//! operands over the top `k` levels of the current order: each of the
//! `2^k` assignments yields an independent subproblem whose operands
//! live entirely in the main arena. Distinct subproblems are deduped
//! and solved by a `thread::scope` worker pool; workers read the main
//! arena and unique table through a shared `&Bdd` (never writing
//! them) and intern fresh nodes into a hash-sharded side store, so the
//! only synchronization on the hot path is a sharded `RwLock`
//! acquisition per *cache-missed* `mk`.
//!
//! Determinism does not come from the workers — provisional side-store
//! ids depend on scheduling — but from the **sequential reduction**:
//! subproblem results are re-interned into the main arena in fixed
//! triple order, and the reduced ROBDD is canonical (unique for a
//! given function and variable order). Every `jobs` count therefore
//! produces the same canonical graph, the same node count, and
//! bitwise-identical probabilities; only internal node numbering may
//! differ, which no measure observes. This mirrors the sharded-reach
//! design in `crates/spn` (provisional ids erased by a deterministic
//! replay).

use crate::{Bdd, NodeId};
use reliab_core::fxhash::{hash_u32x3, FxHashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::RwLock;

/// log2 of the side-store shard count.
const SHARD_BITS: u32 = 6;
const NSHARDS: usize = 1 << SHARD_BITS;
/// Upper bound on the split depth: 2^12 assignments is plenty to feed
/// any realistic worker count, and the prefix walk stays cheap.
const MAX_SPLIT_LEVELS: u32 = 12;

/// One shard of the side store: hash-consing map plus the node bodies,
/// indexed by local id.
#[derive(Default)]
struct Shard {
    map: FxHashMap<(u16, u32, u32), u32>,
    nodes: Vec<(u16, u32, u32)>,
}

/// Hash-sharded node store for worker-created nodes. Ids are encoded
/// as `base + ((local << SHARD_BITS) | shard)` with `base` the main
/// arena length, so `id >= base` distinguishes side-store nodes.
struct ShardedStore {
    base: u32,
    shards: Vec<RwLock<Shard>>,
}

impl ShardedStore {
    fn new(base: u32) -> Self {
        ShardedStore {
            base,
            shards: (0..NSHARDS)
                .map(|_| RwLock::new(Shard::default()))
                .collect(),
        }
    }

    /// Hash-consed insert. Workers only ever *compare* the returned
    /// ids (and use them as children of later interns) — they never
    /// read a side-store node's body during recursion, so a read lock
    /// for the fast path and a double-checked write lock suffice.
    fn intern(&self, var: u16, low: u32, high: u32) -> u32 {
        let shard = (hash_u32x3(var as u32, low, high) & (NSHARDS - 1) as u64) as usize;
        let key = (var, low, high);
        {
            let s = self.shards[shard].read().expect("shard poisoned");
            if let Some(&local) = s.map.get(&key) {
                return self.encode(shard, local);
            }
        }
        let mut s = self.shards[shard].write().expect("shard poisoned");
        if let Some(&local) = s.map.get(&key) {
            return self.encode(shard, local);
        }
        let local = s.nodes.len() as u32;
        s.nodes.push(key);
        s.map.insert(key, local);
        self.encode(shard, local)
    }

    #[inline]
    fn encode(&self, shard: usize, local: u32) -> u32 {
        debug_assert!(local < (u32::MAX - self.base) >> SHARD_BITS);
        self.base + ((local << SHARD_BITS) | shard as u32)
    }

    /// Tears the store down into per-shard node vectors for the
    /// lock-free sequential reduction.
    fn into_nodes(self) -> Vec<Vec<(u16, u32, u32)>> {
        self.shards
            .into_iter()
            .map(|s| s.into_inner().expect("shard poisoned").nodes)
            .collect()
    }
}

/// Per-worker recursion state: shared read-only manager, shared side
/// store, private computed-table.
struct Worker<'a> {
    bdd: &'a Bdd,
    store: &'a ShardedStore,
    cache: FxHashMap<(u32, u32, u32), u32>,
    lookups: u64,
    hits: u64,
}

impl<'a> Worker<'a> {
    fn new(bdd: &'a Bdd, store: &'a ShardedStore) -> Self {
        Worker {
            bdd,
            store,
            cache: FxHashMap::default(),
            lookups: 0,
            hits: 0,
        }
    }

    /// Worker-side `mk`: consult the main unique table read-only (the
    /// node may already exist there), otherwise intern into the side
    /// store. Children may themselves be provisional side-store ids,
    /// in which case the node cannot exist in the main table.
    #[inline]
    fn mk(&mut self, var: u16, low: u32, high: u32) -> u32 {
        if low == high {
            return low;
        }
        if low < self.store.base && high < self.store.base {
            if let Some(id) = self.bdd.unique.find(&self.bdd.arena, var, low, high) {
                return id;
            }
        }
        self.store.intern(var, low, high)
    }

    /// Full sequential ITE over a subproblem. Operands are always
    /// main-arena ids (cofactors of main nodes stay in the main
    /// arena); only *results* may be provisional.
    fn ite(&mut self, f: u32, g: u32, h: u32) -> u32 {
        debug_assert!(f < self.store.base && g < self.store.base && h < self.store.base);
        if f == 1 {
            return g;
        }
        if f == 0 {
            return h;
        }
        if g == h {
            return g;
        }
        if g == 1 && h == 0 {
            return f;
        }
        // Standard-triple normalization, mirroring `Bdd::ite_rec` so
        // commuted calls share a worker-cache entry.
        let (f, mut g, mut h) = (f, g, h);
        let (f, g, h) = {
            if g == f {
                g = 1;
            }
            if h == f {
                h = 0;
            }
            if g == h {
                return g;
            }
            if g == 1 && h == 0 {
                return f;
            }
            let bdd = self.bdd;
            let rank = |n: u32| (bdd.level_of_var(bdd.arena.var(n) as u32), n);
            if h == 0 && g >= 2 && rank(f) > rank(g) {
                (g, f, h)
            } else if g == 1 && h >= 2 && rank(f) > rank(h) {
                (h, g, f)
            } else {
                (f, g, h)
            }
        };
        self.lookups += 1;
        if let Some(&r) = self.cache.get(&(f, g, h)) {
            self.hits += 1;
            return r;
        }
        let top_level = [f, g, h]
            .iter()
            .filter(|&&n| n >= 2)
            .map(|&n| self.bdd.level_of_var(self.bdd.arena.var(n) as u32))
            .min()
            .expect("at least f is non-terminal");
        let v = self.bdd.level2var[top_level as usize];
        let (f0, f1) = self.cofactor(f, v);
        let (g0, g1) = self.cofactor(g, v);
        let (h0, h1) = self.cofactor(h, v);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(v as u16, lo, hi);
        self.cache.insert((f, g, h), r);
        r
    }

    #[inline]
    fn cofactor(&self, n: u32, v: u32) -> (u32, u32) {
        if n < 2 || self.bdd.arena.var(n) as u32 != v {
            (n, n)
        } else {
            (self.bdd.arena.low(n), self.bdd.arena.high(n))
        }
    }
}

impl Bdd {
    /// Attempts the work-partitioned parallel apply. Returns `None`
    /// when the call does not decompose into enough distinct
    /// subproblems to pay for the thread pool — the caller then runs
    /// the sequential path. Trees whose gates have pairwise-disjoint
    /// support (e.g. an OR spine over independent subsystems) collapse
    /// the top-level cofactor space to a handful of triples that share
    /// almost everything below the split, so they fall back by design:
    /// dispatching them would make each worker redo the shared work.
    /// Shared-support threshold structures decompose widely and do
    /// dispatch.
    pub(crate) fn ite_par(&mut self, f: NodeId, g: NodeId, h: NodeId) -> Option<NodeId> {
        // Normalize first so the main computed-table sees the same key
        // the sequential path would use.
        let (f, g, h) = match self.standard_triple(f, g, h) {
            Ok(t) => t,
            Err(r) => return Some(r),
        };
        if let Some(r) = self.cache.get(f, g, h) {
            return Some(r);
        }
        let l0 = [f, g, h]
            .iter()
            .filter(|n| !n.is_terminal())
            .map(|n| self.level_of_var(self.topvar(*n)))
            .min()
            .expect("f is non-terminal");
        let depth_budget = (self.nvars - l0).min(MAX_SPLIT_LEVELS);
        // Aim for ~8 subproblems per worker so the work-stealing
        // counter balances uneven subtree sizes.
        let want = (self.jobs * 8).next_power_of_two().trailing_zeros();
        let k = want.min(depth_budget);
        if k == 0 {
            return None;
        }
        // Cofactor the operands over the top-k-level assignments and
        // dedupe the resulting triples: shared subtrees collapse most
        // of the 2^k assignments onto few distinct subproblems.
        let n_assign = 1usize << k;
        let mut triple_index: FxHashMap<(u32, u32, u32), usize> = FxHashMap::default();
        let mut triples: Vec<(u32, u32, u32)> = Vec::new();
        let mut assign_to_triple: Vec<usize> = Vec::with_capacity(n_assign);
        for a in 0..n_assign {
            let tf = self.cofactor_prefix(f.0, a, k, l0);
            let tg = self.cofactor_prefix(g.0, a, k, l0);
            let th = self.cofactor_prefix(h.0, a, k, l0);
            let idx = *triple_index.entry((tf, tg, th)).or_insert_with(|| {
                triples.push((tf, tg, th));
                triples.len() - 1
            });
            assign_to_triple.push(idx);
        }
        if triples.len() < self.jobs * 2 {
            // Too little independent work: the operands share almost
            // everything under the split levels.
            return None;
        }
        let _span = reliab_obs::span("bdd.apply.par");
        let store = ShardedStore::new(self.arena.len() as u32);
        let next = AtomicUsize::new(0);
        let nworkers = self.jobs.min(triples.len());
        let mut results: Vec<u32> = vec![0; triples.len()];
        let mut fold_lookups = 0u64;
        let mut fold_hits = 0u64;
        {
            let shared: &Bdd = self;
            let triples_ref: &[(u32, u32, u32)] = &triples;
            let store_ref = &store;
            let next_ref = &next;
            // Per-worker: (slot, result) pairs + ITE lookup/hit tallies.
            type WorkerOutput = (Vec<(usize, u32)>, u64, u64);
            let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..nworkers)
                    .map(|_| {
                        scope.spawn(move || {
                            let mut w = Worker::new(shared, store_ref);
                            let mut out: Vec<(usize, u32)> = Vec::new();
                            loop {
                                let idx = next_ref.fetch_add(1, Ordering::Relaxed);
                                if idx >= triples_ref.len() {
                                    break;
                                }
                                let (tf, tg, th) = triples_ref[idx];
                                out.push((idx, w.ite(tf, tg, th)));
                            }
                            (out, w.lookups, w.hits)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|hd| hd.join().expect("bdd apply worker panicked"))
                    .collect()
            });
            for (out, lookups, hits) in worker_outputs {
                fold_lookups += lookups;
                fold_hits += hits;
                for (idx, r) in out {
                    results[idx] = r;
                }
            }
        }
        self.cache.fold_external(fold_lookups, fold_hits);
        // Deterministic sequential reduction: re-intern provisional
        // side-store results into the main arena in fixed triple
        // order, then recombine the per-assignment layer bottom-up.
        let side = store.into_nodes();
        let base = self.arena.len() as u32;
        let mut memo: FxHashMap<u32, NodeId> = FxHashMap::default();
        let reduced: Vec<NodeId> = results
            .iter()
            .map(|&pid| self.intern_result(pid, base, &side, &mut memo))
            .collect();
        let mut layer: Vec<NodeId> = assign_to_triple.iter().map(|&t| reduced[t]).collect();
        for d in (0..k).rev() {
            let v = self.level2var[(l0 + d) as usize];
            for j in 0..(1usize << d) {
                layer[j] = self.mk(v, layer[2 * j], layer[2 * j + 1]);
            }
            layer.truncate(1 << d);
        }
        let r = layer[0];
        self.cache.put(f, g, h, r);
        self.par_apply_calls += 1;
        self.par_subproblems += triples.len() as u64;
        if reliab_obs::trace_enabled() {
            reliab_obs::event(
                "bdd.apply.par",
                &[
                    ("workers", nworkers.into()),
                    ("split_levels", k.into()),
                    ("subproblems", triples.len().into()),
                    (
                        "side_nodes",
                        side.iter().map(Vec::len).sum::<usize>().into(),
                    ),
                ],
            );
        }
        Some(r)
    }

    /// Follows the top-`k`-level assignment `a` down from `n`:
    /// variables at levels `l0 + d` are fixed to bit `k-1-d` of `a`
    /// (MSB = topmost level). Pure edge descent — allocates nothing.
    fn cofactor_prefix(&self, mut n: u32, a: usize, k: u32, l0: u32) -> u32 {
        while n >= 2 {
            let l = self.level_of_var(self.arena.var(n) as u32);
            if l >= l0 + k {
                break;
            }
            debug_assert!(l >= l0);
            let bit = (a >> (k - 1 - (l - l0))) & 1;
            n = if bit == 1 {
                self.arena.high(n)
            } else {
                self.arena.low(n)
            };
        }
        n
    }

    /// Re-interns a provisional side-store id (and its side-store
    /// descendants) into the main arena. Main-arena ids pass through
    /// untouched — side-store nodes can reference them as children,
    /// never the other way around.
    fn intern_result(
        &mut self,
        pid: u32,
        base: u32,
        side: &[Vec<(u16, u32, u32)>],
        memo: &mut FxHashMap<u32, NodeId>,
    ) -> NodeId {
        if pid < base {
            return NodeId(pid);
        }
        if let Some(&r) = memo.get(&pid) {
            return r;
        }
        let off = pid - base;
        let shard = (off & (NSHARDS as u32 - 1)) as usize;
        let local = (off >> SHARD_BITS) as usize;
        let (var, lo, hi) = side[shard][local];
        let l = self.intern_result(lo, base, side, memo);
        let h = self.intern_result(hi, base, side, memo);
        let r = self.mk(var as u32, l, h);
        memo.insert(pid, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use crate::{Bdd, BddConfig, NodeId};

    /// A moderately shared random-ish monotone function over `n` vars.
    fn build(b: &mut Bdd, n: u32) -> NodeId {
        let vars: Vec<NodeId> = (0..n).map(|i| b.var(i).unwrap()).collect();
        let mut terms = Vec::new();
        for i in 0..(n as usize - 2) {
            let t = b.and(vars[i], vars[i + 2]);
            terms.push(t);
        }
        let any = b.or_all(terms);
        let thresh = b.at_least_k(&vars, n as usize / 2);
        b.or(any, thresh)
    }

    #[test]
    fn parallel_apply_matches_sequential_bitwise() {
        let n = 18u32;
        let p: Vec<f64> = (0..n).map(|i| 0.02 + 0.01 * i as f64).collect();
        let mut seq = Bdd::new(n);
        let f_seq = build(&mut seq, n);
        let q_seq = seq.probability(f_seq, &p).unwrap();
        let count_seq = seq.node_count(f_seq);
        for jobs in [2usize, 4, 8] {
            let mut cfg = BddConfig::new();
            cfg.jobs = jobs;
            cfg.par_node_threshold = 1; // force the parallel path
            let mut par = Bdd::new_with(n, cfg);
            let f_par = build(&mut par, n);
            let q_par = par.probability(f_par, &p).unwrap();
            assert_eq!(
                q_seq.to_bits(),
                q_par.to_bits(),
                "jobs={jobs}: {q_seq} vs {q_par}"
            );
            assert_eq!(count_seq, par.node_count(f_par), "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_dispatch_is_counted() {
        let n = 20u32;
        let mut cfg = BddConfig::new();
        cfg.jobs = 4;
        cfg.par_node_threshold = 1;
        let mut b = Bdd::new_with(n, cfg);
        let _f = build(&mut b, n);
        let s = b.stats();
        assert_eq!(s.jobs, 4);
        assert!(
            s.par_apply_calls > 0,
            "expected at least one parallel dispatch, got {s:?}"
        );
        assert!(s.par_subproblems >= s.par_apply_calls);
    }

    #[test]
    fn small_calls_fall_back_to_sequential() {
        let mut cfg = BddConfig::new();
        cfg.jobs = 4; // threshold left at default: never reached here
        let mut b = Bdd::new_with(4, cfg);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let f = b.and(x, y);
        assert_eq!(b.probability(f, &[0.5, 0.5, 0.0, 0.0]).unwrap(), 0.25);
        assert_eq!(b.stats().par_apply_calls, 0);
    }
}
