//! Dynamic variable reordering: Rudell's sifting over adjacent-level
//! swaps.
//!
//! The manager keeps a `var ↔ level` indirection, so reordering never
//! renames variables — per-variable probability vectors and the
//! caller's `event → var` maps all stay valid. A swap of adjacent
//! levels rewrites only the nodes labelled with the upper variable,
//! **in place**: a node keeps its id (and therefore its function)
//! while its `(var, low, high)` key changes, which is exactly what the
//! unique table's remove/insert pair supports.
//!
//! Sifting moves one variable at a time through every level, records
//! the position minimizing the number of live reachable nodes, and
//! parks it there (falling back to the best seen). Garbage from
//! rewritten nodes is collected between variables so size measurements
//! stay honest — and since every collection *compacts* the arena, node
//! ids churn during a sift: the caller's root comes back renumbered in
//! the returned [`SiftRun`].

use crate::{Bdd, NodeId, SiftRun, NONE};

impl Bdd {
    /// Rudell sifting: greedily repositions every variable at its
    /// locally optimal level, largest-population variables first.
    ///
    /// `root` is protected for the duration (along with any roots the
    /// caller already holds — the *whole manager* is reordered, so
    /// other protected functions stay consistent too). **Unprotected
    /// nodes are garbage-collected** as part of sifting, exactly as by
    /// [`Bdd::gc`], and compaction renumbers every node: use
    /// [`SiftRun::root`] afterwards (and [`Bdd::current`] for any
    /// other roots the caller holds).
    pub fn sift(&mut self, root: NodeId) -> SiftRun {
        if self.nvars < 2 {
            return SiftRun {
                root,
                size: self.node_count(root),
            };
        }
        let guard = self.protect(root);
        // Start from a clean arena so bucket scans see only live nodes.
        self.gc();
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); self.nvars as usize];
        self.fill_buckets(&mut buckets);
        let mut vars: Vec<u32> = (0..self.nvars)
            .filter(|&v| !buckets[v as usize].is_empty())
            .collect();
        // Largest level first (classic heuristic); stable sort keeps
        // the tie-break deterministic.
        vars.sort_by_key(|&v| std::cmp::Reverse(buckets[v as usize].len()));
        let mut mark = Vec::new();
        for v in vars {
            self.sift_var(v, &mut buckets, &mut mark);
            // Swaps orphan the upper variable's old children; collect
            // them so the next variable's measurements are exact.
            self.gc();
            self.fill_buckets(&mut buckets);
        }
        self.sift_runs += 1;
        let root = self.current(&guard);
        self.unprotect(guard);
        SiftRun {
            root,
            size: self.node_count(root),
        }
    }

    /// Rebuilds the per-variable node buckets from an arena scan.
    fn fill_buckets(&self, buckets: &mut [Vec<u32>]) {
        for b in buckets.iter_mut() {
            b.clear();
        }
        for id in 2..self.arena.len() as u32 {
            let var = self.arena.var(id) as u32;
            if var < self.nvars {
                buckets[var as usize].push(id);
            }
        }
    }

    /// Counts decision nodes reachable from the protected roots —
    /// the objective function sifting minimizes. Garbage created by
    /// earlier swaps is invisible to it.
    fn reachable_live(&self, mark: &mut Vec<bool>) -> usize {
        mark.clear();
        mark.resize(self.arena.len(), false);
        let mut count = 0usize;
        let mut stack: Vec<u32> = self.roots.iter().copied().filter(|&r| r != NONE).collect();
        while let Some(id) = stack.pop() {
            if id < 2 || mark[id as usize] {
                continue;
            }
            mark[id as usize] = true;
            count += 1;
            stack.push(self.arena.low(id));
            stack.push(self.arena.high(id));
        }
        count
    }

    /// Moves `var` down to the bottom level, back up to the top, then
    /// parks it at the best position observed.
    fn sift_var(&mut self, var: u32, buckets: &mut [Vec<u32>], mark: &mut Vec<bool>) {
        let bottom = self.nvars as usize - 1;
        let start = self.var2level[var as usize] as usize;
        let mut best_size = self.reachable_live(mark);
        let mut best = start;
        let mut cur = start;
        while cur < bottom {
            self.swap_levels(cur, buckets);
            cur += 1;
            let s = self.reachable_live(mark);
            if s < best_size {
                best_size = s;
                best = cur;
            }
        }
        while cur > 0 {
            self.swap_levels(cur - 1, buckets);
            cur -= 1;
            let s = self.reachable_live(mark);
            if s < best_size {
                best_size = s;
                best = cur;
            }
        }
        while cur < best {
            self.swap_levels(cur, buckets);
            cur += 1;
        }
        debug_assert_eq!(self.var2level[var as usize] as usize, best);
    }

    /// Swaps the variables at `level` and `level + 1`.
    ///
    /// Only nodes labelled with the upper variable `a` change. A node
    /// `a ? (b ? f01 : f00) : (b ? f11 : f10)` is rewritten in place to
    /// `b ? (a ? f11 : f01) : (a ? f10 : f00)` — same function, same
    /// id. Nodes of `a` that do not reference `b` are untouched (their
    /// cofactors commute trivially). The rewrite cannot create a
    /// degenerate node (`g0 == g1` would require both cofactor pairs
    /// equal, which contradicts the node referencing `b` at all) and
    /// cannot collide with an existing `b`-node key (two distinct nodes
    /// never denote the same function in a canonical ROBDD).
    fn swap_levels(&mut self, level: usize, buckets: &mut [Vec<u32>]) {
        let a = self.level2var[level];
        let b = self.level2var[level + 1];
        let a16 = a as u16;
        let b16 = b as u16;
        let ids = std::mem::take(&mut buckets[a as usize]);
        let mut keep: Vec<u32> = Vec::with_capacity(ids.len());
        for id in ids {
            debug_assert_eq!(self.arena.var(id), a16);
            let (low, high) = (self.arena.low(id), self.arena.high(id));
            let low_is_b = self.arena.var(low) == b16;
            let high_is_b = self.arena.var(high) == b16;
            if !low_is_b && !high_is_b {
                keep.push(id);
                continue;
            }
            let (f00, f01) = if low_is_b {
                (self.arena.low(low), self.arena.high(low))
            } else {
                (low, low)
            };
            let (f10, f11) = if high_is_b {
                (self.arena.low(high), self.arena.high(high))
            } else {
                (high, high)
            };
            // Remove under the old key before touching the node.
            self.unique.remove(&self.arena, id);
            let (g0, g0_new) = self.mk_tracked(a, NodeId(f00), NodeId(f10));
            if g0_new {
                keep.push(g0.0);
            }
            let (g1, g1_new) = self.mk_tracked(a, NodeId(f01), NodeId(f11));
            if g1_new {
                keep.push(g1.0);
            }
            debug_assert_ne!(g0, g1, "swap produced a degenerate node");
            self.arena.set(id, b16, g0.0, g1.0);
            self.unique.insert(&self.arena, id);
            buckets[b as usize].push(id);
        }
        buckets[a as usize] = keep;
        self.level2var.swap(level, level + 1);
        self.var2level[a as usize] = (level + 1) as u32;
        self.var2level[b as usize] = level as u32;
        self.sift_swaps += 1;
    }
}

#[cfg(test)]
mod tests {
    use crate::{Bdd, NodeId};

    /// Builds the textbook order-sensitive function
    /// `(x0∧x1) ∨ (x2∧x3) ∨ … ` with variables interleaved so the
    /// declared order is pessimal.
    fn interleaved_and_or(b: &mut Bdd, pairs: usize) -> NodeId {
        // Declared order x0 x1 … x{2p-1}; pair i couples x_i with
        // x_{p+i}, which is the bad interleaving for the identity
        // order.
        let p = pairs as u32;
        let mut terms = Vec::new();
        for i in 0..p {
            let u = b.var(i).unwrap();
            let v = b.var(p + i).unwrap();
            terms.push(b.and(u, v));
        }
        b.or_all(terms)
    }

    #[test]
    fn sift_shrinks_pessimal_order() {
        let mut b = Bdd::new(12);
        let f = interleaved_and_or(&mut b, 6);
        let before = b.node_count(f);
        let run = b.sift(f);
        // The good order is linear (2p nodes); the bad one exponential.
        assert!(
            run.size < before,
            "sifting should shrink {before} nodes (got {})",
            run.size
        );
        assert!(run.size <= 2 * 6 + 2);
        assert!(b.stats().sift_runs == 1);
        assert!(b.stats().sift_swaps > 0);
        assert_eq!(b.node_count(run.root), run.size);
    }

    #[test]
    fn sift_preserves_function_and_probability() {
        let mut b = Bdd::new(10);
        let f = interleaved_and_or(&mut b, 5);
        let p: Vec<f64> = (0..10).map(|i| 0.05 + 0.08 * i as f64).collect();
        let before = b.probability(f, &p).unwrap();
        // Sifting garbage-collects (compacting), so the old `f` id is
        // dangling afterwards — use the returned root.
        let f = b.sift(f).root;
        let after = b.probability(f, &p).unwrap();
        assert!(
            (before - after).abs() < 1e-12,
            "probability changed: {before} vs {after}"
        );
        // Canonicity after reorder: rebuilding under the new order
        // reaches the same node.
        let g = interleaved_and_or(&mut b, 5);
        assert_eq!(f, g);
        // Truth table on a few assignments.
        for bits in [0u32, 0b1000010001, 0b0000100001, 0b1111111111] {
            let assignment: Vec<bool> = (0..10).map(|i| bits >> i & 1 == 1).collect();
            let direct = (0..5).any(|i| assignment[i] && assignment[5 + i]);
            assert_eq!(b.eval(f, &assignment).unwrap(), direct);
        }
    }

    #[test]
    fn sift_keeps_other_protected_roots_valid() {
        let mut b = Bdd::new(8);
        let f = interleaved_and_or(&mut b, 4);
        let vars: Vec<NodeId> = (0..8).map(|i| b.var(i).unwrap()).collect();
        let g = b.at_least_k(&vars, 3);
        let g_guard = b.protect(g);
        let p = [0.2; 8];
        let pf = b.probability(f, &p).unwrap();
        let pg = b.probability(g, &p).unwrap();
        let f = b.sift(f).root;
        // g was renumbered by sifting's compactions — re-read it.
        let g = b.current(&g_guard);
        assert!((b.probability(f, &p).unwrap() - pf).abs() < 1e-12);
        assert!((b.probability(g, &p).unwrap() - pg).abs() < 1e-12);
        b.unprotect(g_guard);
    }

    #[test]
    fn sift_trivial_managers() {
        let mut b = Bdd::new(1);
        let x = b.var(0).unwrap();
        let run = b.sift(x);
        assert_eq!((run.root, run.size), (x, 1));
        let mut b2 = Bdd::new(3);
        assert_eq!(b2.sift(NodeId::TRUE).size, 0);
    }

    #[test]
    fn restrict_respects_levels_after_sift() {
        let mut b = Bdd::new(6);
        let f = interleaved_and_or(&mut b, 3);
        let f = b.sift(f).root;
        // Restricting by each variable still produces the correct
        // cofactor regardless of where the level moved.
        let p: Vec<f64> = vec![0.3; 6];
        for v in 0..6u32 {
            let f1 = b.restrict(f, v, true).unwrap();
            let f0 = b.restrict(f, v, false).unwrap();
            let direct = b.probability(f, &p).unwrap();
            let split = 0.3 * b.probability(f1, &p).unwrap() + 0.7 * b.probability(f0, &p).unwrap();
            assert!((direct - split).abs() < 1e-12);
        }
    }
}
