//! # reliab-bdd
//!
//! A reduced ordered binary decision diagram (ROBDD) engine sized for
//! reliability analysis: Boolean structure functions of fault trees,
//! block diagrams and network graphs are compiled to BDDs, after which
//! exact failure probability, Birnbaum derivatives, and minimal cut-set
//! extraction are linear in the (shared) BDD size.
//!
//! The kernel follows the Brace–Rudell–Bryant design, tuned for large
//! fault trees:
//!
//! - **Packed struct-of-arrays arena** — a node is 10 bytes split
//!   across three parallel vectors (`var: u16`, `low: u32`,
//!   `high: u32`), so a 64-byte cache line holds 32 variable tags or
//!   16 child pointers of *consecutive* nodes. Hash consing goes
//!   through a custom linear-probing table keyed by FxHash over
//!   `(var, low, high)` (see [`reliab_core::fxhash`]).
//! - **Bounded ITE cache + standard triples** — ITE calls are
//!   normalized to a canonical operand form (Brace–Rudell–Bryant
//!   "standard triples") before the computed-table lookup, so
//!   commuted AND/OR calls share entries. The table is direct-mapped,
//!   power-of-two sized, grows adaptively under eviction pressure up
//!   to a configurable cap, and is invalidated in O(1) by a
//!   generation tag.
//! - **Compacting mark-and-sweep GC** — callers pin roots with
//!   [`Bdd::protect`]; [`Bdd::gc`] copies the live cone into a fresh
//!   arena in **DFS preorder**, so the hot traversals (apply descent,
//!   probability evaluation, cut-set extraction) walk memory almost
//!   sequentially. Compaction renumbers every node: re-read roots
//!   through [`Bdd::current`] after a collection. [`Bdd::maybe_gc`]
//!   triggers on an allocation threshold so long batch runs stop
//!   leaking dead nodes.
//! - **Work-partitioned parallel apply** — with [`BddConfig::jobs`] > 1,
//!   large ITE calls are split by cofactoring the operands over the
//!   top `k` levels into independent subproblems solved on a
//!   `thread::scope` pool over a sharded side table, then re-interned
//!   sequentially in a fixed order. Every jobs count yields the same
//!   canonical BDD, so probabilities are bitwise identical.
//! - **Dynamic variable reordering** — [`Bdd::sift`] runs Rudell's
//!   sifting over adjacent-level swaps. A level indirection
//!   (`var ↔ level`) means per-variable probability vectors stay
//!   valid across reorders.
//!
//! ```
//! use reliab_bdd::Bdd;
//!
//! # fn main() -> Result<(), reliab_bdd::BddError> {
//! let mut bdd = Bdd::new(2);
//! let a = bdd.var(0)?;
//! let b = bdd.var(1)?;
//! let f = bdd.or(a, b); // system fails if either component fails
//! let p = bdd.probability(f, &[0.1, 0.2])?;
//! assert!((p - 0.28).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod cache;
mod par;
mod reorder;
mod table;

use cache::IteCache;
use reliab_core::fxhash::FxHashMap;
use std::fmt;
use table::{Probe, UniqueTable};

/// Variable tag of the two terminal arena slots.
const TERMINAL_VAR: u16 = u16::MAX;
/// Sentinel for "no id" in protected-root slots.
const NONE: u32 = u32::MAX;

/// Maximum variable count a manager supports. Variables are packed
/// into `u16` arena tags with [`u16::MAX`] reserved for the terminal
/// marker, so indices `0..MAX_VARS` are representable.
pub const MAX_VARS: u32 = u16::MAX as u32;

/// Default live-node threshold before [`Bdd::maybe_gc`] collects.
///
/// Deliberately small: collecting early keeps the arena, unique table,
/// and computed table resident in the CPU cache, which on large
/// fault-tree compiles is worth far more than the mark-and-sweep costs
/// (measured 2–3x end to end on a 10 800-event tree). The trigger
/// adapts to `max(threshold, 2 × live)` after each collection, so
/// models that genuinely need a large live set ramp up instead of
/// thrashing.
pub const DEFAULT_GC_THRESHOLD: usize = 1 << 15;

/// Default arena population below which [`BddConfig::jobs`] > 1 still
/// runs the sequential apply: splitting a small call across threads
/// costs more than it saves.
pub const DEFAULT_PAR_NODE_THRESHOLD: usize = 1 << 14;

/// Errors from the BDD layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BddError {
    /// A variable index at or beyond the declared variable count.
    VariableOutOfRange {
        /// Offending index.
        var: u32,
        /// Declared count.
        nvars: u32,
    },
    /// A probability vector whose length disagrees with the variable
    /// count, or entries outside `[0, 1]`.
    BadProbabilities(String),
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::VariableOutOfRange { var, nvars } => {
                write!(f, "variable {var} out of range (nvars = {nvars})")
            }
            BddError::BadProbabilities(m) => write!(f, "bad probability vector: {m}"),
        }
    }
}

impl std::error::Error for BddError {}

/// Handle to a BDD node inside a [`Bdd`] manager.
///
/// Node ids are dense `u32` indices into the arena. They are stable
/// under node construction but **renumbered by garbage collection**
/// (the collector compacts live nodes into DFS preorder) — hold a
/// [`BddRef`] across [`Bdd::gc`] and re-read with [`Bdd::current`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant FALSE function.
    pub const FALSE: NodeId = NodeId(0);
    /// The constant TRUE function.
    pub const TRUE: NodeId = NodeId(1);

    fn is_terminal(self) -> bool {
        self.0 < 2
    }
}

/// Packed struct-of-arrays node store: 10 bytes per node across three
/// parallel vectors. Complement edges are not used (reliability
/// functions are overwhelmingly monotone, and complement-free ids keep
/// probability evaluation branch-free), so an id is a plain index.
#[derive(Debug)]
pub(crate) struct NodeArena {
    vars: Vec<u16>,
    lows: Vec<u32>,
    highs: Vec<u32>,
}

impl NodeArena {
    /// An arena holding only the two terminal sentinels.
    fn with_terminals() -> Self {
        NodeArena {
            vars: vec![TERMINAL_VAR; 2],
            lows: vec![0; 2],
            highs: vec![0; 2],
        }
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.vars.len()
    }

    #[inline]
    pub(crate) fn var(&self, id: u32) -> u16 {
        self.vars[id as usize]
    }

    #[inline]
    pub(crate) fn low(&self, id: u32) -> u32 {
        self.lows[id as usize]
    }

    #[inline]
    pub(crate) fn high(&self, id: u32) -> u32 {
        self.highs[id as usize]
    }

    #[inline]
    fn push(&mut self, var: u16, low: u32, high: u32) -> u32 {
        let id = self.vars.len() as u32;
        self.vars.push(var);
        self.lows.push(low);
        self.highs.push(high);
        id
    }

    /// Rewrites a node in place (level swaps re-key nodes without
    /// changing their id).
    #[inline]
    pub(crate) fn set(&mut self, id: u32, var: u16, low: u32, high: u32) {
        self.vars[id as usize] = var;
        self.lows[id as usize] = low;
        self.highs[id as usize] = high;
    }
}

/// External reference handle returned by [`Bdd::protect`]: while held,
/// the referenced function (and everything it reaches) survives
/// [`Bdd::gc`]. Pass it back to [`Bdd::unprotect`] to release.
///
/// Garbage collection compacts the arena and renumbers nodes, so the
/// id captured at protect time goes stale after a collection — read
/// the live id back with [`Bdd::current`].
#[derive(Debug)]
#[must_use = "dropping a BddRef without unprotect() pins the root forever"]
pub struct BddRef {
    slot: usize,
    id: NodeId,
}

impl BddRef {
    /// The node id as of protect time. Stale after any [`Bdd::gc`] —
    /// prefer [`Bdd::current`] when collections may have run.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

/// Outcome of one garbage-collection pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct GcRun {
    /// Dead nodes dropped by this pass.
    pub reclaimed: usize,
    /// Live decision nodes remaining after the pass.
    pub live: usize,
    /// Live nodes relocated to a new id by compaction.
    pub moved: usize,
}

/// Outcome of a [`Bdd::sift`] reordering pass.
///
/// Sifting garbage-collects between variables, and every collection
/// compacts — so the root the caller passed in has been renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct SiftRun {
    /// The sifted function under its post-compaction id.
    pub root: NodeId,
    /// Decision nodes reachable from `root` after reordering.
    pub size: usize,
}

/// Construction-time tuning knobs for a [`Bdd`] manager.
///
/// `0` means "use the built-in default" for every field, so
/// `BddConfig::default()` mirrors [`Bdd::new`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct BddConfig {
    /// Maximum ITE computed-table entries (rounded up to a power of
    /// two; `0` = default, currently 2^20).
    pub ite_cache_capacity: usize,
    /// Live-node count at which [`Bdd::maybe_gc`] starts collecting
    /// (`0` = default, currently 2^15; see [`DEFAULT_GC_THRESHOLD`]).
    pub gc_node_threshold: usize,
    /// Worker threads for the partitioned parallel apply (`0` or `1`
    /// = sequential). Every jobs count produces the same canonical
    /// BDD, so results are bitwise reproducible regardless.
    pub jobs: usize,
    /// Arena population below which parallel apply falls back to the
    /// sequential path (`0` = default, currently 2^14; see
    /// [`DEFAULT_PAR_NODE_THRESHOLD`]).
    pub par_node_threshold: usize,
}

impl BddConfig {
    /// All-defaults configuration.
    pub fn new() -> Self {
        BddConfig::default()
    }
}

/// Operation counters and table sizes of a [`Bdd`] manager — the
/// observability surface consumed by `SolveReport` stats.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct BddStats {
    /// Nodes allocated in the arena, including the two terminals.
    pub arena_nodes: usize,
    /// Entries in the unique (hash-consing) table.
    pub unique_entries: usize,
    /// Live entries in the ITE computed-table (current generation).
    pub ite_cache_entries: usize,
    /// ITE computed-table lookups since construction (including
    /// per-worker lookups from parallel applies).
    pub ite_cache_lookups: u64,
    /// ITE computed-table hits since construction.
    pub ite_cache_hits: u64,
    /// ITE computed-table entries overwritten by colliding keys (the
    /// bounded-cache replacement cost).
    pub ite_cache_evictions: u64,
    /// Garbage-collection passes run. Every pass compacts, so this is
    /// also the compaction count.
    pub gc_runs: u64,
    /// Total nodes reclaimed across all GC passes.
    pub gc_reclaimed: u64,
    /// Total live nodes relocated by GC compaction (the preorder
    /// re-sort's data-movement cost).
    pub gc_moved: u64,
    /// ITE calls dispatched to the work-partitioned parallel apply.
    pub par_apply_calls: u64,
    /// Independent subproblems solved across all parallel applies.
    pub par_subproblems: u64,
    /// Configured worker threads (1 = sequential).
    pub jobs: usize,
    /// Sifting reorder passes run.
    pub sift_runs: u64,
    /// Adjacent-level swaps performed across all sifting passes.
    pub sift_swaps: u64,
    /// Currently allocated decision nodes (dead nodes count until the
    /// next collection sweeps them).
    pub live_nodes: usize,
    /// High-water mark of allocated decision nodes.
    pub peak_live_nodes: usize,
}

impl BddStats {
    /// ITE computed-table hit rate in `[0, 1]` (`0` before any
    /// lookup).
    pub fn ite_hit_rate(&self) -> f64 {
        if self.ite_cache_lookups == 0 {
            0.0
        } else {
            self.ite_cache_hits as f64 / self.ite_cache_lookups as f64
        }
    }
}

/// An ROBDD manager over a fixed set of Boolean variables.
///
/// Variables are identified by their declaration index `0..nvars`,
/// which never changes; the *level* (position in the ordering) is an
/// internal indirection that starts as the identity and is permuted by
/// [`Bdd::sift`]. Callers index probability vectors by variable, so
/// reordering is transparent to them.
#[derive(Debug)]
pub struct Bdd {
    arena: NodeArena,
    unique: UniqueTable,
    cache: IteCache,
    nvars: u32,
    /// `var2level[var]` = current level of `var` (0 = topmost).
    var2level: Vec<u32>,
    /// `level2var[level]` = variable at that level.
    level2var: Vec<u32>,
    /// Protected roots; `NONE` marks a reusable slot. GC compaction
    /// rewrites these in place — the one id store that survives a
    /// collection.
    roots: Vec<u32>,
    peak_live: usize,
    gc_threshold: usize,
    next_gc_at: usize,
    jobs: usize,
    par_node_threshold: usize,
    gc_runs: u64,
    gc_reclaimed: u64,
    gc_moved: u64,
    par_apply_calls: u64,
    par_subproblems: u64,
    pub(crate) sift_runs: u64,
    pub(crate) sift_swaps: u64,
}

impl Bdd {
    /// Creates a manager for `nvars` Boolean variables with default
    /// cache and GC settings.
    ///
    /// # Panics
    ///
    /// Panics if `nvars` exceeds [`MAX_VARS`] (the packed node format
    /// stores variables as `u16`).
    pub fn new(nvars: u32) -> Self {
        Bdd::new_with(nvars, BddConfig::default())
    }

    /// Creates a manager with explicit cache/GC/parallelism tuning.
    ///
    /// # Panics
    ///
    /// Panics if `nvars` exceeds [`MAX_VARS`].
    pub fn new_with(nvars: u32, config: BddConfig) -> Self {
        assert!(
            nvars <= MAX_VARS,
            "nvars {nvars} exceeds the packed-node limit of {MAX_VARS} variables"
        );
        let gc_threshold = if config.gc_node_threshold == 0 {
            DEFAULT_GC_THRESHOLD
        } else {
            config.gc_node_threshold
        };
        Bdd {
            arena: NodeArena::with_terminals(),
            unique: UniqueTable::new(),
            cache: IteCache::new(config.ite_cache_capacity),
            nvars,
            var2level: (0..nvars).collect(),
            level2var: (0..nvars).collect(),
            roots: Vec::new(),
            peak_live: 0,
            gc_threshold,
            next_gc_at: gc_threshold,
            jobs: config.jobs.max(1),
            par_node_threshold: if config.par_node_threshold == 0 {
                DEFAULT_PAR_NODE_THRESHOLD
            } else {
                config.par_node_threshold
            },
            gc_runs: 0,
            gc_reclaimed: 0,
            gc_moved: 0,
            par_apply_calls: 0,
            par_subproblems: 0,
            sift_runs: 0,
            sift_swaps: 0,
        }
    }

    /// Declared variable count.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// Configured apply worker threads (1 = sequential).
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Total arena slots, including the two terminals (diagnostic).
    pub fn arena_size(&self) -> usize {
        self.arena.len()
    }

    /// Allocated decision nodes. With a compacting collector there is
    /// no free list: dead nodes count here until the next
    /// [`Bdd::gc`] drops them, which is exactly the population
    /// [`Bdd::maybe_gc`] triggers on.
    pub fn live_nodes(&self) -> usize {
        self.arena.len() - 2
    }

    /// Current variable order, topmost level first.
    pub fn current_order(&self) -> Vec<u32> {
        self.level2var.clone()
    }

    /// Level currently occupied by `var` (0 = topmost), or `None` if
    /// out of range.
    pub fn var_level(&self, var: u32) -> Option<u32> {
        self.var2level.get(var as usize).copied()
    }

    #[inline]
    pub(crate) fn level_of_var(&self, var: u32) -> u32 {
        self.var2level[var as usize]
    }

    /// Emits a `bdd.ite` summary trace event and flushes the manager's
    /// operation counters into the global metrics registry (counters
    /// `bdd.ite.lookups` / `bdd.ite.hits` / `bdd.ite.evictions`,
    /// `bdd.gc.runs` / `bdd.gc.reclaimed` / `bdd.gc.moved`,
    /// `bdd.par.apply_calls` / `bdd.par.subproblems`,
    /// `bdd.sift.swaps`, gauge `bdd.ite.hit_rate`, histogram
    /// `bdd.arena_nodes`). Solver front-ends call this once per
    /// completed solve; near-free when observability is disabled.
    pub fn record_observability(&self) {
        if reliab_obs::trace_enabled() {
            reliab_obs::event(
                "bdd.ite",
                &[
                    ("lookups", self.cache.lookups().into()),
                    ("hits", self.cache.hits().into()),
                    ("nodes", self.arena.len().into()),
                ],
            );
        }
        if reliab_obs::metrics_enabled() {
            reliab_obs::counter_add("bdd.ite.lookups", self.cache.lookups());
            reliab_obs::counter_add("bdd.ite.hits", self.cache.hits());
            reliab_obs::counter_add("bdd.ite.evictions", self.cache.evictions());
            reliab_obs::gauge_set("bdd.ite.hit_rate", self.stats().ite_hit_rate());
            reliab_obs::counter_add("bdd.gc.runs", self.gc_runs);
            reliab_obs::counter_add("bdd.gc.reclaimed", self.gc_reclaimed);
            reliab_obs::counter_add("bdd.gc.moved", self.gc_moved);
            reliab_obs::counter_add("bdd.par.apply_calls", self.par_apply_calls);
            reliab_obs::counter_add("bdd.par.subproblems", self.par_subproblems);
            reliab_obs::counter_add("bdd.sift.swaps", self.sift_swaps);
            reliab_obs::registry()
                .histogram_with_buckets(
                    "bdd.arena_nodes",
                    &[
                        16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0,
                    ],
                )
                .observe(self.arena.len() as f64);
        }
    }

    /// Current table sizes and operation counters.
    pub fn stats(&self) -> BddStats {
        BddStats {
            arena_nodes: self.arena.len(),
            unique_entries: self.unique.len(),
            ite_cache_entries: self.cache.len(),
            ite_cache_lookups: self.cache.lookups(),
            ite_cache_hits: self.cache.hits(),
            ite_cache_evictions: self.cache.evictions(),
            gc_runs: self.gc_runs,
            gc_reclaimed: self.gc_reclaimed,
            gc_moved: self.gc_moved,
            par_apply_calls: self.par_apply_calls,
            par_subproblems: self.par_subproblems,
            jobs: self.jobs,
            sift_runs: self.sift_runs,
            sift_swaps: self.sift_swaps,
            live_nodes: self.live_nodes(),
            peak_live_nodes: self.peak_live,
        }
    }

    /// Returns the node for a single variable.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VariableOutOfRange`] if `var >= nvars`.
    pub fn var(&mut self, var: u32) -> Result<NodeId, BddError> {
        if var >= self.nvars {
            return Err(BddError::VariableOutOfRange {
                var,
                nvars: self.nvars,
            });
        }
        Ok(self.mk(var, NodeId::FALSE, NodeId::TRUE))
    }

    /// Returns the node for the negation of a single variable.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VariableOutOfRange`] if `var >= nvars`.
    pub fn nvar(&mut self, var: u32) -> Result<NodeId, BddError> {
        if var >= self.nvars {
            return Err(BddError::VariableOutOfRange {
                var,
                nvars: self.nvars,
            });
        }
        Ok(self.mk(var, NodeId::TRUE, NodeId::FALSE))
    }

    #[inline]
    pub(crate) fn topvar(&self, f: NodeId) -> u32 {
        self.arena.var(f.0) as u32
    }

    #[inline]
    pub(crate) fn cofactors(&self, f: NodeId, v: u32) -> (NodeId, NodeId) {
        if f.is_terminal() || self.topvar(f) != v {
            (f, f)
        } else {
            (NodeId(self.arena.low(f.0)), NodeId(self.arena.high(f.0)))
        }
    }

    /// Allocates an arena slot. Compaction means allocation is always
    /// a plain push — no free-list probe on the hot path.
    fn alloc(&mut self, var: u32, low: NodeId, high: NodeId) -> NodeId {
        debug_assert!(var < self.nvars);
        let id = self.arena.push(var as u16, low.0, high.0);
        let live = self.live_nodes();
        if live > self.peak_live {
            self.peak_live = live;
        }
        NodeId(id)
    }

    /// Hash-consed node constructor; the `bool` reports whether a fresh
    /// node was allocated (consumed by the reorder machinery).
    pub(crate) fn mk_tracked(&mut self, var: u32, low: NodeId, high: NodeId) -> (NodeId, bool) {
        if low == high {
            return (low, false);
        }
        match self.unique.probe(&self.arena, var as u16, low.0, high.0) {
            Probe::Found(id) => (NodeId(id), false),
            Probe::Insert(slot) => {
                let id = self.alloc(var, low, high);
                if self.unique.commit(slot, id.0) {
                    self.unique.rebuild(&self.arena);
                }
                (id, true)
            }
        }
    }

    pub(crate) fn mk(&mut self, var: u32, low: NodeId, high: NodeId) -> NodeId {
        self.mk_tracked(var, low, high).0
    }

    /// If-then-else: `(f ∧ g) ∨ (¬f ∧ h)` — the universal connective.
    ///
    /// With [`BddConfig::jobs`] > 1 and a large enough arena, the call
    /// is decomposed over the top levels and solved on a worker pool;
    /// the result is the same canonical node either way.
    pub fn ite(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        if f == NodeId::TRUE {
            return g;
        }
        if f == NodeId::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if self.jobs > 1 && self.live_nodes() >= self.par_node_threshold {
            if let Some(r) = self.ite_par(f, g, h) {
                return r;
            }
        }
        self.ite_rec(f, g, h)
    }

    /// Normalizes an ITE call to its standard triple (Brace–Rudell–
    /// Bryant): replaces operands equal to `f` by constants and
    /// canonically orders the commuting AND/OR forms, so equivalent
    /// calls share one computed-table entry. Returns `Err(result)`
    /// when the normalized call is a terminal case.
    #[inline]
    fn standard_triple(
        &self,
        f: NodeId,
        mut g: NodeId,
        mut h: NodeId,
    ) -> Result<(NodeId, NodeId, NodeId), NodeId> {
        // ite(f, f, h) = ite(f, 1, h);  ite(f, g, f) = ite(f, g, 0).
        if g == f {
            g = NodeId::TRUE;
        }
        if h == f {
            h = NodeId::FALSE;
        }
        if g == h {
            return Err(g);
        }
        if g == NodeId::TRUE && h == NodeId::FALSE {
            return Err(f);
        }
        // AND commutes: ite(f, g, 0) = ite(g, f, 0). OR commutes:
        // ite(f, 1, h) = ite(h, 1, f). Order the pair by topmost
        // level (tie-broken by id) so both spellings share a key.
        let rank = |n: NodeId| (self.level_of_var(self.topvar(n)), n.0);
        if h == NodeId::FALSE && !g.is_terminal() && rank(f) > rank(g) {
            return Ok((g, f, h));
        }
        if g == NodeId::TRUE && !h.is_terminal() && rank(f) > rank(h) {
            return Ok((h, g, f));
        }
        Ok((f, g, h))
    }

    /// Sequential ITE recursion over main-arena nodes.
    fn ite_rec(&mut self, f: NodeId, g: NodeId, h: NodeId) -> NodeId {
        // Terminal cases.
        if f == NodeId::TRUE {
            return g;
        }
        if f == NodeId::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == NodeId::TRUE && h == NodeId::FALSE {
            return f;
        }
        let (f, g, h) = match self.standard_triple(f, g, h) {
            Ok(t) => t,
            Err(r) => return r,
        };
        // Progress event for long BDD compilations: one structured
        // event per 1024 ITE lookups (tracking node growth and cache
        // effectiveness over time), emitted only while tracing — the
        // hot path pays one mask-compare plus a relaxed atomic load.
        if self.cache.lookups() & 0x3FF == 0 && reliab_obs::trace_enabled() {
            reliab_obs::event(
                "bdd.ite",
                &[
                    ("lookups", self.cache.lookups().into()),
                    ("hits", self.cache.hits().into()),
                    ("nodes", self.arena.len().into()),
                ],
            );
        }
        if let Some(r) = self.cache.get(f, g, h) {
            return r;
        }
        // Split on the variable at the topmost *level* among the
        // operands (with reordering, variable index no longer implies
        // position).
        let top_level = [f, g, h]
            .iter()
            .filter(|n| !n.is_terminal())
            .map(|n| self.level_of_var(self.topvar(*n)))
            .min()
            .expect("at least f is non-terminal");
        let v = self.level2var[top_level as usize];
        let (f0, f1) = self.cofactors(f, v);
        let (g0, g1) = self.cofactors(g, v);
        let (h0, h1) = self.cofactors(h, v);
        let lo = self.ite_rec(f0, g0, h0);
        let hi = self.ite_rec(f1, g1, h1);
        let r = self.mk(v, lo, hi);
        self.cache.put(f, g, h, r);
        r
    }

    /// Conjunction.
    pub fn and(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, g, NodeId::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: NodeId, g: NodeId) -> NodeId {
        self.ite(f, NodeId::TRUE, g)
    }

    /// Negation.
    pub fn not(&mut self, f: NodeId) -> NodeId {
        self.ite(f, NodeId::FALSE, NodeId::TRUE)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: NodeId, g: NodeId) -> NodeId {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Conjunction over an iterator (TRUE for empty input).
    pub fn and_all<I: IntoIterator<Item = NodeId>>(&mut self, items: I) -> NodeId {
        items
            .into_iter()
            .fold(NodeId::TRUE, |acc, x| self.and(acc, x))
    }

    /// Disjunction over an iterator (FALSE for empty input).
    pub fn or_all<I: IntoIterator<Item = NodeId>>(&mut self, items: I) -> NodeId {
        items
            .into_iter()
            .fold(NodeId::FALSE, |acc, x| self.or(acc, x))
    }

    /// At-least-`k`-of the given inputs true.
    ///
    /// Builds the standard threshold network with a dynamic-programming
    /// table over (index, still-needed) pairs.
    pub fn at_least_k(&mut self, inputs: &[NodeId], k: usize) -> NodeId {
        if k == 0 {
            return NodeId::TRUE;
        }
        if k > inputs.len() {
            return NodeId::FALSE;
        }
        // table[j] = "at least j of inputs[i..] are true", built backwards.
        let n = inputs.len();
        let mut table: Vec<NodeId> = (0..=k)
            .map(|j| if j == 0 { NodeId::TRUE } else { NodeId::FALSE })
            .collect();
        for i in (0..n).rev() {
            // new[j] = ite(inputs[i], old[j-1], old[j])  (for j >= 1)
            for j in (1..=k.min(n - i)).rev() {
                table[j] = self.ite(inputs[i], table[j - 1], table[j]);
            }
        }
        table[k]
    }

    /// Restricts `f` by fixing `var := val`.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::VariableOutOfRange`] if `var >= nvars`.
    pub fn restrict(&mut self, f: NodeId, var: u32, val: bool) -> Result<NodeId, BddError> {
        if var >= self.nvars {
            return Err(BddError::VariableOutOfRange {
                var,
                nvars: self.nvars,
            });
        }
        let mut memo = FxHashMap::default();
        Ok(self.restrict_rec(f, var, val, &mut memo))
    }

    fn restrict_rec(
        &mut self,
        f: NodeId,
        var: u32,
        val: bool,
        memo: &mut FxHashMap<NodeId, NodeId>,
    ) -> NodeId {
        if f.is_terminal() {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let fvar = self.topvar(f);
        let (low, high) = (NodeId(self.arena.low(f.0)), NodeId(self.arena.high(f.0)));
        let r = if fvar == var {
            if val {
                high
            } else {
                low
            }
        } else if self.level_of_var(fvar) > self.level_of_var(var) {
            // var does not appear below f (ordering), nothing to do.
            f
        } else {
            let lo = self.restrict_rec(low, var, val, memo);
            let hi = self.restrict_rec(high, var, val, memo);
            self.mk(fvar, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Evaluates `f` under a complete truth assignment.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::BadProbabilities`] if the assignment length
    /// differs from the variable count.
    pub fn eval(&self, f: NodeId, assignment: &[bool]) -> Result<bool, BddError> {
        if assignment.len() != self.nvars as usize {
            return Err(BddError::BadProbabilities(format!(
                "assignment length {} != nvars {}",
                assignment.len(),
                self.nvars
            )));
        }
        let mut cur = f;
        while !cur.is_terminal() {
            cur = if assignment[self.topvar(cur) as usize] {
                NodeId(self.arena.high(cur.0))
            } else {
                NodeId(self.arena.low(cur.0))
            };
        }
        Ok(cur == NodeId::TRUE)
    }

    fn validate_probabilities(&self, p: &[f64]) -> Result<(), BddError> {
        if p.len() != self.nvars as usize {
            return Err(BddError::BadProbabilities(format!(
                "probability vector length {} != nvars {}",
                p.len(),
                self.nvars
            )));
        }
        for (i, &q) in p.iter().enumerate() {
            if !q.is_finite() || !(0.0..=1.0).contains(&q) {
                return Err(BddError::BadProbabilities(format!(
                    "p[{i}] = {q} outside [0,1]"
                )));
            }
        }
        Ok(())
    }

    /// Exact probability that `f` is true, given independent per-variable
    /// probabilities `p[i] = P(x_i = true)`.
    ///
    /// Linear in the number of reachable nodes (memoized Shannon
    /// expansion) — the reason BDDs beat cut-set inclusion–exclusion on
    /// large trees. The memo is a dense per-id vector: after a
    /// compacting GC the live cone occupies a contiguous preorder
    /// prefix of the arena, so the pass is near-sequential in memory.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::BadProbabilities`] on a length mismatch or an
    /// entry outside `[0, 1]`.
    pub fn probability(&self, f: NodeId, p: &[f64]) -> Result<f64, BddError> {
        self.validate_probabilities(p)?;
        let mut memo = vec![f64::NAN; self.arena.len()];
        memo[0] = 0.0;
        memo[1] = 1.0;
        Ok(self.prob_rec(f, p, &mut memo))
    }

    fn prob_rec(&self, f: NodeId, p: &[f64], memo: &mut [f64]) -> f64 {
        let cached = memo[f.0 as usize];
        if !cached.is_nan() {
            return cached;
        }
        let q = p[self.topvar(f) as usize];
        let high = NodeId(self.arena.high(f.0));
        let low = NodeId(self.arena.low(f.0));
        let v = q * self.prob_rec(high, p, memo) + (1.0 - q) * self.prob_rec(low, p, memo);
        memo[f.0 as usize] = v;
        v
    }

    /// Birnbaum importance (partial derivative) of every variable:
    /// `∂P(f)/∂p_i = P(f | x_i = 1) - P(f | x_i = 0)`.
    ///
    /// Computed with the two-sweep algorithm — a bottom-up node
    /// probability pass and a top-down path-weight pass — so the whole
    /// importance vector costs O(|BDD|), not O(nvars · |BDD|), and
    /// allocates no BDD nodes.
    ///
    /// # Errors
    ///
    /// Returns [`BddError::BadProbabilities`] on an invalid `p`.
    pub fn birnbaum(&self, f: NodeId, p: &[f64]) -> Result<Vec<f64>, BddError> {
        self.validate_probabilities(p)?;
        let mut out = vec![0.0; self.nvars as usize];
        if f.is_terminal() {
            return Ok(out);
        }
        // Reachable decision nodes in topological (level, id) order:
        // parents strictly precede children because child levels are
        // strictly greater.
        let mut order: Vec<u32> = Vec::new();
        {
            let mut seen = vec![false; self.arena.len()];
            let mut stack = vec![f.0];
            while let Some(id) = stack.pop() {
                if id < 2 || seen[id as usize] {
                    continue;
                }
                seen[id as usize] = true;
                order.push(id);
                stack.push(self.arena.low(id));
                stack.push(self.arena.high(id));
            }
        }
        order.sort_unstable_by_key(|&id| (self.level_of_var(self.arena.var(id) as u32), id));
        // Bottom-up: q[n] = P(n true). Dense per-id storage (NaN =
        // unreachable) keeps both sweeps allocation- and hash-free.
        let mut q = vec![f64::NAN; self.arena.len()];
        q[0] = 0.0;
        q[1] = 1.0;
        for &id in order.iter().rev() {
            let pv = p[self.arena.var(id) as usize];
            q[id as usize] =
                pv * q[self.arena.high(id) as usize] + (1.0 - pv) * q[self.arena.low(id) as usize];
        }
        // Top-down: w[n] = probability of reaching n from the root
        // without testing n's variable; the derivative contribution of
        // node n to its variable is w[n] · (q(high) − q(low)).
        let mut w = vec![0.0f64; self.arena.len()];
        w[f.0 as usize] = 1.0;
        for &id in order.iter() {
            let weight = w[id as usize];
            let var = self.arena.var(id) as usize;
            let pv = p[var];
            let (lo, hi) = (self.arena.low(id), self.arena.high(id));
            out[var] += weight * (q[hi as usize] - q[lo as usize]);
            if lo >= 2 {
                w[lo as usize] += weight * (1.0 - pv);
            }
            if hi >= 2 {
                w[hi as usize] += weight * pv;
            }
        }
        Ok(out)
    }

    /// Number of BDD nodes reachable from `f` (excluding terminals) —
    /// the usual size metric for ordering-heuristic comparisons.
    pub fn node_count(&self, f: NodeId) -> usize {
        let mut seen = vec![false; self.arena.len()];
        let mut count = 0usize;
        let mut stack = vec![f.0];
        while let Some(id) = stack.pop() {
            if id < 2 || seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            count += 1;
            stack.push(self.arena.low(id));
            stack.push(self.arena.high(id));
        }
        count
    }

    // ---- garbage collection -------------------------------------------

    /// Pins `f` as a GC root. The returned handle keeps `f` and its
    /// whole cone alive across [`Bdd::gc`]; release with
    /// [`Bdd::unprotect`]. Because collections renumber nodes, read
    /// the root's live id back with [`Bdd::current`] after any call
    /// that may have collected.
    pub fn protect(&mut self, f: NodeId) -> BddRef {
        let slot = match self.roots.iter().position(|&r| r == NONE) {
            Some(s) => {
                self.roots[s] = f.0;
                s
            }
            None => {
                self.roots.push(f.0);
                self.roots.len() - 1
            }
        };
        BddRef { slot, id: f }
    }

    /// The protected function's id as of now. Differs from
    /// [`BddRef::id`] once a collection has compacted the arena.
    pub fn current(&self, r: &BddRef) -> NodeId {
        NodeId(self.roots[r.slot])
    }

    /// Releases a root handle obtained from [`Bdd::protect`].
    pub fn unprotect(&mut self, r: BddRef) {
        self.roots[r.slot] = NONE;
    }

    /// Number of currently protected roots.
    pub fn protected_roots(&self) -> usize {
        self.roots.iter().filter(|&&r| r != NONE).count()
    }

    /// Compacting mark-and-sweep garbage collection.
    ///
    /// The live cone of the protected roots is copied into a fresh
    /// arena in **DFS preorder** (high child first, matching the
    /// recursion order of apply and probability evaluation), dead
    /// nodes are dropped, the unique table is rebuilt over the new
    /// layout, and the ITE cache is invalidated by generation tag.
    ///
    /// **All outstanding [`NodeId`]s are renumbered.** Callers re-read
    /// every function they still need through [`Bdd::current`] on its
    /// [`BddRef`]; unprotected ids are simply gone. The manager only
    /// auto-collects via [`Bdd::maybe_gc`] at caller-chosen safe
    /// points, never inside `ite` recursion.
    pub fn gc(&mut self) -> GcRun {
        let _span = reliab_obs::span("bdd.gc.compact");
        let old_len = self.arena.len();
        // DFS preorder over the live cone. `remap[old] = new id`.
        let mut remap: Vec<u32> = vec![NONE; old_len];
        remap[0] = 0;
        remap[1] = 1;
        let mut order: Vec<u32> = Vec::with_capacity(old_len.min(1 << 20));
        let mut stack: Vec<u32> = Vec::new();
        // Reverse slot order so the lowest-numbered root's cone is
        // laid out first (deterministic layout regardless of when
        // roots were pinned).
        for &r in self.roots.iter().rev() {
            if r != NONE {
                stack.push(r);
            }
        }
        while let Some(id) = stack.pop() {
            if id < 2 || remap[id as usize] != NONE {
                continue;
            }
            remap[id as usize] = (2 + order.len()) as u32;
            order.push(id);
            // Push low first so the high child is visited (and laid
            // out) immediately after its parent — `prob_rec` and the
            // apply descent both recurse into `high` first.
            stack.push(self.arena.low(id));
            stack.push(self.arena.high(id));
        }
        let live = order.len();
        let mut moved = 0usize;
        let mut arena = NodeArena::with_terminals();
        arena.vars.reserve(live);
        arena.lows.reserve(live);
        arena.highs.reserve(live);
        for &old in &order {
            let new = arena.push(
                self.arena.var(old),
                remap[self.arena.low(old) as usize],
                remap[self.arena.high(old) as usize],
            );
            if new != old {
                moved += 1;
            }
        }
        self.arena = arena;
        for r in self.roots.iter_mut() {
            if *r != NONE {
                *r = remap[*r as usize];
            }
        }
        let reclaimed = old_len - 2 - live;
        self.unique.rebuild_from_arena(&self.arena);
        self.cache.invalidate_all();
        self.gc_runs += 1;
        self.gc_reclaimed += reclaimed as u64;
        self.gc_moved += moved as u64;
        self.next_gc_at = (live * 2).max(self.gc_threshold);
        if reliab_obs::trace_enabled() {
            reliab_obs::event(
                "bdd.gc",
                &[
                    ("run", self.gc_runs.into()),
                    ("reclaimed", reclaimed.into()),
                    ("live", live.into()),
                    ("moved", moved.into()),
                    ("next_gc_at", self.next_gc_at.into()),
                ],
            );
        }
        GcRun {
            reclaimed,
            live,
            moved,
        }
    }

    /// Runs [`Bdd::gc`] if the allocated-node count has crossed the
    /// current threshold *and* at least one root is protected
    /// (collecting with no roots would free everything). After a pass
    /// the threshold adapts to `max(configured, 2 × live)` so GC stays
    /// amortized.
    pub fn maybe_gc(&mut self) -> Option<GcRun> {
        if self.live_nodes() >= self.next_gc_at && self.roots.iter().any(|&r| r != NONE) {
            Some(self.gc())
        } else {
            None
        }
    }

    /// Replaces the live-node threshold used by [`Bdd::maybe_gc`]
    /// (`0` restores the default).
    pub fn set_gc_threshold(&mut self, threshold: usize) {
        self.gc_threshold = if threshold == 0 {
            DEFAULT_GC_THRESHOLD
        } else {
            threshold
        };
        self.next_gc_at = (self.live_nodes() * 2).max(self.gc_threshold);
    }

    // ---- cut sets & paths ---------------------------------------------

    /// Minimal solutions of a **monotone** (coherent) function: the
    /// inclusion-minimal sets of variables whose joint truth forces
    /// `f` true — i.e. the minimal cut sets when `f` is a failure
    /// function over component-failure variables.
    ///
    /// Rauzy's algorithm: one memoized pass over the BDD, so the cost
    /// is polynomial in BDD size times output size — this is the route
    /// that scales when explicit top-down expansion (MOCUS) explodes.
    ///
    /// The result is only meaningful for monotone `f` (no negated
    /// variables influence the function); callers guarantee that by
    /// construction (fault trees / RBDs without NOT gates).
    pub fn minimal_solutions(&self, f: NodeId) -> Vec<Vec<u32>> {
        let mut memo: FxHashMap<NodeId, Vec<std::collections::BTreeSet<u32>>> =
            FxHashMap::default();
        let sets = self.min_sol_rec(f, &mut memo);
        let mut out: Vec<Vec<u32>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        out.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
        out
    }

    fn min_sol_rec(
        &self,
        f: NodeId,
        memo: &mut FxHashMap<NodeId, Vec<std::collections::BTreeSet<u32>>>,
    ) -> Vec<std::collections::BTreeSet<u32>> {
        use std::collections::BTreeSet;
        if f == NodeId::FALSE {
            return Vec::new();
        }
        if f == NodeId::TRUE {
            return vec![BTreeSet::new()];
        }
        if let Some(r) = memo.get(&f) {
            return r.clone();
        }
        let var = self.topvar(f);
        let low = self.min_sol_rec(NodeId(self.arena.low(f.0)), memo);
        let high = self.min_sol_rec(NodeId(self.arena.high(f.0)), memo);
        let mut result = low.clone();
        for h in high {
            // Keep {v} ∪ h only if no low-solution is a subset of it
            // (those already fire without v).
            if !low.iter().any(|l| l.is_subset(&h)) {
                let mut s = h;
                s.insert(var);
                result.push(s);
            }
        }
        memo.insert(f, result.clone());
        result
    }

    /// Enumerates the satisfying paths of `f` as partial assignments
    /// `(var, value)` — used by the sum-of-disjoint-products bound
    /// machinery and for debugging small models.
    ///
    /// The paths are disjoint by construction (they follow distinct BDD
    /// branches), so their probabilities sum to `P(f)`.
    pub fn satisfying_paths(&self, f: NodeId) -> Vec<Vec<(u32, bool)>> {
        let mut out = Vec::new();
        let mut prefix = Vec::new();
        self.paths_rec(f, &mut prefix, &mut out);
        out
    }

    fn paths_rec(&self, f: NodeId, prefix: &mut Vec<(u32, bool)>, out: &mut Vec<Vec<(u32, bool)>>) {
        if f == NodeId::FALSE {
            return;
        }
        if f == NodeId::TRUE {
            out.push(prefix.clone());
            return;
        }
        let var = self.topvar(f);
        let (low, high) = (NodeId(self.arena.low(f.0)), NodeId(self.arena.high(f.0)));
        prefix.push((var, false));
        self.paths_rec(low, prefix, out);
        prefix.pop();
        prefix.push((var, true));
        self.paths_rec(high, prefix, out);
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_variables() {
        let mut b = Bdd::new(2);
        let x = b.var(0).unwrap();
        assert_ne!(x, NodeId::TRUE);
        assert_ne!(x, NodeId::FALSE);
        // Hash consing: same variable gives the same node.
        assert_eq!(x, b.var(0).unwrap());
        assert!(b.var(2).is_err());
        assert!(b.nvar(5).is_err());
    }

    #[test]
    fn boolean_identities() {
        let mut b = Bdd::new(3);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let nx = b.not(x);
        assert_eq!(b.and(x, nx), NodeId::FALSE);
        assert_eq!(b.or(x, nx), NodeId::TRUE);
        assert_eq!(b.and(x, x), x);
        assert_eq!(b.or(x, NodeId::FALSE), x);
        assert_eq!(b.and(x, NodeId::TRUE), x);
        let xy = b.and(x, y);
        let yx = b.and(y, x);
        assert_eq!(xy, yx, "canonical form is order-independent");
        let double_neg = {
            let n = b.not(x);
            b.not(n)
        };
        assert_eq!(double_neg, x);
    }

    #[test]
    fn xor_truth_table() {
        let mut b = Bdd::new(2);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let f = b.xor(x, y);
        assert!(!b.eval(f, &[false, false]).unwrap());
        assert!(b.eval(f, &[true, false]).unwrap());
        assert!(b.eval(f, &[false, true]).unwrap());
        assert!(!b.eval(f, &[true, true]).unwrap());
    }

    #[test]
    fn probability_series_parallel() {
        let mut b = Bdd::new(2);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let and = b.and(x, y);
        let or = b.or(x, y);
        let p = [0.1, 0.2];
        assert!((b.probability(and, &p).unwrap() - 0.02).abs() < 1e-15);
        assert!((b.probability(or, &p).unwrap() - 0.28).abs() < 1e-15);
        assert_eq!(b.probability(NodeId::TRUE, &p).unwrap(), 1.0);
        assert_eq!(b.probability(NodeId::FALSE, &p).unwrap(), 0.0);
    }

    #[test]
    fn probability_validates_input() {
        let mut b = Bdd::new(2);
        let x = b.var(0).unwrap();
        assert!(b.probability(x, &[0.5]).is_err());
        assert!(b.probability(x, &[0.5, 1.5]).is_err());
        assert!(b.probability(x, &[0.5, f64::NAN]).is_err());
    }

    #[test]
    fn shared_variable_exactness() {
        // f = (x ∧ y) ∨ (x ∧ z): naive independence-of-terms would give
        // the wrong answer; the BDD accounts for the shared x.
        let mut b = Bdd::new(3);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let z = b.var(2).unwrap();
        let t1 = b.and(x, y);
        let t2 = b.and(x, z);
        let f = b.or(t1, t2);
        let p = [0.5, 0.5, 0.5];
        // P = P(x) * P(y ∨ z) = 0.5 * 0.75
        assert!((b.probability(f, &p).unwrap() - 0.375).abs() < 1e-15);
    }

    #[test]
    fn at_least_k_of_n() {
        let mut b = Bdd::new(4);
        let vars: Vec<NodeId> = (0..4).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 2);
        // P(at least 2 of 4 with p = 0.5) = 11/16.
        let p = [0.5; 4];
        assert!((b.probability(f, &p).unwrap() - 11.0 / 16.0).abs() < 1e-15);
        assert_eq!(b.at_least_k(&vars, 0), NodeId::TRUE);
        assert_eq!(b.at_least_k(&vars, 5), NodeId::FALSE);
        // k = n is the AND, k = 1 is the OR.
        let all = b.and_all(vars.iter().copied());
        assert_eq!(b.at_least_k(&vars, 4), all);
        let any = b.or_all(vars.iter().copied());
        assert_eq!(b.at_least_k(&vars, 1), any);
    }

    #[test]
    fn restrict_cofactors() {
        let mut b = Bdd::new(2);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let f = b.and(x, y);
        assert_eq!(b.restrict(f, 0, true).unwrap(), y);
        assert_eq!(b.restrict(f, 0, false).unwrap(), NodeId::FALSE);
        assert!(b.restrict(f, 9, true).is_err());
    }

    #[test]
    fn birnbaum_for_two_out_of_three() {
        let mut b = Bdd::new(3);
        let vars: Vec<NodeId> = (0..3).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 2);
        let p = [0.1, 0.2, 0.3];
        let imp = b.birnbaum(f, &p).unwrap();
        // dP/dp0 = P(at least 1 of {y,z}) - P(both of {y,z})
        //        = (0.2 + 0.3 - 0.06) - 0.06 = 0.38
        assert!((imp[0] - 0.38).abs() < 1e-12);
        // Analytic check for var 1: (0.1 + 0.3 - 0.03) - 0.03 = 0.34
        assert!((imp[1] - 0.34).abs() < 1e-12);
    }

    #[test]
    fn birnbaum_matches_restrict_definition() {
        // Cross-check the two-sweep implementation against the
        // defining formula P(f|x=1) − P(f|x=0) computed via restrict.
        let mut b = Bdd::new(5);
        let vars: Vec<NodeId> = (0..5).map(|i| b.var(i).unwrap()).collect();
        let t1 = b.and(vars[0], vars[1]);
        let t2 = b.and(vars[2], vars[3]);
        let t3 = b.or(t2, vars[4]);
        let f = b.or(t1, t3);
        let p = [0.1, 0.25, 0.3, 0.45, 0.05];
        let imp = b.birnbaum(f, &p).unwrap();
        for v in 0..5u32 {
            let f1 = b.restrict(f, v, true).unwrap();
            let f0 = b.restrict(f, v, false).unwrap();
            let expect = b.probability(f1, &p).unwrap() - b.probability(f0, &p).unwrap();
            assert!(
                (imp[v as usize] - expect).abs() < 1e-12,
                "var {v}: {} vs {expect}",
                imp[v as usize]
            );
        }
    }

    #[test]
    fn satisfying_paths_are_disjoint_and_complete() {
        let mut b = Bdd::new(3);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let z = b.var(2).unwrap();
        let t1 = b.and(x, y);
        let f = b.or(t1, z);
        let p = [0.3, 0.4, 0.5];
        let paths = b.satisfying_paths(f);
        let total: f64 = paths
            .iter()
            .map(|path| {
                path.iter()
                    .map(|&(v, val)| {
                        if val {
                            p[v as usize]
                        } else {
                            1.0 - p[v as usize]
                        }
                    })
                    .product::<f64>()
            })
            .sum();
        assert!((total - b.probability(f, &p).unwrap()).abs() < 1e-14);
    }

    #[test]
    fn minimal_solutions_of_simple_functions() {
        let mut b = Bdd::new(3);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let z = b.var(2).unwrap();
        // f = x OR (y AND z): minimal solutions {x}, {y,z}.
        let yz = b.and(y, z);
        let f = b.or(x, yz);
        let sols = b.minimal_solutions(f);
        assert_eq!(sols, vec![vec![0], vec![1, 2]]);
        // Constants.
        assert!(b.minimal_solutions(NodeId::FALSE).is_empty());
        assert_eq!(b.minimal_solutions(NodeId::TRUE), vec![Vec::<u32>::new()]);
    }

    #[test]
    fn minimal_solutions_absorb_supersets() {
        let mut b = Bdd::new(3);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        // f = x OR (x AND y) == x.
        let xy = b.and(x, y);
        let f = b.or(x, xy);
        assert_eq!(b.minimal_solutions(f), vec![vec![0]]);
    }

    #[test]
    fn minimal_solutions_of_threshold_functions() {
        let mut b = Bdd::new(5);
        let vars: Vec<NodeId> = (0..5).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 3);
        let sols = b.minimal_solutions(f);
        assert_eq!(sols.len(), 10); // C(5,3)
        assert!(sols.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn node_count_reflects_sharing() {
        let mut b = Bdd::new(6);
        let vars: Vec<NodeId> = (0..6).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 3);
        // Threshold functions have quadratic-size BDDs; specifically
        // small here.
        let count = f;
        assert!(b.node_count(count) <= 6 * 3 + 2);
        assert_eq!(b.node_count(NodeId::TRUE), 0);
    }

    #[test]
    fn stats_track_tables_and_cache() {
        let mut b = Bdd::new(4);
        assert_eq!(b.stats().arena_nodes, 2);
        assert_eq!(b.stats().ite_cache_lookups, 0);
        assert_eq!(b.stats().ite_hit_rate(), 0.0);
        let vars: Vec<NodeId> = (0..4).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 2);
        let s = b.stats();
        assert!(s.arena_nodes > 2);
        assert_eq!(s.arena_nodes, b.arena_size());
        assert!(s.unique_entries > 0);
        assert!(s.ite_cache_lookups >= s.ite_cache_hits);
        assert!((0.0..=1.0).contains(&s.ite_hit_rate()));
        // Recomputing the same function hits the computed-table.
        let before = b.stats().ite_cache_hits;
        let f2 = b.at_least_k(&vars, 2);
        assert_eq!(f, f2);
        assert!(b.stats().ite_cache_hits >= before);
    }

    #[test]
    fn eval_length_mismatch() {
        let b = Bdd::new(3);
        assert!(b.eval(NodeId::TRUE, &[true]).is_err());
    }

    #[test]
    fn standard_triples_share_cache_entries() {
        // and(x, y) then and(y, x): the commuted call must be a cache
        // hit, not just a canonical-node hit.
        let mut b = Bdd::new(2);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let xy = b.and(x, y);
        let hits_before = b.stats().ite_cache_hits;
        let yx = b.and(y, x);
        assert_eq!(xy, yx);
        assert!(
            b.stats().ite_cache_hits > hits_before,
            "commuted AND should hit the normalized computed-table entry"
        );
    }

    // ---- compacting-GC tests ------------------------------------------

    #[test]
    fn gc_reclaims_unreachable_nodes() {
        let mut b = Bdd::new(8);
        let vars: Vec<NodeId> = (0..8).map(|i| b.var(i).unwrap()).collect();
        let keep = b.at_least_k(&vars[..4], 2);
        let _dead = b.at_least_k(&vars, 5); // never protected
        let root = b.protect(keep);
        let live_before = b.live_nodes();
        let run = b.gc();
        assert!(run.reclaimed > 0, "threshold junk should be collected");
        assert!(run.live < live_before);
        assert_eq!(run.live, b.live_nodes());
        assert_eq!(b.stats().gc_runs, 1);
        assert_eq!(b.stats().gc_reclaimed, run.reclaimed as u64);
        // The protected function (under its compacted id) still
        // evaluates identically.
        let keep = b.current(&root);
        let p = [0.2; 8];
        let q = b.probability(keep, &p).unwrap();
        let expect = {
            let mut fresh = Bdd::new(8);
            let vs: Vec<NodeId> = (0..8).map(|i| fresh.var(i).unwrap()).collect();
            let f = fresh.at_least_k(&vs[..4], 2);
            fresh.probability(f, &p).unwrap()
        };
        assert_eq!(q, expect);
        b.unprotect(root);
    }

    #[test]
    fn gc_preserves_canonicity_through_rebuild() {
        let mut b = Bdd::new(6);
        let vars: Vec<NodeId> = (0..6).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 3);
        let _junk = b.at_least_k(&vars, 2);
        let root = b.protect(f);
        let live_before = b.live_nodes();
        b.gc();
        // Rebuilding the same function after GC must hash-cons onto the
        // surviving (renumbered) nodes, not duplicate them. The old
        // `vars` and `f` ids are dangling — re-read through the guard.
        let f = b.current(&root);
        let vars2: Vec<NodeId> = (0..6).map(|i| b.var(i).unwrap()).collect();
        let f2 = b.at_least_k(&vars2, 3);
        assert_eq!(f, f2, "canonicity lost across gc");
        // Only garbage intermediates get rebuilt — f's cone is shared,
        // so the arena never exceeds its pre-collection population.
        assert!(b.live_nodes() <= live_before);
        b.unprotect(root);
    }

    #[test]
    fn gc_compacts_live_cone_into_preorder_prefix() {
        let mut b = Bdd::new(10);
        let vars: Vec<NodeId> = (0..10).map(|i| b.var(i).unwrap()).collect();
        let keep = b.or(vars[0], vars[1]);
        let _dead = b.at_least_k(&vars, 4);
        let root = b.protect(keep);
        let arena_before = b.arena_size();
        let run = b.gc();
        assert!(run.reclaimed > 0);
        // Compaction shrinks the arena to exactly the live cone...
        assert_eq!(b.arena_size(), 2 + run.live);
        assert!(b.arena_size() < arena_before);
        // ...and relocated nodes are counted.
        assert_eq!(run.moved as u64, b.stats().gc_moved);
        // The compacted root sits at the start of the preorder prefix.
        assert_eq!(b.current(&root), NodeId(2));
        b.unprotect(root);
    }

    #[test]
    fn maybe_gc_respects_threshold_and_roots() {
        let mut b = Bdd::new(12);
        b.set_gc_threshold(8);
        let vars: Vec<NodeId> = (0..12).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 6);
        // No roots protected: must not collect (it would free f).
        assert!(b.maybe_gc().is_none());
        let root = b.protect(f);
        let run = b.maybe_gc();
        assert!(run.is_some(), "live {} >= threshold 8", b.live_nodes());
        // Immediately after a pass the adaptive threshold backs off.
        assert!(b.maybe_gc().is_none());
        let f = b.current(&root);
        let p = [0.3; 12];
        assert!(b.probability(f, &p).is_ok());
        b.unprotect(root);
    }

    #[test]
    fn bounded_cache_counts_evictions() {
        // A 64-entry cache under a workload with far more distinct ITE
        // calls must evict rather than grow without bound.
        let mut cfg = BddConfig::new();
        cfg.ite_cache_capacity = 64;
        let fresh = Bdd::new(24);
        assert_eq!(fresh.stats().ite_cache_evictions, 0);
        let mut b = Bdd::new_with(24, cfg);
        let vars: Vec<NodeId> = (0..24).map(|i| b.var(i).unwrap()).collect();
        let _f = b.at_least_k(&vars, 12);
        let s = b.stats();
        assert!(s.ite_cache_evictions > 0, "expected evictions, got {s:?}");
        assert!(s.ite_cache_entries <= 64);
    }

    #[test]
    fn live_and_peak_counters() {
        let mut b = Bdd::new(8);
        assert_eq!(b.live_nodes(), 0);
        let vars: Vec<NodeId> = (0..8).map(|i| b.var(i).unwrap()).collect();
        let f = b.at_least_k(&vars, 4);
        let live = b.live_nodes();
        let peak = b.stats().peak_live_nodes;
        assert!(live > 0 && peak >= live);
        let root = b.protect(f);
        b.gc();
        assert!(b.live_nodes() <= live);
        // Peak is a high-water mark: GC must not lower it.
        assert_eq!(b.stats().peak_live_nodes, peak);
        b.unprotect(root);
    }

    #[test]
    fn protect_slots_are_reused() {
        let mut b = Bdd::new(4);
        let x = b.var(0).unwrap();
        let y = b.var(1).unwrap();
        let r1 = b.protect(x);
        let r2 = b.protect(y);
        assert_eq!(b.protected_roots(), 2);
        assert_eq!(b.current(&r1), x);
        b.unprotect(r1);
        let r3 = b.protect(y);
        assert_eq!(b.protected_roots(), 2, "freed slot should be reused");
        b.unprotect(r2);
        b.unprotect(r3);
        assert_eq!(b.protected_roots(), 0);
    }

    #[test]
    fn default_order_is_identity() {
        let b = Bdd::new(5);
        assert_eq!(b.current_order(), vec![0, 1, 2, 3, 4]);
        assert_eq!(b.var_level(3), Some(3));
        assert_eq!(b.var_level(5), None);
    }

    #[test]
    #[should_panic(expected = "packed-node limit")]
    fn too_many_variables_panics() {
        let _ = Bdd::new(MAX_VARS + 1);
    }
}
