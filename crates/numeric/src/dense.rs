//! Row-major dense matrices with LU factorization.

use crate::{NumericError, Result};

/// A row-major dense matrix of `f64`.
///
/// This is not a general linear-algebra library; it provides exactly the
/// operations the reliability solvers need (construction, element access,
/// matrix-vector products, LU solves) with validated dimensions.
///
/// ```
/// use reliab_numeric::DenseMatrix;
/// # fn main() -> Result<(), reliab_numeric::NumericError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]])?;
/// let x = a.lu_solve(&[2.0, 8.0])?;
/// assert_eq!(x, vec![1.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates an `nrows x ncols` zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] if the rows are empty or ragged.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() {
            return Err(NumericError::Invalid("no rows".into()));
        }
        let ncols = rows[0].len();
        if ncols == 0 {
            return Err(NumericError::Invalid("zero-width rows".into()));
        }
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != ncols {
                return Err(NumericError::Invalid(format!(
                    "row {i} has {} entries, expected {ncols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(DenseMatrix {
            nrows: rows.len(),
            ncols,
            data,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds (programming error, not a
    /// recoverable condition).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        self.data[i * self.ncols + j]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        self.data[i * self.ncols + j] = v;
    }

    /// Adds `v` to element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    #[inline]
    pub fn add_to(&mut self, i: usize, j: usize, v: f64) {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        self.data[i * self.ncols + j] += v;
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.nrows, "row index out of bounds");
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Computes `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(NumericError::Invalid(format!(
                "matvec dimension mismatch: {} columns vs vector of {}",
                self.ncols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.nrows];
        for (i, yi) in y.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x) {
                acc += a * b;
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Computes `x^T * self` (left multiplication by a row vector).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] if `x.len() != nrows`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(NumericError::Invalid(format!(
                "vecmat dimension mismatch: {} rows vs vector of {}",
                self.nrows,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.ncols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (j, a) in row.iter().enumerate() {
                y[j] += xi * a;
            }
        }
        Ok(y)
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] on inner-dimension mismatch.
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != other.nrows {
            return Err(NumericError::Invalid(format!(
                "matmul dimension mismatch: {}x{} * {}x{}",
                self.nrows, self.ncols, other.nrows, other.ncols
            )));
        }
        let mut out = DenseMatrix::zeros(self.nrows, other.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.ncols {
                    out.add_to(i, j, aik * other.get(k, j));
                }
            }
        }
        Ok(out)
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Solves `self * x = b` by LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] on dimension mismatch and
    /// [`NumericError::Singular`] if a pivot underflows.
    pub fn lu_solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if self.nrows != self.ncols {
            return Err(NumericError::Invalid(format!(
                "lu_solve requires a square matrix, got {}x{}",
                self.nrows, self.ncols
            )));
        }
        if b.len() != self.nrows {
            return Err(NumericError::Invalid(format!(
                "rhs length {} does not match dimension {}",
                b.len(),
                self.nrows
            )));
        }
        let n = self.nrows;
        let mut a = self.data.clone();
        let mut x: Vec<f64> = b.to_vec();

        for col in 0..n {
            // Partial pivot.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for r in (col + 1)..n {
                let v = a[r * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < f64::MIN_POSITIVE * 16.0 {
                return Err(NumericError::Singular(format!(
                    "zero pivot at column {col}"
                )));
            }
            if pivot_row != col {
                for j in 0..n {
                    a.swap(col * n + j, pivot_row * n + j);
                }
                x.swap(col, pivot_row);
            }
            let pivot = a[col * n + col];
            for r in (col + 1)..n {
                let factor = a[r * n + col] / pivot;
                if factor == 0.0 {
                    continue;
                }
                a[r * n + col] = 0.0;
                for j in (col + 1)..n {
                    a[r * n + j] -= factor * a[col * n + j];
                }
                x[r] -= factor * x[col];
            }
        }
        // Back substitution.
        for col in (0..n).rev() {
            let mut acc = x[col];
            for j in (col + 1)..n {
                acc -= a[col * n + j] * x[j];
            }
            x[col] = acc / a[col * n + col];
        }
        Ok(x)
    }

    /// Maximum absolute entry (`∞`-norm of the flattened data).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_rejects_ragged_input() {
        assert!(DenseMatrix::from_rows(&[]).is_err());
        assert!(DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_solve_is_identity() {
        let i3 = DenseMatrix::identity(3);
        let x = i3.lu_solve(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn lu_solve_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let x = a.lu_solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lu_solve_requires_pivoting() {
        // Zero in the (0,0) position requires a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = a.lu_solve(&[3.0, 7.0]).unwrap();
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            a.lu_solve(&[1.0, 2.0]),
            Err(NumericError::Singular(_))
        ));
    }

    #[test]
    fn matvec_and_vecmat_agree_with_transpose() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let x = [1.0, 1.0];
        let left = a.vecmat(&x).unwrap();
        let right = a.transpose().matvec(&x).unwrap();
        assert_eq!(left, right);
        assert_eq!(left, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[2.0, 1.0]);
        assert_eq!(c.row(1), &[4.0, 3.0]);
    }

    #[test]
    fn dimension_mismatches_are_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.matvec(&[1.0, 2.0]).is_err());
        assert!(a.vecmat(&[1.0, 2.0, 3.0]).is_err());
        assert!(a.lu_solve(&[1.0, 2.0]).is_err());
        let b = DenseMatrix::zeros(2, 2);
        assert!(a.matmul(&b).is_err());
    }
}
