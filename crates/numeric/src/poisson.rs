//! Truncated Poisson probabilities for uniformization.

use crate::special::ln_gamma;
use crate::{NumericError, Result};

/// Truncated, renormalized Poisson probabilities `w_k ≈ e^{-λ} λ^k / k!`
/// for `k` in `[left, right]`, with total tail mass below the requested
/// `epsilon` before renormalization.
///
/// Produced by [`poisson_weights`]; consumed by the uniformization
/// transient solver, where `λ = q·t` can reach 10⁵–10⁶ for stiff chains,
/// so weights are computed in log space around the mode (Fox–Glynn-style
/// tail control without the historical table constants).
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonWeights {
    /// First retained term.
    pub left: usize,
    /// Last retained term.
    pub right: usize,
    /// Renormalized weights, `weights[i]` is for `k = left + i`.
    pub weights: Vec<f64>,
}

impl PoissonWeights {
    /// Total number of retained terms.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether no terms were retained (never true for valid inputs).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

/// Computes [`PoissonWeights`] for rate `lambda` with truncation error
/// at most `epsilon`.
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] if `lambda < 0`, `lambda` is not
/// finite, or `epsilon` is not in `(0, 1)`.
pub fn poisson_weights(lambda: f64, epsilon: f64) -> Result<PoissonWeights> {
    if !lambda.is_finite() || lambda < 0.0 {
        return Err(NumericError::Invalid(format!(
            "lambda must be finite and >= 0, got {lambda}"
        )));
    }
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(NumericError::Invalid(format!(
            "epsilon must lie in (0, 1), got {epsilon}"
        )));
    }
    if lambda == 0.0 {
        return Ok(PoissonWeights {
            left: 0,
            right: 0,
            weights: vec![1.0],
        });
    }

    let mode = lambda.floor() as usize;
    let ln_pmf = |k: usize| -> f64 {
        let kf = k as f64;
        -lambda + kf * lambda.ln() - ln_gamma(kf + 1.0)
    };

    // Expand around the mode until both tails are below epsilon/2.
    // The pmf is unimodal, so a simple marching bound suffices: stop a
    // tail when its next term falls below (epsilon/2) * (1 - r) / r
    // geometric-domination estimate; we use the simpler conservative
    // rule of accumulating mass until 1 - epsilon is covered.
    let target = 1.0 - epsilon;
    let mode_w = ln_pmf(mode).exp();
    let mut left = mode;
    let mut right = mode;
    let mut lo_w = mode_w; // weight at current left
    let mut hi_w = mode_w; // weight at current right
    let mut mass = mode_w;
    // March outward, always extending the side with the larger next term.
    while mass < target {
        let next_left = if left > 0 {
            lo_w * left as f64 / lambda
        } else {
            0.0
        };
        let next_right = hi_w * lambda / (right as f64 + 1.0);
        if next_left >= next_right && left > 0 {
            left -= 1;
            lo_w = next_left;
            mass += lo_w;
        } else if next_right > 0.0 {
            right += 1;
            hi_w = next_right;
            mass += hi_w;
        } else {
            break; // underflow on both sides; accept what we have
        }
        if right - left > 20_000_000 {
            return Err(NumericError::Invalid(format!(
                "poisson truncation window exploded for lambda = {lambda}"
            )));
        }
    }

    // Fill weights by recurrence from the mode (stable: ratios only).
    let n = right - left + 1;
    let mut weights = vec![0.0f64; n];
    weights[mode - left] = mode_w;
    let mut w = mode_w;
    for k in (left..mode).rev() {
        w = w * (k as f64 + 1.0) / lambda;
        weights[k - left] = w;
    }
    w = mode_w;
    for k in (mode + 1)..=right {
        w = w * lambda / k as f64;
        weights[k - left] = w;
    }
    let total: f64 = weights.iter().sum();
    if total.is_nan() || total <= 0.0 {
        return Err(NumericError::Invalid(format!(
            "poisson weights underflowed for lambda = {lambda}"
        )));
    }
    for v in &mut weights {
        *v /= total;
    }
    Ok(PoissonWeights {
        left,
        right,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lambda_is_degenerate() {
        let w = poisson_weights(0.0, 1e-10).unwrap();
        assert_eq!(w.left, 0);
        assert_eq!(w.right, 0);
        assert_eq!(w.weights, vec![1.0]);
    }

    #[test]
    fn weights_sum_to_one_and_match_pmf() {
        for &lambda in &[0.5, 3.0, 25.0, 400.0] {
            let w = poisson_weights(lambda, 1e-12).unwrap();
            let sum: f64 = w.weights.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "lambda = {lambda}");
            // Spot-check against direct pmf at the mode.
            let mode = lambda.floor();
            let ln_pmf = -lambda + mode * lambda.ln() - ln_gamma(mode + 1.0);
            let idx = mode as usize - w.left;
            assert!(
                (w.weights[idx] - ln_pmf.exp()).abs() < 1e-10,
                "lambda = {lambda}"
            );
        }
    }

    #[test]
    fn window_scales_like_sqrt_lambda() {
        let small = poisson_weights(100.0, 1e-10).unwrap();
        let large = poisson_weights(10_000.0, 1e-10).unwrap();
        let w_small = (small.right - small.left) as f64;
        let w_large = (large.right - large.left) as f64;
        // sqrt(10000/100) = 10; allow generous slack.
        assert!(w_large / w_small < 15.0);
        assert!(w_large / w_small > 6.0);
    }

    #[test]
    fn mean_is_recovered() {
        let lambda = 37.5;
        let w = poisson_weights(lambda, 1e-13).unwrap();
        let mean: f64 = w
            .weights
            .iter()
            .enumerate()
            .map(|(i, p)| (w.left + i) as f64 * p)
            .sum();
        assert!((mean - lambda).abs() < 1e-8);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(poisson_weights(-1.0, 1e-10).is_err());
        assert!(poisson_weights(f64::NAN, 1e-10).is_err());
        assert!(poisson_weights(1.0, 0.0).is_err());
        assert!(poisson_weights(1.0, 1.0).is_err());
    }
}
