//! Special functions used by lifetime distributions and statistics:
//! `ln Γ`, regularized incomplete gamma, `erf`, and the standard normal
//! CDF and quantile.

use crate::{NumericError, Result};

/// Natural log of the gamma function, Lanczos approximation (g = 7,
/// n = 9), accurate to ~1e-13 for `x > 0`.
///
/// # Panics
///
/// Never panics; returns `f64::INFINITY` at `x == 0` and uses the
/// reflection formula for `x < 0` (poles at non-positive integers give
/// `INFINITY`).
pub fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection: Γ(x) Γ(1-x) = π / sin(π x)
        let s = (std::f64::consts::PI * x).sin();
        if s == 0.0 {
            return f64::INFINITY;
        }
        return std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// Uses the series expansion for `x < a + 1` and the continued fraction
/// for the complement otherwise (Numerical-Recipes style `gammp`).
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || a <= 0.0 {
        return Err(NumericError::Invalid(format!("shape a = {a} must be > 0")));
    }
    if x.is_nan() || x < 0.0 {
        return Err(NumericError::Invalid(format!("x = {x} must be >= 0")));
    }
    if x == 0.0 {
        return Ok(0.0);
    }
    if x < a + 1.0 {
        Ok(gamma_series(a, x))
    } else {
        Ok(1.0 - gamma_cf(a, x))
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Errors
///
/// Same domain as [`reg_lower_gamma`].
pub fn reg_upper_gamma(a: f64, x: f64) -> Result<f64> {
    if !a.is_finite() || a <= 0.0 {
        return Err(NumericError::Invalid(format!("shape a = {a} must be > 0")));
    }
    if x.is_nan() || x < 0.0 {
        return Err(NumericError::Invalid(format!("x = {x} must be >= 0")));
    }
    if x == 0.0 {
        return Ok(1.0);
    }
    if x < a + 1.0 {
        Ok(1.0 - gamma_series(a, x))
    } else {
        Ok(gamma_cf(a, x))
    }
}

/// Series expansion for P(a, x), valid/fast for x < a + 1.
fn gamma_series(a: f64, x: f64) -> f64 {
    let ln_ga = ln_gamma(a);
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_ga).exp()
}

/// Continued fraction (modified Lentz) for Q(a, x), valid for x >= a + 1.
fn gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let ln_ga = ln_gamma(a);
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x + a * x.ln() - ln_ga).exp() * h
}

/// Error function `erf(x)`, via the regularized incomplete gamma
/// identity `erf(x) = sign(x) P(1/2, x²)`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_lower_gamma(0.5, x * x).expect("fixed valid arguments");
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// Standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Standard normal quantile (inverse CDF), Acklam's rational
/// approximation refined by one Halley step; absolute error below 1e-9.
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> Result<f64> {
    if !(p > 0.0 && p < 1.0) {
        return Err(NumericError::Invalid(format!(
            "quantile probability must lie in (0,1), got {p}"
        )));
    }
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    Ok(x - u / (1.0 + x * u / 2.0))
}

/// Quantile of the gamma distribution with shape `a` and rate 1
/// (inverse of [`reg_lower_gamma`] in `x`), by Wilson–Hilferty start and
/// Newton refinement.
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] unless `a > 0` and `0 < p < 1`, or
/// [`NumericError::NoConvergence`] if Newton fails (pathological inputs).
pub fn gamma_quantile(a: f64, p: f64) -> Result<f64> {
    if !a.is_finite() || a <= 0.0 {
        return Err(NumericError::Invalid(format!("shape a = {a} must be > 0")));
    }
    if !(p > 0.0 && p < 1.0) {
        return Err(NumericError::Invalid(format!(
            "quantile probability must lie in (0,1), got {p}"
        )));
    }
    // Wilson–Hilferty initial guess.
    let z = normal_quantile(p)?;
    let g = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
    let mut x = (a * g * g * g).max(1e-8);
    let ln_ga = ln_gamma(a);
    for _ in 0..100 {
        let f = reg_lower_gamma(a, x)? - p;
        // pdf of gamma(a, 1) at x
        let pdf = ((a - 1.0) * x.ln() - x - ln_ga).exp();
        if pdf <= 0.0 {
            break;
        }
        let step = f / pdf;
        let mut new_x = x - step;
        if new_x <= 0.0 {
            new_x = x / 2.0;
        }
        if (new_x - x).abs() <= 1e-12 * x.max(1.0) {
            return Ok(new_x);
        }
        x = new_x;
    }
    // Fall back to bisection for robustness.
    let (mut lo, mut hi) = (0.0f64, x.max(1.0));
    while reg_lower_gamma(a, hi)? < p {
        hi *= 2.0;
        if hi > 1e12 {
            return Err(NumericError::NoConvergence {
                what: "gamma_quantile bracketing".into(),
                iterations: 0,
                residual: f64::NAN,
            });
        }
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if reg_lower_gamma(a, mid)? < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u32 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-11,
                "ln_gamma({n})"
            );
        }
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn incomplete_gamma_endpoints_and_complement() {
        assert_eq!(reg_lower_gamma(2.0, 0.0).unwrap(), 0.0);
        assert_eq!(reg_upper_gamma(2.0, 0.0).unwrap(), 1.0);
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (3.5, 2.0), (10.0, 14.0)] {
            let p = reg_lower_gamma(a, x).unwrap();
            let q = reg_upper_gamma(a, x).unwrap();
            assert!((p + q - 1.0).abs() < 1e-12, "a={a} x={x}");
        }
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 1.0, 5.0] {
            assert!((reg_lower_gamma(1.0, x).unwrap() - (1.0 - (-x).exp())).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1e-15);
        assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-10);
        assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-10);
        assert!((erf(2.0) - 0.9953222650189527).abs() < 1e-10);
    }

    #[test]
    fn normal_cdf_symmetry_and_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.96) - 0.9750021048517795).abs() < 1e-9);
        for &x in &[0.5, 1.0, 2.5] {
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_quantile_inverts_cdf() {
        for &p in &[0.001, 0.025, 0.5, 0.8413447460685429, 0.975, 0.999] {
            let x = normal_quantile(p).unwrap();
            assert!((normal_cdf(x) - p).abs() < 1e-9, "p = {p}");
        }
        assert!(normal_quantile(0.0).is_err());
        assert!(normal_quantile(1.0).is_err());
    }

    #[test]
    fn gamma_quantile_inverts_lower_gamma() {
        for &a in &[0.5, 1.0, 2.0, 7.5] {
            for &p in &[0.05, 0.5, 0.95] {
                let x = gamma_quantile(a, p).unwrap();
                assert!(
                    (reg_lower_gamma(a, x).unwrap() - p).abs() < 1e-8,
                    "a = {a}, p = {p}"
                );
            }
        }
    }

    #[test]
    fn domain_errors() {
        assert!(reg_lower_gamma(0.0, 1.0).is_err());
        assert!(reg_lower_gamma(1.0, -1.0).is_err());
        assert!(gamma_quantile(-1.0, 0.5).is_err());
        assert!(gamma_quantile(1.0, 1.5).is_err());
    }
}
