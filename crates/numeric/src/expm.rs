//! Dense matrix exponential by scaling and squaring.
//!
//! This is the oracle the differential test harness checks the
//! uniformization transient solver against: `π(t) = π(0)·e^{Qt}`
//! computed by a completely independent algorithm (Padé rational
//! approximation with scaling and squaring, Higham 2005), so agreement
//! is evidence rather than tautology. Intended for oracle-sized
//! matrices — the solve step is `O(n⁴)` via per-column LU.

use crate::dense::DenseMatrix;
use crate::{NumericError, Result};

/// Numerator/denominator coefficients of the diagonal [13/13] Padé
/// approximant to `e^x` (Higham, *The scaling and squaring method for
/// the matrix exponential revisited*, 2005).
const PADE13: [f64; 14] = [
    64_764_752_532_480_000.0,
    32_382_376_266_240_000.0,
    7_771_770_303_897_600.0,
    1_187_353_796_428_800.0,
    129_060_195_264_000.0,
    10_559_470_521_600.0,
    670_442_572_800.0,
    33_522_128_640.0,
    1_323_241_920.0,
    40_840_800.0,
    960_960.0,
    16_380.0,
    182.0,
    1.0,
];

/// 1-norm threshold below which the [13/13] Padé approximant is
/// accurate to double precision without further scaling.
const THETA13: f64 = 5.371_920_351_148_152;

fn scale_add(out: &mut DenseMatrix, m: &DenseMatrix, c: f64) {
    let n = m.nrows();
    for i in 0..n {
        for j in 0..n {
            out.add_to(i, j, c * m.get(i, j));
        }
    }
}

fn one_norm(m: &DenseMatrix) -> f64 {
    let (nr, nc) = (m.nrows(), m.ncols());
    (0..nc)
        .map(|j| (0..nr).map(|i| m.get(i, j).abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
}

/// Computes `e^A` for a square matrix by Padé-13 scaling and squaring
/// with trace pre-shifting.
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] for a non-square matrix or
/// non-finite entries, and propagates LU failures (the denominator
/// `V − U` is comfortably nonsingular for any input the scaling step
/// admits, so that path indicates a NaN/overflow upstream).
pub fn expm(a: &DenseMatrix) -> Result<DenseMatrix> {
    let n = a.nrows();
    if n != a.ncols() {
        return Err(NumericError::Invalid(format!(
            "expm requires a square matrix, got {}x{}",
            n,
            a.ncols()
        )));
    }
    for i in 0..n {
        for j in 0..n {
            if !a.get(i, j).is_finite() {
                return Err(NumericError::Invalid(format!(
                    "non-finite entry {} at ({i}, {j})",
                    a.get(i, j)
                )));
            }
        }
    }

    // No trace pre-shifting: for generator matrices with stiff rates
    // the shift e^A = e^mu·e^(A−mu·I) under/overflows (e^mu ~ e^-1e6),
    // while plain scaling keeps every squared factor a substochastic
    // matrix, which squares forward-stably.
    let norm = one_norm(a);
    let s = if norm > THETA13 {
        (norm / THETA13).log2().ceil() as u32
    } else {
        0
    };
    let scale = 0.5f64.powi(s as i32);
    let mut a_s = DenseMatrix::zeros(n, n);
    scale_add(&mut a_s, a, scale);

    // U = A·(A6·(b13·A6 + b11·A4 + b9·A2) + b7·A6 + b5·A4 + b3·A2 + b1·I)
    // V =    A6·(b12·A6 + b10·A4 + b8·A2) + b6·A6 + b4·A4 + b2·A2 + b0·I
    let a2 = a_s.matmul(&a_s)?;
    let a4 = a2.matmul(&a2)?;
    let a6 = a2.matmul(&a4)?;
    let b = &PADE13;

    let mut w1 = DenseMatrix::zeros(n, n);
    scale_add(&mut w1, &a6, b[13]);
    scale_add(&mut w1, &a4, b[11]);
    scale_add(&mut w1, &a2, b[9]);
    let mut w = a6.matmul(&w1)?;
    scale_add(&mut w, &a6, b[7]);
    scale_add(&mut w, &a4, b[5]);
    scale_add(&mut w, &a2, b[3]);
    for i in 0..n {
        w.add_to(i, i, b[1]);
    }
    let u = a_s.matmul(&w)?;

    let mut z1 = DenseMatrix::zeros(n, n);
    scale_add(&mut z1, &a6, b[12]);
    scale_add(&mut z1, &a4, b[10]);
    scale_add(&mut z1, &a2, b[8]);
    let mut v = a6.matmul(&z1)?;
    scale_add(&mut v, &a6, b[6]);
    scale_add(&mut v, &a4, b[4]);
    scale_add(&mut v, &a2, b[2]);
    for i in 0..n {
        v.add_to(i, i, b[0]);
    }

    // R = (V − U)⁻¹ (V + U), column by column.
    let mut denom = v.clone();
    scale_add(&mut denom, &u, -1.0);
    let mut numer = v;
    scale_add(&mut numer, &u, 1.0);
    let mut r = DenseMatrix::zeros(n, n);
    let mut col = vec![0.0f64; n];
    for j in 0..n {
        for (i, c) in col.iter_mut().enumerate() {
            *c = numer.get(i, j);
        }
        let x = denom.lu_solve(&col)?;
        for (i, &xi) in x.iter().enumerate() {
            r.set(i, j, xi);
        }
    }

    // Undo the scaling by repeated squaring.
    for _ in 0..s {
        r = r.matmul(&r)?;
    }
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_rows(rows: &[&[f64]]) -> DenseMatrix {
        DenseMatrix::from_rows(rows).unwrap()
    }

    fn max_diff(a: &DenseMatrix, b: &DenseMatrix) -> f64 {
        let n = a.nrows();
        let mut d = 0.0f64;
        for i in 0..n {
            for j in 0..n {
                d = d.max((a.get(i, j) - b.get(i, j)).abs());
            }
        }
        d
    }

    #[test]
    fn exp_of_zero_is_identity() {
        let z = DenseMatrix::zeros(3, 3);
        let e = expm(&z).unwrap();
        assert!(max_diff(&e, &DenseMatrix::identity(3)) < 1e-15);
    }

    #[test]
    fn exp_of_diagonal() {
        let d = from_rows(&[&[1.0, 0.0], &[0.0, -2.0]]);
        let e = expm(&d).unwrap();
        assert!((e.get(0, 0) - 1.0f64.exp()).abs() < 1e-14);
        assert!((e.get(1, 1) - (-2.0f64).exp()).abs() < 1e-15);
        assert!(e.get(0, 1).abs() < 1e-16 && e.get(1, 0).abs() < 1e-16);
    }

    #[test]
    fn exp_of_nilpotent() {
        // N² = 0, so e^N = I + N exactly.
        let nm = from_rows(&[&[0.0, 3.0], &[0.0, 0.0]]);
        let e = expm(&nm).unwrap();
        assert!(max_diff(&e, &from_rows(&[&[1.0, 3.0], &[0.0, 1.0]])) < 1e-14);
    }

    #[test]
    fn two_state_generator_closed_form() {
        // Q = [[-a, a], [b, -b]]: e^{Qt} has the classic closed form
        // via the eigenvalue -(a+b).
        let (a, b, t) = (0.7, 1.9, 1.3);
        let q = from_rows(&[&[-a * t, a * t], &[b * t, -b * t]]);
        let e = expm(&q).unwrap();
        let s = a + b;
        let decay = (-s * t).exp();
        let expect = from_rows(&[
            &[(b + a * decay) / s, a * (1.0 - decay) / s],
            &[b * (1.0 - decay) / s, (a + b * decay) / s],
        ]);
        assert!(max_diff(&e, &expect) < 1e-14);
    }

    #[test]
    fn stiff_generator_rows_sum_to_one() {
        // Rates spanning 1e6: e^{Qt} must stay stochastic.
        let q = from_rows(&[&[-1e6, 1e6, 0.0], &[0.5, -1.0, 0.5], &[0.0, 1e-2, -1e-2]]);
        let e = expm(&q).unwrap();
        for i in 0..3 {
            let row: f64 = (0..3).map(|j| e.get(i, j)).sum();
            assert!((row - 1.0).abs() < 1e-9, "row {i} sums to {row}");
            for j in 0..3 {
                assert!(e.get(i, j) >= -1e-12);
            }
        }
    }

    #[test]
    fn inverse_property() {
        let a = from_rows(&[&[0.3, -1.2, 0.4], &[0.9, 0.1, -0.6], &[-0.2, 0.8, 0.5]]);
        let mut neg = DenseMatrix::zeros(3, 3);
        scale_add(&mut neg, &a, -1.0);
        let prod = expm(&a).unwrap().matmul(&expm(&neg).unwrap()).unwrap();
        assert!(max_diff(&prod, &DenseMatrix::identity(3)) < 1e-13);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(expm(&DenseMatrix::zeros(2, 3)).is_err());
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 1, f64::NAN);
        assert!(expm(&m).is_err());
    }
}
