//! Root finding (Brent) and one-dimensional minimization (golden
//! section), used for optimal maintenance/rejuvenation interval searches
//! and distribution quantile inversion.

use crate::{NumericError, Result};

/// Finds a root of `f` in the bracketing interval `[a, b]` by Brent's
/// method.
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] if the interval is malformed or does
/// not bracket a sign change, [`NumericError::NoConvergence`] if the
/// iteration budget is exhausted.
///
/// ```
/// use reliab_numeric::roots::brent;
/// let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-12, 200).unwrap();
/// assert!((r - 2f64.sqrt()).abs() < 1e-10);
/// ```
pub fn brent<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64, max_iter: usize) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(NumericError::Invalid(format!(
            "bracket [{a}, {b}] must be finite with a < b"
        )));
    }
    if tol.is_nan() || tol <= 0.0 {
        return Err(NumericError::Invalid(format!(
            "tolerance must be positive, got {tol}"
        )));
    }
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumericError::Invalid(format!(
            "interval does not bracket a root: f({a}) = {fa}, f({b}) = {fb}"
        )));
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut e = d;
    for _ in 0..max_iter {
        if fb.abs() > fc.abs() {
            a = b;
            b = c;
            c = a;
            fa = fb;
            fb = fc;
            fc = fa;
        }
        let tol1 = 2.0 * f64::EPSILON * b.abs() + 0.5 * tol;
        let xm = 0.5 * (c - b);
        if xm.abs() <= tol1 || fb == 0.0 {
            return Ok(b);
        }
        if e.abs() >= tol1 && fa.abs() > fb.abs() {
            // Attempt inverse quadratic interpolation / secant.
            let s = fb / fa;
            let (mut p, mut q);
            if a == c {
                p = 2.0 * xm * s;
                q = 1.0 - s;
            } else {
                let qq = fa / fc;
                let r = fb / fc;
                p = s * (2.0 * xm * qq * (qq - r) - (b - a) * (r - 1.0));
                q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
            }
            if p > 0.0 {
                q = -q;
            }
            p = p.abs();
            let min1 = 3.0 * xm * q - (tol1 * q).abs();
            let min2 = (e * q).abs();
            if 2.0 * p < min1.min(min2) {
                e = d;
                d = p / q;
            } else {
                d = xm;
                e = d;
            }
        } else {
            d = xm;
            e = d;
        }
        a = b;
        fa = fb;
        if d.abs() > tol1 {
            b += d;
        } else {
            b += tol1.copysign(xm);
        }
        fb = f(b);
        if fb.signum() == fc.signum() {
            c = a;
            fc = fa;
            d = b - a;
            e = d;
        }
    }
    Err(NumericError::NoConvergence {
        what: "Brent root finding".into(),
        iterations: max_iter,
        residual: fb.abs(),
    })
}

/// Minimizes a unimodal `f` over `[a, b]` by golden-section search,
/// returning `(x_min, f(x_min))`.
///
/// For non-unimodal functions the result is a local minimum.
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] on a malformed interval or
/// tolerance.
///
/// ```
/// use reliab_numeric::roots::golden_section_min;
/// let (x, v) = golden_section_min(|x| (x - 1.5f64).powi(2), 0.0, 4.0, 1e-10).unwrap();
/// assert!((x - 1.5).abs() < 1e-8);
/// assert!(v < 1e-15);
/// ```
pub fn golden_section_min<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<(f64, f64)> {
    if !a.is_finite() || !b.is_finite() || a >= b {
        return Err(NumericError::Invalid(format!(
            "interval [{a}, {b}] must be finite with a < b"
        )));
    }
    if tol.is_nan() || tol <= 0.0 {
        return Err(NumericError::Invalid(format!(
            "tolerance must be positive, got {tol}"
        )));
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let (mut a, mut b) = (a, b);
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
    }
    let x = 0.5 * (a + b);
    Ok((x, f(x)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brent_finds_simple_roots() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-13, 100).unwrap();
        assert!((r - 0.7390851332151607).abs() < 1e-10);
        let r = brent(|x| x.powi(3) - 8.0, 0.0, 10.0, 1e-13, 200).unwrap();
        assert!((r - 2.0).abs() < 1e-10);
    }

    #[test]
    fn brent_accepts_root_at_endpoint() {
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-12, 100).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12, 100).unwrap(), 1.0);
    }

    #[test]
    fn brent_rejects_non_bracketing_intervals() {
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, 1e-12, 100).is_err());
        assert!(brent(|x| x, 1.0, 0.0, 1e-12, 100).is_err());
        assert!(brent(|x| x, -1.0, 1.0, 0.0, 100).is_err());
    }

    #[test]
    fn golden_section_quadratic() {
        let (x, v) =
            golden_section_min(|x| (x - 3.0f64).powi(2) + 2.0, -10.0, 10.0, 1e-10).unwrap();
        assert!((x - 3.0).abs() < 1e-7);
        assert!((v - 2.0).abs() < 1e-12);
    }

    #[test]
    fn golden_section_asymmetric_cost_curve() {
        // Availability-style cost: steep left of optimum, shallow right.
        let cost = |x: f64| 1.0 / x + 0.1 * x;
        let (x, _) = golden_section_min(cost, 0.01, 100.0, 1e-10).unwrap();
        assert!((x - (1.0f64 / 0.1).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn golden_section_rejects_bad_interval() {
        assert!(golden_section_min(|x| x, 1.0, 1.0, 1e-10).is_err());
        assert!(golden_section_min(|x| x, 0.0, 1.0, -1.0).is_err());
    }
}
