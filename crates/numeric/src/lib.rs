//! # reliab-numeric
//!
//! Self-contained numerical substrate for the `reliab` workspace. No
//! external linear-algebra dependency is used: the solvers here are
//! purpose-built for the shapes that arise in reliability models —
//! infinitesimal generator matrices (singular, diagonally dominant,
//! rows summing to zero), stochastic matrices, and the smooth special
//! functions behind lifetime distributions.
//!
//! Contents:
//!
//! * [`DenseMatrix`] — row-major dense matrix with LU solves.
//! * [`CsrMatrix`] — compressed sparse row matrix built from triplets.
//! * [`gth_steady_state`] — Grassmann–Taksar–Heyman elimination: the
//!   subtraction-free, numerically stable direct method for stationary
//!   vectors of CTMC generators.
//! * [`sor_steady_state`] / [`power_method`] — iterative alternatives for
//!   large sparse chains.
//! * [`poisson_weights`] — truncated, normalized Poisson probabilities for
//!   uniformization (Fox–Glynn-style tail control).
//! * [`expm`] — dense matrix exponential (Padé-13 scaling and
//!   squaring), the oracle behind the differential transient tests.
//! * [`special`] — `ln Γ`, regularized incomplete gamma, `erf`, normal
//!   CDF/quantile.
//! * [`quadrature`] — adaptive Simpson integration.
//! * [`roots`] — Brent root bracketing and golden-section minimization.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod csr;
mod dense;
mod expm;
mod gth;
mod iterative;
mod poisson;
pub mod quadrature;
pub mod roots;
pub mod special;

pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use expm::expm;
pub use gth::{gth_steady_state, gth_steady_state_observed};
pub use iterative::{
    power_method, power_method_observed, power_method_with_stats, sor_steady_state,
    sor_steady_state_observed, sor_steady_state_with_stats, IterationStats, IterativeOptions,
};
pub use poisson::{poisson_weights, PoissonWeights};

/// Error type for the numeric layer.
///
/// The numeric crate defines its own minimal error to stay free of
/// workspace dependencies; higher layers convert it into
/// `reliab_core::Error`.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericError {
    /// Inputs of mismatched or invalid dimensions/values.
    Invalid(String),
    /// A direct solve broke down (singular matrix, zero pivot).
    Singular(String),
    /// An iterative method exhausted its budget.
    NoConvergence {
        /// Description of the failing method.
        what: String,
        /// Iterations performed.
        iterations: usize,
        /// Final residual.
        residual: f64,
    },
}

impl std::fmt::Display for NumericError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NumericError::Invalid(m) => write!(f, "invalid numeric input: {m}"),
            NumericError::Singular(m) => write!(f, "singular system: {m}"),
            NumericError::NoConvergence {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} did not converge after {iterations} iterations (residual {residual:e})"
            ),
        }
    }
}

impl std::error::Error for NumericError {}

/// Result alias for the numeric layer.
pub type Result<T> = std::result::Result<T, NumericError>;
