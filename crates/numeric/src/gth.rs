//! Grassmann–Taksar–Heyman (GTH) elimination for stationary vectors.

use crate::{DenseMatrix, NumericError, Result};

/// Computes the stationary probability vector `π` of an irreducible CTMC
/// with infinitesimal generator `q` (`π Q = 0`, `Σ π = 1`) by GTH
/// elimination.
///
/// GTH is the method of choice for small-to-medium chains: it performs no
/// subtractions, so it is immune to the catastrophic cancellation that
/// plagues naive Gaussian elimination on singular generators, and it
/// needs no pivoting.
///
/// The input must be a square generator: off-diagonal entries
/// non-negative. The diagonal is ignored and treated as the negated
/// off-diagonal row sum, which both enforces the generator property and
/// lets callers pass matrices with sloppy diagonals.
///
/// # Errors
///
/// * [`NumericError::Invalid`] — non-square input or negative
///   off-diagonal rate.
/// * [`NumericError::Singular`] — the chain is reducible (some state has
///   no transitions to lower-numbered states at elimination time), so no
///   unique stationary vector exists.
///
/// ```
/// use reliab_numeric::{gth_steady_state, DenseMatrix};
/// # fn main() -> Result<(), reliab_numeric::NumericError> {
/// // Two-state repairable component: fail rate 1, repair rate 9.
/// let q = DenseMatrix::from_rows(&[&[-1.0, 1.0], &[9.0, -9.0]])?;
/// let pi = gth_steady_state(&q)?;
/// assert!((pi[0] - 0.9).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn gth_steady_state(q: &DenseMatrix) -> Result<Vec<f64>> {
    gth_steady_state_observed(q, &mut |_| {})
}

/// [`gth_steady_state`] with a per-stage observer: `observer(k)` is
/// called after eliminating state `k` (states are eliminated from
/// `n - 1` down to `1`). The observer exists for progress/tracing
/// hooks; it must not panic.
///
/// # Errors
///
/// See [`gth_steady_state`].
pub fn gth_steady_state_observed(
    q: &DenseMatrix,
    observer: &mut dyn FnMut(usize),
) -> Result<Vec<f64>> {
    let n = q.nrows();
    if n != q.ncols() {
        return Err(NumericError::Invalid(format!(
            "generator must be square, got {}x{}",
            n,
            q.ncols()
        )));
    }
    if n == 0 {
        return Err(NumericError::Invalid("empty generator".into()));
    }
    if n == 1 {
        return Ok(vec![1.0]);
    }

    // Work on a copy holding only off-diagonal rates.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let v = q.get(i, j);
            if !v.is_finite() || v < 0.0 {
                return Err(NumericError::Invalid(format!(
                    "off-diagonal rate q[{i}][{j}] = {v} must be finite and >= 0"
                )));
            }
            a[i * n + j] = v;
        }
    }

    // Eliminate states n-1 down to 1. After eliminating state k, the
    // submatrix a[i][j] for i, j < k describes the chain censored
    // (watched only) on states {0, ..., k-1}. Entries a[i][k] for i < k
    // are left untouched and reused during back substitution.
    let mut elim_sum = vec![0.0f64; n]; // s_k for k = 1..n
    for k in (1..n).rev() {
        let s: f64 = (0..k).map(|j| a[k * n + j]).sum();
        if s <= 0.0 {
            return Err(NumericError::Singular(format!(
                "state {k} cannot reach lower-numbered states: chain is reducible"
            )));
        }
        elim_sum[k] = s;
        for i in 0..k {
            let f = a[i * n + k] / s;
            if f == 0.0 {
                continue;
            }
            for j in 0..k {
                if i == j {
                    continue;
                }
                a[i * n + j] += f * a[k * n + j];
            }
        }
        observer(k);
    }

    // Back substitution (only additions and multiplications).
    let mut pi = vec![0.0f64; n];
    pi[0] = 1.0;
    for k in 1..n {
        let mut acc = 0.0;
        for i in 0..k {
            acc += pi[i] * a[i * n + k];
        }
        pi[k] = acc / elim_sum[k];
    }
    let total: f64 = pi.iter().sum();
    if !total.is_finite() || total <= 0.0 {
        return Err(NumericError::Singular(
            "stationary vector normalization failed".into(),
        ));
    }
    for p in &mut pi {
        *p /= total;
    }
    Ok(pi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(q: &DenseMatrix, pi: &[f64]) -> f64 {
        // ||pi Q||_inf using recomputed diagonals.
        let n = q.nrows();
        let mut worst = 0.0f64;
        for j in 0..n {
            let mut acc = 0.0;
            for (i, &pi_i) in pi.iter().enumerate().take(n) {
                let qij = if i == j {
                    -(0..n).filter(|&c| c != i).map(|c| q.get(i, c)).sum::<f64>()
                } else {
                    q.get(i, j)
                };
                acc += pi_i * qij;
            }
            worst = worst.max(acc.abs());
        }
        worst
    }

    #[test]
    fn two_state_birth_death() {
        let q = DenseMatrix::from_rows(&[&[-1.0, 1.0], &[9.0, -9.0]]).unwrap();
        let pi = gth_steady_state(&q).unwrap();
        assert!((pi[0] - 0.9).abs() < 1e-14);
        assert!((pi[1] - 0.1).abs() < 1e-14);
    }

    #[test]
    fn mm1k_queue_matches_closed_form() {
        // M/M/1/4: lambda = 2, mu = 3 => pi_i ∝ rho^i, rho = 2/3.
        let (lambda, mu, k) = (2.0f64, 3.0f64, 4usize);
        let n = k + 1;
        let mut q = DenseMatrix::zeros(n, n);
        for i in 0..k {
            q.set(i, i + 1, lambda);
            q.set(i + 1, i, mu);
        }
        let pi = gth_steady_state(&q).unwrap();
        let rho: f64 = lambda / mu;
        let norm: f64 = (0..n).map(|i| rho.powi(i as i32)).sum();
        for (i, p) in pi.iter().enumerate() {
            assert!((p - rho.powi(i as i32) / norm).abs() < 1e-13, "state {i}");
        }
        assert!(residual(&q, &pi) < 1e-13);
    }

    #[test]
    fn sloppy_diagonal_is_ignored() {
        let q_clean = DenseMatrix::from_rows(&[&[-1.0, 1.0], &[4.0, -4.0]]).unwrap();
        let q_sloppy = DenseMatrix::from_rows(&[&[123.0, 1.0], &[4.0, f64::NAN]]).unwrap();
        // NaN on the diagonal must not matter.
        assert_eq!(
            gth_steady_state(&q_clean).unwrap(),
            gth_steady_state(&q_sloppy).unwrap()
        );
    }

    #[test]
    fn reducible_chain_detected() {
        // State 1 is absorbing: no stationary distribution over both states
        // reachable via GTH's lower-state requirement at k = 1.
        let q = DenseMatrix::from_rows(&[&[-1.0, 1.0], &[0.0, 0.0]]).unwrap();
        assert!(matches!(
            gth_steady_state(&q),
            Err(NumericError::Singular(_))
        ));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let q = DenseMatrix::from_rows(&[&[-1.0, -1.0], &[1.0, -1.0]]).unwrap();
        assert!(gth_steady_state(&q).is_err());
        let rect = DenseMatrix::zeros(2, 3);
        assert!(gth_steady_state(&rect).is_err());
        assert!(gth_steady_state(&DenseMatrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn single_state_chain() {
        let q = DenseMatrix::zeros(1, 1);
        assert_eq!(gth_steady_state(&q).unwrap(), vec![1.0]);
    }

    #[test]
    fn random_generator_has_tiny_residual() {
        // Deterministic pseudo-random dense generator, 20 states.
        let n = 20;
        let mut q = DenseMatrix::zeros(n, n);
        let mut seed = 0x12345678u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64)
        };
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    q.set(i, j, 0.01 + next());
                }
            }
        }
        let pi = gth_steady_state(&q).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(pi.iter().all(|&p| p > 0.0));
        assert!(residual(&q, &pi) < 1e-12);
    }
}
