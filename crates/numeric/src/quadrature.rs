//! Numerical integration: adaptive Simpson on finite intervals and a
//! semi-infinite wrapper for MTTF-style integrals of survival functions.

use crate::{NumericError, Result};

/// Integrates `f` over `[a, b]` by adaptive Simpson quadrature with
/// absolute tolerance `tol`.
///
/// # Errors
///
/// Returns [`NumericError::Invalid`] for a malformed interval or
/// non-positive tolerance, [`NumericError::NoConvergence`] if the
/// recursion depth limit is reached before the tolerance is met.
///
/// ```
/// use reliab_numeric::quadrature::integrate;
/// let v = integrate(|x| x * x, 0.0, 1.0, 1e-12).unwrap();
/// assert!((v - 1.0 / 3.0).abs() < 1e-10);
/// ```
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() || a > b {
        return Err(NumericError::Invalid(format!(
            "integration interval [{a}, {b}] must be finite with a <= b"
        )));
    }
    if tol.is_nan() || tol <= 0.0 {
        return Err(NumericError::Invalid(format!(
            "tolerance must be positive, got {tol}"
        )));
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    let mut depth_exceeded = false;
    let v = adaptive(&f, a, b, fa, fm, fb, whole, tol, 60, &mut depth_exceeded);
    if depth_exceeded {
        return Err(NumericError::NoConvergence {
            what: "adaptive Simpson".into(),
            iterations: 60,
            residual: tol,
        });
    }
    Ok(v)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: u32,
    exceeded: &mut bool,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol || (b - a) < 1e-14 {
        return left + right + delta / 15.0;
    }
    if depth == 0 {
        *exceeded = true;
        return left + right;
    }
    adaptive(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1, exceeded)
        + adaptive(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1, exceeded)
}

/// Integrates a non-negative, eventually-decaying function (such as a
/// survival function `R(t)`) over `[0, ∞)` by marching in doubling
/// windows until a window contributes less than `tol`.
///
/// # Errors
///
/// Propagates [`integrate`] errors; returns
/// [`NumericError::NoConvergence`] if the integral has not decayed
/// after `max_windows` doublings (divergent or too-slowly-decaying
/// integrand).
pub fn integrate_to_infinity<F: Fn(f64) -> f64>(
    f: F,
    initial_window: f64,
    tol: f64,
    max_windows: usize,
) -> Result<f64> {
    if !initial_window.is_finite() || initial_window <= 0.0 {
        return Err(NumericError::Invalid(format!(
            "initial window must be positive and finite, got {initial_window}"
        )));
    }
    let mut total = 0.0;
    let mut a = 0.0;
    let mut w = initial_window;
    for _ in 0..max_windows {
        let piece = integrate(&f, a, a + w, tol)?;
        total += piece;
        if piece.abs() < tol && a > 0.0 {
            return Ok(total);
        }
        a += w;
        w *= 2.0;
    }
    Err(NumericError::NoConvergence {
        what: "semi-infinite integration".into(),
        iterations: max_windows,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polynomial_exact() {
        let v = integrate(|x| 3.0 * x * x, 0.0, 2.0, 1e-12).unwrap();
        assert!((v - 8.0).abs() < 1e-10);
    }

    #[test]
    fn oscillatory_integrand() {
        let v = integrate(|x| x.sin(), 0.0, std::f64::consts::PI, 1e-12).unwrap();
        assert!((v - 2.0).abs() < 1e-10);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(integrate(|x| x, 1.0, 1.0, 1e-12).unwrap(), 0.0);
    }

    #[test]
    fn invalid_inputs() {
        assert!(integrate(|x| x, 1.0, 0.0, 1e-12).is_err());
        assert!(integrate(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(integrate(|x| x, f64::NAN, 1.0, 1e-12).is_err());
    }

    #[test]
    fn exponential_survival_integrates_to_mean() {
        // ∫ e^{-2t} dt over [0, ∞) = 0.5
        let v = integrate_to_infinity(|t| (-2.0 * t).exp(), 1.0, 1e-12, 60).unwrap();
        assert!((v - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weibull_survival_mean() {
        // Weibull shape 2, scale 1: mean = Γ(1.5) = sqrt(pi)/2.
        let v = integrate_to_infinity(|t: f64| (-(t * t)).exp(), 1.0, 1e-13, 60).unwrap();
        assert!((v - std::f64::consts::PI.sqrt() / 2.0).abs() < 1e-9);
    }

    #[test]
    fn divergent_integral_reports_nonconvergence() {
        let r = integrate_to_infinity(|_| 1.0, 1.0, 1e-9, 10);
        assert!(matches!(r, Err(NumericError::NoConvergence { .. })));
    }
}
