//! Compressed sparse row matrices.

use crate::{NumericError, Result};

/// A compressed-sparse-row matrix of `f64`.
///
/// Built from coordinate triplets (duplicates are summed), supports the
/// operations the iterative Markov solvers need: row iteration,
/// matrix-vector products from either side, and transposition.
///
/// ```
/// use reliab_numeric::CsrMatrix;
/// # fn main() -> Result<(), reliab_numeric::NumericError> {
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 3.0), (1, 0, 2.0)])?;
/// assert_eq!(m.matvec(&[1.0, 1.0])?, vec![3.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed; explicit zeros (including sums
    /// cancelling to zero) are kept, which is harmless for the solvers.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] if any coordinate is out of
    /// bounds or any value is non-finite.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self> {
        for &(r, c, v) in triplets {
            if r >= nrows || c >= ncols {
                return Err(NumericError::Invalid(format!(
                    "triplet ({r}, {c}) out of bounds for {nrows}x{ncols}"
                )));
            }
            if !v.is_finite() {
                return Err(NumericError::Invalid(format!(
                    "non-finite value {v} at ({r}, {c})"
                )));
            }
        }
        // Count entries per row, then bucket-sort triplets into rows.
        let mut counts = vec![0usize; nrows + 1];
        for &(r, _, _) in triplets {
            counts[r + 1] += 1;
        }
        for i in 0..nrows {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0usize; triplets.len()];
        let mut vals = vec![0.0f64; triplets.len()];
        let mut next = counts.clone();
        for &(r, c, v) in triplets {
            let slot = next[r];
            cols[slot] = c;
            vals[slot] = v;
            next[r] += 1;
        }
        // Sort within each row and merge duplicates. One scratch
        // buffer serves every row — a fresh allocation per row is
        // measurable when generators arrive with 10^5+ rows (see the
        // `reach` bench suite).
        let mut row_ptr = vec![0usize; nrows + 1];
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        let mut entries: Vec<(usize, f64)> = Vec::new();
        for r in 0..nrows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            entries.clear();
            entries.extend(
                cols[lo..hi]
                    .iter()
                    .copied()
                    .zip(vals[lo..hi].iter().copied()),
            );
            entries.sort_unstable_by_key(|e| e.0);
            let row_start = col_idx.len();
            for &(c, v) in &entries {
                if col_idx.len() > row_start && *col_idx.last().expect("nonempty") == c {
                    *values.last_mut().expect("nonempty") += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(column, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= nrows`.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.nrows, "row index out of bounds");
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Fetches entry `(i, j)`, `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
        match self.col_idx[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Computes `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(NumericError::Invalid(format!(
                "matvec dimension mismatch: {} cols vs vector of {}",
                self.ncols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.nrows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (j, v) in self.row(i) {
                acc += v * x[j];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Computes `x^T * self`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::Invalid`] if `x.len() != nrows`.
    pub fn vecmat(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(NumericError::Invalid(format!(
                "vecmat dimension mismatch: {} rows vs vector of {}",
                self.nrows,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.ncols];
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            for (j, v) in self.row(i) {
                y[j] += xi * v;
            }
        }
        Ok(y)
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut triplets = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                triplets.push((j, i, v));
            }
        }
        // from_triplets cannot fail here: coordinates are in range and
        // values finite by construction.
        CsrMatrix::from_triplets(self.ncols, self.nrows, &triplets)
            .expect("transpose of a valid CSR matrix is valid")
    }

    /// Converts to a dense matrix (for tests and small direct solves).
    pub fn to_dense(&self) -> crate::DenseMatrix {
        let mut d = crate::DenseMatrix::zeros(self.nrows, self.ncols);
        for i in 0..self.nrows {
            for (j, v) in self.row(i) {
                d.add_to(i, j, v);
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_sorted_and_deduplicated() {
        let m =
            CsrMatrix::from_triplets(2, 3, &[(0, 2, 1.0), (0, 0, 2.0), (0, 2, 3.0), (1, 1, 5.0)])
                .unwrap();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 5.0);
    }

    #[test]
    fn out_of_bounds_and_nonfinite_rejected() {
        assert!(CsrMatrix::from_triplets(1, 1, &[(1, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn matvec_vecmat_transpose_consistency() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]).unwrap();
        let x = [1.0, 2.0];
        let a = m.vecmat(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, vec![1.0, 6.0, 2.0]);
    }

    #[test]
    fn dense_round_trip() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.5), (1, 0, -2.0)]).unwrap();
        let d = m.to_dense();
        assert_eq!(d.get(0, 1), 1.5);
        assert_eq!(d.get(1, 0), -2.0);
        assert_eq!(d.get(0, 0), 0.0);
    }

    #[test]
    fn empty_matrix_works() {
        let m = CsrMatrix::from_triplets(3, 3, &[]).unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![0.0, 0.0, 0.0]);
    }
}
