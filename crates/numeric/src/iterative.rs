//! Iterative stationary-vector solvers for large sparse chains.

use crate::{CsrMatrix, NumericError, Result};

/// Options shared by the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterativeOptions {
    /// Convergence tolerance on the iterate change (`∞`-norm, relative
    /// to the iterate's largest entry).
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// SOR relaxation factor in `(0, 2)`; `1.0` is plain Gauss–Seidel.
    pub relaxation: f64,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        IterativeOptions {
            tolerance: 1e-12,
            max_iterations: 20_000,
            relaxation: 1.0,
        }
    }
}

/// Convergence telemetry reported by the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct IterationStats {
    /// Sweeps / matrix-vector products performed.
    pub iterations: usize,
    /// Relative `∞`-norm change of the final sweep (the convergence
    /// residual the tolerance was tested against).
    pub residual: f64,
}

impl IterativeOptions {
    fn validate(&self) -> Result<()> {
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(NumericError::Invalid(format!(
                "tolerance must be positive, got {}",
                self.tolerance
            )));
        }
        if self.max_iterations == 0 {
            return Err(NumericError::Invalid("max_iterations must be > 0".into()));
        }
        if !(self.relaxation > 0.0 && self.relaxation < 2.0) {
            return Err(NumericError::Invalid(format!(
                "SOR relaxation must lie in (0, 2), got {}",
                self.relaxation
            )));
        }
        Ok(())
    }
}

/// Solves `π Q = 0`, `Σ π = 1` by (S)SOR sweeps on the columns of the
/// generator, given the **transpose** `q_t` of the generator in CSR form
/// (so each CSR row of `q_t` is a column of `Q` — the natural access
/// pattern for Gauss–Seidel on `π Q = 0`).
///
/// The diagonal of the generator must be present in `q_t` (negative
/// total outflow per state).
///
/// # Errors
///
/// * [`NumericError::Invalid`] — non-square input, missing/zero diagonal,
///   or invalid options.
/// * [`NumericError::NoConvergence`] — iteration budget exhausted.
pub fn sor_steady_state(q_t: &CsrMatrix, opts: &IterativeOptions) -> Result<Vec<f64>> {
    sor_steady_state_with_stats(q_t, opts).map(|(pi, _)| pi)
}

/// [`sor_steady_state`] plus iteration-count / residual telemetry.
///
/// # Errors
///
/// See [`sor_steady_state`].
pub fn sor_steady_state_with_stats(
    q_t: &CsrMatrix,
    opts: &IterativeOptions,
) -> Result<(Vec<f64>, IterationStats)> {
    sor_steady_state_observed(q_t, opts, &mut |_, _| {})
}

/// [`sor_steady_state_with_stats`] with a per-sweep observer: after
/// each sweep, `observer(sweep, residual)` is called with the 1-based
/// sweep number and the relative `∞`-norm change tested against the
/// tolerance. The observer exists for progress/tracing hooks; it must
/// not panic.
///
/// # Errors
///
/// See [`sor_steady_state`].
pub fn sor_steady_state_observed(
    q_t: &CsrMatrix,
    opts: &IterativeOptions,
    observer: &mut dyn FnMut(usize, f64),
) -> Result<(Vec<f64>, IterationStats)> {
    opts.validate()?;
    let n = q_t.nrows();
    if n == 0 || n != q_t.ncols() {
        return Err(NumericError::Invalid(format!(
            "generator transpose must be square and nonempty, got {}x{}",
            n,
            q_t.ncols()
        )));
    }

    // Pre-extract diagonals; Gauss–Seidel divides by q_jj.
    let mut diag = vec![0.0f64; n];
    for (j, d) in diag.iter_mut().enumerate() {
        *d = q_t.get(j, j);
        if *d >= 0.0 {
            return Err(NumericError::Invalid(format!(
                "generator diagonal q[{j}][{j}] = {} must be negative",
                *d
            )));
        }
    }

    let mut pi = vec![1.0 / n as f64; n];
    let omega = opts.relaxation;
    for iter in 0..opts.max_iterations {
        let mut max_change = 0.0f64;
        let mut max_val = 0.0f64;
        for j in 0..n {
            // pi_j_new = (sum_{i != j} pi_i q_ij) / (-q_jj)
            let mut acc = 0.0;
            for (i, v) in q_t.row(j) {
                if i != j {
                    acc += pi[i] * v;
                }
            }
            let new = acc / (-diag[j]);
            let relaxed = omega * new + (1.0 - omega) * pi[j];
            max_change = max_change.max((relaxed - pi[j]).abs());
            pi[j] = relaxed;
            max_val = max_val.max(relaxed.abs());
        }
        // Normalize each sweep to keep the iterate bounded.
        let total: f64 = pi.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(NumericError::Singular(
                "SOR iterate collapsed; chain may be reducible".into(),
            ));
        }
        for p in &mut pi {
            *p /= total;
        }
        if max_val > 0.0 {
            observer(iter + 1, max_change / max_val);
        }
        if max_val > 0.0 && max_change / max_val < opts.tolerance {
            return Ok((
                pi,
                IterationStats {
                    iterations: iter + 1,
                    residual: max_change / max_val,
                },
            ));
        }
        if iter + 1 == opts.max_iterations {
            return Err(NumericError::NoConvergence {
                what: "SOR steady-state".into(),
                iterations: opts.max_iterations,
                residual: max_change / max_val.max(f64::MIN_POSITIVE),
            });
        }
    }
    unreachable!("loop returns before exhausting")
}

/// Computes the stationary vector of an aperiodic irreducible DTMC with
/// transition matrix `P` by power iteration, given the **transpose**
/// `p_t` in CSR form.
///
/// # Errors
///
/// * [`NumericError::Invalid`] — non-square input or invalid options.
/// * [`NumericError::NoConvergence`] — iteration budget exhausted
///   (periodic chains will land here).
pub fn power_method(p_t: &CsrMatrix, opts: &IterativeOptions) -> Result<Vec<f64>> {
    power_method_with_stats(p_t, opts).map(|(pi, _)| pi)
}

/// [`power_method`] plus iteration-count / residual telemetry.
///
/// # Errors
///
/// See [`power_method`].
pub fn power_method_with_stats(
    p_t: &CsrMatrix,
    opts: &IterativeOptions,
) -> Result<(Vec<f64>, IterationStats)> {
    power_method_observed(p_t, opts, &mut |_, _| {})
}

/// [`power_method_with_stats`] with a per-iteration observer: after
/// each matrix–vector product, `observer(iteration, change)` is called
/// with the 1-based iteration number and the `∞`-norm iterate change
/// tested against the tolerance.
///
/// # Errors
///
/// See [`power_method`].
pub fn power_method_observed(
    p_t: &CsrMatrix,
    opts: &IterativeOptions,
    observer: &mut dyn FnMut(usize, f64),
) -> Result<(Vec<f64>, IterationStats)> {
    opts.validate()?;
    let n = p_t.nrows();
    if n == 0 || n != p_t.ncols() {
        return Err(NumericError::Invalid(format!(
            "transition matrix transpose must be square and nonempty, got {}x{}",
            n,
            p_t.ncols()
        )));
    }
    let mut pi = vec![1.0 / n as f64; n];
    for iter in 0..opts.max_iterations {
        // next = P^T * pi  (i.e. pi * P)
        let mut next = p_t.matvec(&pi)?;
        let total: f64 = next.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(NumericError::Singular(
                "power iterate collapsed; matrix may not be stochastic".into(),
            ));
        }
        for v in &mut next {
            *v /= total;
        }
        let change = pi
            .iter()
            .zip(&next)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        pi = next;
        observer(iter + 1, change);
        if change < opts.tolerance {
            return Ok((
                pi,
                IterationStats {
                    iterations: iter + 1,
                    residual: change,
                },
            ));
        }
        if iter + 1 == opts.max_iterations {
            return Err(NumericError::NoConvergence {
                what: "power method".into(),
                iterations: opts.max_iterations,
                residual: change,
            });
        }
    }
    unreachable!("loop returns before exhausting")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gth_steady_state;

    fn birth_death_generator(n: usize, lambda: f64, mu: f64) -> Vec<(usize, usize, f64)> {
        let mut t = Vec::new();
        for i in 0..n - 1 {
            t.push((i, i + 1, lambda));
            t.push((i + 1, i, mu));
        }
        // diagonals
        for i in 0..n {
            let mut out = 0.0;
            if i + 1 < n {
                out += lambda;
            }
            if i > 0 {
                out += mu;
            }
            t.push((i, i, -out));
        }
        t
    }

    #[test]
    fn sor_matches_gth_on_birth_death() {
        let n = 12;
        let trip = birth_death_generator(n, 1.0, 2.5);
        let q = CsrMatrix::from_triplets(n, n, &trip).unwrap();
        let pi_sor = sor_steady_state(&q.transpose(), &IterativeOptions::default()).unwrap();
        let pi_gth = gth_steady_state(&q.to_dense()).unwrap();
        for i in 0..n {
            assert!((pi_sor[i] - pi_gth[i]).abs() < 1e-9, "state {i}");
        }
    }

    #[test]
    fn sor_with_overrelaxation_converges() {
        let n = 30;
        let trip = birth_death_generator(n, 3.0, 4.0);
        let q = CsrMatrix::from_triplets(n, n, &trip).unwrap();
        let opts = IterativeOptions {
            relaxation: 1.2,
            ..Default::default()
        };
        let pi = sor_steady_state(&q.transpose(), &opts).unwrap();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn sor_rejects_missing_diagonal() {
        let q = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        assert!(sor_steady_state(&q.transpose(), &IterativeOptions::default()).is_err());
    }

    #[test]
    fn sor_rejects_bad_options() {
        let q = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, -1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, -1.0)],
        )
        .unwrap();
        for opts in [
            IterativeOptions {
                tolerance: 0.0,
                ..Default::default()
            },
            IterativeOptions {
                max_iterations: 0,
                ..Default::default()
            },
            IterativeOptions {
                relaxation: 2.0,
                ..Default::default()
            },
        ] {
            assert!(sor_steady_state(&q.transpose(), &opts).is_err());
        }
    }

    #[test]
    fn power_method_two_state_chain() {
        // P = [[0.5, 0.5], [0.25, 0.75]] => pi = (1/3, 2/3).
        let p = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 0.5), (0, 1, 0.5), (1, 0, 0.25), (1, 1, 0.75)],
        )
        .unwrap();
        let pi = power_method(&p.transpose(), &IterativeOptions::default()).unwrap();
        assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
        assert!((pi[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn power_method_reports_nonconvergence_on_periodic_chain() {
        // Pure swap: period 2, power iteration from a non-uniform start
        // oscillates forever. Uniform start converges immediately, so
        // perturb via an asymmetric chain with an explicit tiny budget.
        let p = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let opts = IterativeOptions {
            max_iterations: 3,
            tolerance: 1e-15,
            ..Default::default()
        };
        // Uniform start happens to be stationary here, so this converges:
        assert!(power_method(&p.transpose(), &opts).is_ok());
        // A slowly mixing chain cannot meet 1e-15 in three iterations.
        let slow = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 0.99), (0, 1, 0.01), (1, 0, 0.005), (1, 1, 0.995)],
        )
        .unwrap();
        assert!(matches!(
            power_method(&slow.transpose(), &opts),
            Err(NumericError::NoConvergence { .. })
        ));
    }
}
