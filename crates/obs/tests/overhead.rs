//! Disabled-path overhead contract: with no subscriber installed and
//! metrics off, every instrumentation site must cost one relaxed
//! atomic load — no clock reads, no locks, no allocation, and a wall
//! time that stays in the noise floor of any solver workload.
//!
//! The wall-time bound here is deliberately generous (a debug,
//! contended CI runner must pass), but it would still catch a
//! regression that put a lock, a syscall, or a `Instant::now()` on the
//! disabled path — any of those turns 4M gate checks into seconds.

use std::time::Instant;

use reliab_obs as obs;

const CALLS: u64 = 1_000_000;

#[test]
fn disabled_sites_are_inert_and_near_free() {
    obs::clear_subscribers();
    obs::set_metrics_enabled(false);

    // Behavioral half of the contract: disabled spans are inert (id 0,
    // no ambient trace id minted), disabled events and metric helpers
    // leave no mark anywhere.
    let span = obs::span("overhead.span");
    assert_eq!(span.id(), 0, "disabled span must be inert");
    drop(span);
    assert!(
        obs::ensure_trace_id().is_none(),
        "no trace id may be minted while tracing is off"
    );
    let before = obs::registry().snapshot();
    obs::counter_add("overhead.counter", 1);
    obs::observe_ms("overhead.latency", 1.0);
    let after = obs::registry().snapshot();
    assert_eq!(
        before.counters.len(),
        after.counters.len(),
        "disabled counter_add must not create registry entries"
    );
    assert_eq!(
        before.histograms.len(),
        after.histograms.len(),
        "disabled observe_ms must not create registry entries"
    );

    // Wall-time half: 1M each of span, event, counter, histogram calls.
    let t = Instant::now();
    for i in 0..CALLS {
        let span = obs::span("overhead.span");
        std::hint::black_box(span.id());
        obs::event("overhead.event", &[("i", i.into())]);
        obs::counter_add("overhead.counter", 1);
        obs::observe_ms("overhead.latency", 0.5);
    }
    let elapsed = t.elapsed();
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "4M disabled instrumentation calls took {elapsed:?}; \
         the disabled path must be a single relaxed load per site"
    );
}
