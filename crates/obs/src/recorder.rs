//! Flight recorder: a [`Subscriber`] that captures per-iteration
//! solver telemetry — every structured event — into bounded
//! per-series ring buffers, drained on demand as JSON Lines.
//!
//! Solvers already emit convergence events on their hot loops
//! (`markov.iteration` residuals, `sim.round` CI trajectories,
//! `hier.iteration` fixed-point deltas, `spn.reach.level` frontier
//! growth, `bdd.gc` / `bdd.ite` cache pressure, ...). The recorder
//! groups them by event name; each series keeps the most recent
//! [`DEFAULT_RECORDER_CAPACITY`] records and counts what it dropped,
//! so a million-iteration solve cannot grow memory without bound and
//! the tail — the part that shows convergence or its absence — is
//! always retained.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::subscriber::{escape_into_for_metrics as escape_json_into, EventInfo, SpanInfo};
use crate::{OwnedValue, Subscriber};

/// Default per-series ring capacity: enough for every iteration of a
/// typical solve, while bounding a pathological one to a few MB.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

#[derive(Debug, Clone)]
struct RecordedEvent {
    t_us: u64,
    span: u64,
    trace: u64,
    fields: Vec<(String, OwnedValue)>,
}

#[derive(Debug, Default)]
struct Series {
    ring: VecDeque<RecordedEvent>,
    dropped: u64,
}

/// Bounded ring-buffer recorder of structured events, keyed by event
/// name. Install with [`crate::install_subscriber`]; drain with
/// [`FlightRecorder::to_jsonl`].
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    epoch: Instant,
    series: Mutex<BTreeMap<String, Series>>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl FlightRecorder {
    /// A recorder with [`DEFAULT_RECORDER_CAPACITY`] records per series.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }

    /// A recorder keeping at most `capacity` records per event series
    /// (older records are dropped first and counted).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is 0.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        FlightRecorder {
            capacity,
            epoch: Instant::now(),
            series: Mutex::new(BTreeMap::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Series>> {
        self.series
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Names of every recorded series, sorted.
    #[must_use]
    pub fn series_names(&self) -> Vec<String> {
        self.lock().keys().cloned().collect()
    }

    /// Number of retained records in the named series.
    #[must_use]
    pub fn len(&self, series: &str) -> usize {
        self.lock().get(series).map_or(0, |s| s.ring.len())
    }

    /// Whether nothing has been recorded at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock()
            .values()
            .all(|s| s.ring.is_empty() && s.dropped == 0)
    }

    /// Serializes every series as JSON Lines: one `series_meta` line
    /// per series (`recorded` = retained count, `dropped` = evicted
    /// count), then its records in arrival order:
    ///
    /// ```text
    /// {"type":"series_meta","series":"markov.iteration","recorded":64,"dropped":0}
    /// {"type":"record","series":"markov.iteration","t_us":12,"span":3,"trace":1,"fields":{"iter":1,"residual":0.5}}
    /// ```
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        self.render(None)
    }

    /// Like [`FlightRecorder::to_jsonl`], but keeps only the records
    /// stamped with the given trace id — the per-request export the
    /// daemon writes when many solves share one process-global
    /// recorder. Series with no matching records are omitted entirely;
    /// `dropped` counts remain global (ring eviction does not track
    /// which trace it evicted).
    #[must_use]
    pub fn to_jsonl_for_trace(&self, trace: u64) -> String {
        self.render(Some(trace))
    }

    fn render(&self, trace: Option<u64>) -> String {
        let series = self.lock();
        let mut out = String::with_capacity(256);
        for (name, s) in series.iter() {
            let matching: Vec<&RecordedEvent> = s
                .ring
                .iter()
                .filter(|r| trace.is_none_or(|t| r.trace == t))
                .collect();
            if matching.is_empty() && trace.is_some() {
                continue;
            }
            out.push_str("{\"type\":\"series_meta\",\"series\":\"");
            escape_json_into(&mut out, name);
            let _ = writeln!(
                out,
                "\",\"recorded\":{},\"dropped\":{}}}",
                matching.len(),
                s.dropped
            );
            for r in matching {
                out.push_str("{\"type\":\"record\",\"series\":\"");
                escape_json_into(&mut out, name);
                let _ = write!(out, "\",\"t_us\":{},\"span\":{}", r.t_us, r.span);
                if r.trace != 0 {
                    let _ = write!(out, ",\"trace\":{}", r.trace);
                }
                out.push_str(",\"fields\":{");
                for (i, (key, value)) in r.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json_into(&mut out, key);
                    out.push_str("\":");
                    owned_value_json_into(&mut out, value);
                }
                out.push_str("}}\n");
            }
        }
        out
    }

    /// Discards every recorded series.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

fn owned_value_json_into(out: &mut String, v: &OwnedValue) {
    match v {
        OwnedValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        OwnedValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        OwnedValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        OwnedValue::F64(_) => out.push_str("null"),
        OwnedValue::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        OwnedValue::Str(s) => {
            out.push('"');
            escape_json_into(out, s);
            out.push('"');
        }
    }
}

impl Subscriber for FlightRecorder {
    fn on_span_start(&self, _span: &SpanInfo) {}

    fn on_span_end(&self, _span: &SpanInfo, _duration: Duration) {}

    fn on_event(&self, event: &EventInfo<'_>) {
        #[allow(clippy::cast_possible_truncation)]
        let t_us = self.epoch.elapsed().as_micros() as u64;
        let record = RecordedEvent {
            t_us,
            span: event.span,
            trace: event.trace,
            fields: event
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), OwnedValue::from(*v)))
                .collect(),
        };
        let mut series = self.lock();
        let s = series.entry(event.name.to_owned()).or_default();
        if s.ring.len() == self.capacity {
            s.ring.pop_front();
            s.dropped += 1;
        }
        s.ring.push_back(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    fn fire(rec: &FlightRecorder, name: &str, iter: u64) {
        rec.on_event(&EventInfo {
            span: 1,
            trace: 7,
            name,
            fields: &[("iter", Value::U64(iter)), ("residual", Value::F64(0.5))],
        });
    }

    #[test]
    fn records_group_by_series_in_arrival_order() {
        let rec = FlightRecorder::new();
        assert!(rec.is_empty());
        fire(&rec, "markov.iteration", 1);
        fire(&rec, "markov.iteration", 2);
        fire(&rec, "sim.round", 1);
        assert_eq!(rec.len("markov.iteration"), 2);
        assert_eq!(rec.len("sim.round"), 1);
        assert_eq!(
            rec.series_names(),
            vec!["markov.iteration".to_owned(), "sim.round".to_owned()]
        );
        let jsonl = rec.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 5, "2 meta + 3 records");
        assert!(lines[0].contains("\"type\":\"series_meta\""));
        assert!(lines[0].contains("\"recorded\":2,\"dropped\":0"));
        assert!(lines[1].contains("\"iter\":1"));
        assert!(lines[2].contains("\"iter\":2"));
        assert!(lines[1].contains("\"trace\":7"));
        for line in &lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        rec.clear();
        assert!(rec.is_empty());
    }

    #[test]
    fn ring_keeps_the_tail_and_counts_drops() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 1..=10 {
            fire(&rec, "markov.iteration", i);
        }
        assert_eq!(rec.len("markov.iteration"), 3);
        let jsonl = rec.to_jsonl();
        assert!(jsonl.contains("\"recorded\":3,\"dropped\":7"));
        // The most recent iterations survive, the head is evicted.
        assert!(jsonl.contains("\"iter\":10"));
        assert!(jsonl.contains("\"iter\":8"));
        assert!(!jsonl.contains("\"iter\":7,"));
    }

    #[test]
    fn trace_filtered_export_separates_interleaved_requests() {
        let rec = FlightRecorder::new();
        for i in 0..4 {
            rec.on_event(&EventInfo {
                span: 1,
                trace: 11,
                name: "markov.iteration",
                fields: &[("iter", Value::U64(i))],
            });
            rec.on_event(&EventInfo {
                span: 2,
                trace: 22,
                name: "markov.iteration",
                fields: &[("iter", Value::U64(100 + i))],
            });
        }
        rec.on_event(&EventInfo {
            span: 2,
            trace: 22,
            name: "sim.round",
            fields: &[("round", Value::U64(1))],
        });
        let a = rec.to_jsonl_for_trace(11);
        assert!(a.contains("\"trace\":11"));
        assert!(!a.contains("\"trace\":22"));
        assert!(!a.contains("sim.round"), "series with no match is omitted");
        assert!(a.contains("\"recorded\":4"));
        let b = rec.to_jsonl_for_trace(22);
        assert!(b.contains("\"iter\":103"));
        assert!(!b.contains("\"iter\":3,"));
        assert!(b.contains("sim.round"));
        // The unfiltered export still sees everything.
        assert_eq!(rec.to_jsonl().lines().count(), 2 + 8 + 1);
    }

    #[test]
    fn timestamps_are_monotone_within_a_series() {
        let rec = FlightRecorder::new();
        for i in 0..50 {
            fire(&rec, "sim.round", i);
        }
        let series = rec.lock();
        let ts: Vec<u64> = series["sim.round"].ring.iter().map(|r| r.t_us).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
