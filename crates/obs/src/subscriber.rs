//! Trace subscribers: the dispatch trait plus the two stock
//! implementations — a JSONL stream writer and an in-memory collector.

use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A borrowed structured field value attached to an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (serialized as `null` when non-finite).
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String slice.
    Str(&'a str),
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value<'_> {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value<'_> {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

/// An owned [`Value`], as stored by [`MemorySubscriber`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

impl OwnedValue {
    /// The value as `u64`, when it is an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OwnedValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`, converting integer variants.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            OwnedValue::F64(v) => Some(*v),
            OwnedValue::U64(v) => Some(*v as f64),
            OwnedValue::I64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as `&str`, when it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            OwnedValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<Value<'_>> for OwnedValue {
    fn from(v: Value<'_>) -> Self {
        match v {
            Value::U64(x) => OwnedValue::U64(x),
            Value::I64(x) => OwnedValue::I64(x),
            Value::F64(x) => OwnedValue::F64(x),
            Value::Bool(x) => OwnedValue::Bool(x),
            Value::Str(x) => OwnedValue::Str(x.to_owned()),
        }
    }
}

/// Identity of a span as dispatched to subscribers.
#[derive(Debug, Clone, Copy)]
pub struct SpanInfo {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Parent span id, 0 for a root span.
    pub parent: u64,
    /// Trace/request id the span belongs to (0 = none) — minted at
    /// solve entry and shared by every span and event of one request.
    pub trace: u64,
    /// Static span name, e.g. `"markov.steady"`.
    pub name: &'static str,
}

/// An event as dispatched to subscribers; fields are borrowed and must
/// be copied out if retained.
#[derive(Debug, Clone, Copy)]
pub struct EventInfo<'a> {
    /// Id of the span the event is attached to (0 = no enclosing span).
    pub span: u64,
    /// Trace/request id the event belongs to (0 = none).
    pub trace: u64,
    /// Event name, e.g. `"markov.iteration"`.
    pub name: &'a str,
    /// Structured fields.
    pub fields: &'a [(&'a str, Value<'a>)],
}

/// Receiver of trace spans and events. Implementations must be cheap
/// and non-blocking where possible: they run inline on solver threads.
pub trait Subscriber: Send + Sync {
    /// A span opened.
    fn on_span_start(&self, span: &SpanInfo);
    /// A span closed, with its measured wall-clock duration.
    fn on_span_end(&self, span: &SpanInfo, duration: Duration);
    /// A structured event fired.
    fn on_event(&self, event: &EventInfo<'_>);
    /// Flush any buffered output (called by `flush_subscribers`).
    fn flush(&self) {}
}

/// JSON string escaping shared with the metrics exposition code.
pub(crate) fn escape_into_for_metrics(out: &mut String, s: &str) {
    escape_json_into(out, s);
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn value_json_into(out: &mut String, v: &Value<'_>) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(x) => {
            let _ = write!(out, "{x}");
        }
        Value::Str(s) => {
            out.push('"');
            escape_json_into(out, s);
            out.push('"');
        }
    }
}

/// Streams the trace as JSON Lines: one object per record, types
/// `span_start`, `span_end` (with `dur_us`), and `event` (with a
/// `fields` object). Timestamps (`t_us`) are microseconds since the
/// subscriber was created.
///
/// Writes are serialized through an internal mutex, so one instance
/// can serve every solver thread. Records from concurrent threads
/// interleave, but each line is written atomically.
pub struct JsonlSubscriber {
    out: Mutex<Box<dyn Write + Send>>,
    epoch: Instant,
}

impl std::fmt::Debug for JsonlSubscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSubscriber").finish_non_exhaustive()
    }
}

impl JsonlSubscriber {
    /// Wraps any writer (a `File`, `Vec<u8>`, `io::sink()`, ...).
    pub fn new<W: Write + Send + 'static>(writer: W) -> Self {
        JsonlSubscriber {
            out: Mutex::new(Box::new(writer)),
            epoch: Instant::now(),
        }
    }

    /// Creates (truncating) a buffered JSONL trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates the `File::create` error.
    pub fn create(path: &str) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(io::BufWriter::new(file)))
    }

    fn write_line(&self, line: &str) {
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // A broken sink must never take the solver down; drop the record.
        let _ = writeln!(out, "{line}");
    }

    fn t_us(&self) -> u128 {
        self.epoch.elapsed().as_micros()
    }
}

/// Appends `,"trace":N` when the record carries a trace id.
fn trace_json_into(line: &mut String, trace: u64) {
    if trace != 0 {
        let _ = write!(line, ",\"trace\":{trace}");
    }
}

impl Subscriber for JsonlSubscriber {
    fn on_span_start(&self, span: &SpanInfo) {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"type\":\"span_start\",\"id\":{},\"parent\":{}",
            span.id, span.parent
        );
        trace_json_into(&mut line, span.trace);
        line.push_str(",\"name\":\"");
        escape_json_into(&mut line, span.name);
        let _ = write!(line, "\",\"t_us\":{}}}", self.t_us());
        self.write_line(&line);
    }

    fn on_span_end(&self, span: &SpanInfo, duration: Duration) {
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"type\":\"span_end\",\"id\":{},\"parent\":{}",
            span.id, span.parent
        );
        trace_json_into(&mut line, span.trace);
        line.push_str(",\"name\":\"");
        escape_json_into(&mut line, span.name);
        let _ = write!(
            line,
            "\",\"t_us\":{},\"dur_us\":{}}}",
            self.t_us(),
            duration.as_micros()
        );
        self.write_line(&line);
    }

    fn on_event(&self, event: &EventInfo<'_>) {
        let mut line = String::with_capacity(128);
        let _ = write!(line, "{{\"type\":\"event\",\"span\":{}", event.span);
        trace_json_into(&mut line, event.trace);
        line.push_str(",\"name\":\"");
        escape_json_into(&mut line, event.name);
        let _ = write!(line, "\",\"t_us\":{},\"fields\":{{", self.t_us());
        for (i, (key, value)) in event.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push('"');
            escape_json_into(&mut line, key);
            line.push_str("\":");
            value_json_into(&mut line, value);
        }
        line.push_str("}}");
        self.write_line(&line);
    }

    fn flush(&self) {
        let mut out = self
            .out
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = out.flush();
    }
}

/// One record captured by [`MemorySubscriber`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A span opened.
    SpanStart {
        /// Span id.
        id: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Span name.
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// Span id.
        id: u64,
        /// Parent span id (0 = root).
        parent: u64,
        /// Span name.
        name: &'static str,
        /// Measured wall-clock duration.
        duration: Duration,
    },
    /// An event fired.
    Event {
        /// Enclosing span id (0 = none).
        span: u64,
        /// Event name.
        name: String,
        /// Copied structured fields.
        fields: Vec<(String, OwnedValue)>,
    },
}

/// Collects the trace in memory — the subscriber tests use to assert
/// on instrumentation without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemorySubscriber {
    records: Mutex<Vec<TraceRecord>>,
}

impl MemorySubscriber {
    /// A snapshot of every record captured so far.
    #[must_use]
    pub fn records(&self) -> Vec<TraceRecord> {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Number of captured events with the given name.
    #[must_use]
    pub fn count_events(&self, name: &str) -> usize {
        self.records()
            .iter()
            .filter(|r| matches!(r, TraceRecord::Event { name: n, .. } if n == name))
            .count()
    }

    /// Number of captured *completed* spans with the given name.
    #[must_use]
    pub fn count_spans(&self, name: &str) -> usize {
        self.records()
            .iter()
            .filter(|r| matches!(r, TraceRecord::SpanEnd { name: n, .. } if *n == name))
            .count()
    }

    /// Discards every captured record.
    pub fn clear(&self) {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }

    fn push(&self, record: TraceRecord) {
        self.records
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }
}

impl Subscriber for MemorySubscriber {
    fn on_span_start(&self, span: &SpanInfo) {
        self.push(TraceRecord::SpanStart {
            id: span.id,
            parent: span.parent,
            name: span.name,
        });
    }

    fn on_span_end(&self, span: &SpanInfo, duration: Duration) {
        self.push(TraceRecord::SpanEnd {
            id: span.id,
            parent: span.parent,
            name: span.name,
            duration,
        });
    }

    fn on_event(&self, event: &EventInfo<'_>) {
        self.push(TraceRecord::Event {
            span: event.span,
            name: event.name.to_owned(),
            fields: event
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), OwnedValue::from(*v)))
                .collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_lines_are_wellformed() {
        let buf = SharedBuf::default();
        let sub = JsonlSubscriber::new(buf.clone());
        sub.on_span_start(&SpanInfo {
            id: 1,
            parent: 0,
            trace: 9,
            name: "outer",
        });
        sub.on_event(&EventInfo {
            span: 1,
            trace: 9,
            name: "weird \"name\"\n",
            fields: &[
                ("iter", Value::U64(3)),
                ("residual", Value::F64(1e-9)),
                ("nan", Value::F64(f64::NAN)),
                ("label", Value::Str("a\\b")),
                ("ok", Value::Bool(true)),
            ],
        });
        sub.on_span_end(
            &SpanInfo {
                id: 1,
                parent: 0,
                trace: 9,
                name: "outer",
            },
            Duration::from_micros(42),
        );
        sub.flush();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"span_start\""));
        assert!(lines[0].contains("\"trace\":9"));
        assert!(lines[1].contains("\"trace\":9"));
        assert!(lines[1].contains("\\\"name\\\"\\n"));
        assert!(lines[1].contains("\"nan\":null"));
        assert!(lines[1].contains("\"label\":\"a\\\\b\""));
        assert!(lines[1].contains("\"ok\":true"));
        assert!(lines[2].contains("\"dur_us\":42"));
        // Each line balances braces/quotes (cheap well-formedness check).
        for line in lines {
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert_eq!(line.matches('"').count() % 2, 0);
        }
    }

    #[test]
    fn memory_subscriber_copies_fields() {
        let mem = MemorySubscriber::default();
        mem.on_event(&EventInfo {
            span: 7,
            trace: 0,
            name: "e",
            fields: &[("k", Value::Str("v"))],
        });
        let records = mem.records();
        match &records[0] {
            TraceRecord::Event { span, name, fields } => {
                assert_eq!(*span, 7);
                assert_eq!(name, "e");
                assert_eq!(fields[0].1.as_str(), Some("v"));
            }
            other => panic!("unexpected record {other:?}"),
        }
        mem.clear();
        assert!(mem.records().is_empty());
    }
}
