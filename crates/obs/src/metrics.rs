//! Lock-striped metrics registry: monotonic counters, gauges, and
//! log-bucketed histograms with quantile estimation, with JSON and
//! Prometheus-text exposition.
//!
//! Series are registered lazily by name. Lookup takes a read lock on
//! one of [`STRIPES`] shards (chosen by name hash) so concurrent
//! solver threads updating different series rarely contend; the
//! returned handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! cheaply cloneable `Arc`s whose updates are plain atomics with no
//! lock at all — cache one per instrumentation site when a name lookup
//! per update would matter.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent shards in a [`Registry`].
const STRIPES: usize = 8;

/// Default histogram bucket upper bounds, in milliseconds:
/// log-spaced at four buckets per decade (ratio ≈ 1.78, bounds rounded
/// to three significant figures) from 1 µs to 10 s, covering solver
/// latencies from microsecond RBD solves to multi-second batch runs
/// with a bounded ~30% relative quantile error per bucket.
pub const DEFAULT_LATENCY_BUCKETS_MS: &[f64] = &[
    0.001, 0.00178, 0.00316, 0.00562, 0.01, 0.0178, 0.0316, 0.0562, 0.1, 0.178, 0.316, 0.562, 1.0,
    1.78, 3.16, 5.62, 10.0, 17.8, 31.6, 56.2, 100.0, 178.0, 316.0, 562.0, 1000.0, 1780.0, 3160.0,
    5620.0, 10000.0,
];

/// Quantiles reported by the JSON and Prometheus expositions.
const EXPOSED_QUANTILES: &[(&str, f64)] = &[("p50", 0.5), ("p90", 0.9), ("p99", 0.99)];

/// Metric exposition format selector, shared by every surface that
/// renders the registry (CLI `--metrics-format`, the daemon's
/// `/metrics` endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExpositionFormat {
    /// Prometheus text exposition (`text/plain; version=0.0.4`).
    #[default]
    Prometheus,
    /// One JSON object with counters/gauges/histograms + quantiles.
    Json,
}

impl ExpositionFormat {
    /// Parses `prometheus`/`prom`/`json` (the CLI flag values and the
    /// `/metrics?format=` query values).
    #[must_use]
    pub fn parse(s: &str) -> Option<ExpositionFormat> {
        match s {
            "prometheus" | "prom" => Some(ExpositionFormat::Prometheus),
            "json" => Some(ExpositionFormat::Json),
            _ => None,
        }
    }

    /// The HTTP `Content-Type` for this exposition.
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            ExpositionFormat::Prometheus => "text/plain; version=0.0.4",
            ExpositionFormat::Json => "application/json",
        }
    }
}

/// Builds log-spaced (geometric) histogram bucket bounds from `min` to
/// `max` inclusive with `per_decade` buckets per factor of ten — the
/// HDR-histogram-style layout whose relative quantile error is bounded
/// by the per-bucket ratio `10^(1/per_decade)` regardless of scale.
///
/// # Panics
///
/// Panics when `min` is not positive and finite, `max <= min`, or
/// `per_decade == 0`.
#[must_use]
pub fn log_buckets(min: f64, max: f64, per_decade: u32) -> Vec<f64> {
    assert!(
        min > 0.0 && min.is_finite(),
        "log_buckets: min must be positive and finite, got {min}"
    );
    assert!(
        max > min && max.is_finite(),
        "log_buckets: max must exceed min, got {max}"
    );
    assert!(per_decade > 0, "log_buckets: per_decade must be positive");
    let ratio = 10f64.powf(1.0 / f64::from(per_decade));
    let mut out = Vec::new();
    let mut k = 0i32;
    loop {
        // Recompute from min each step: no multiplicative drift.
        let bound = min * ratio.powi(k);
        if bound >= max * (1.0 - 1e-9) {
            out.push(max);
            return out;
        }
        out.push(bound);
        k += 1;
    }
}

/// A monotonic counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stores `f64` bits atomically).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Ascending bucket upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut cur = core.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match core.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Estimated `q`-quantile of the recorded distribution (see
    /// [`HistogramSnapshot::quantile`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending; `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one per bound plus the `+Inf` overflow.
    pub counts: Vec<u64>,
    /// Sum of all finite observations.
    pub sum: f64,
    /// Total observation count.
    pub count: u64,
}

impl HistogramSnapshot {
    /// Estimated `q`-quantile by linear interpolation within the
    /// bucket containing the target rank (the same estimator as
    /// Prometheus' `histogram_quantile`): the bucket's lower bound is
    /// the previous bound (0 for the first bucket), and ranks landing
    /// in the `+Inf` overflow bucket clamp to the largest finite
    /// bound. Returns `None` when the histogram is empty or `q` lies
    /// outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            #[allow(clippy::cast_precision_loss)]
            if (cum + c) as f64 >= target {
                if i >= self.bounds.len() {
                    // Overflow bucket has no upper bound to
                    // interpolate against; clamp like Prometheus does.
                    return self.bounds.last().copied();
                }
                let lower = if i == 0 { 0.0 } else { self.bounds[i - 1] };
                let upper = self.bounds[i];
                #[allow(clippy::cast_precision_loss)]
                let frac = ((target - cum as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lower + (upper - lower) * frac);
            }
            cum += c;
        }
        self.bounds.last().copied()
    }
}

/// Point-in-time copy of a whole [`Registry`], with names sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Total number of distinct series across all metric kinds.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }
}

#[derive(Debug, Default)]
struct Stripe {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
}

/// A lock-striped registry of named metric series.
#[derive(Debug)]
pub struct Registry {
    stripes: Vec<Stripe>,
    /// Optional `# HELP` text by series name — exposition-only, so one
    /// un-striped lock is fine (set once at registration, read at
    /// scrape time).
    help: RwLock<HashMap<String, String>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            stripes: (0..STRIPES).map(|_| Stripe::default()).collect(),
            help: RwLock::new(HashMap::new()),
        }
    }

    /// Attaches help text to a series name, emitted as a `# HELP` line
    /// in the Prometheus exposition (escaped per the text format).
    pub fn set_help(&self, name: &str, help: &str) {
        write(&self.help).insert(name.to_owned(), help.to_owned());
    }

    fn stripe(&self, name: &str) -> &Stripe {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.stripes[(h.finish() as usize) % STRIPES]
    }

    /// Returns (registering on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let stripe = self.stripe(name);
        if let Some(c) = read(&stripe.counters).get(name) {
            return c.clone();
        }
        write(&stripe.counters)
            .entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns (registering on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let stripe = self.stripe(name);
        if let Some(g) = read(&stripe.gauges).get(name) {
            return g.clone();
        }
        write(&stripe.gauges)
            .entry(name.to_owned())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
            .clone()
    }

    /// Returns (registering on first use) the named histogram with the
    /// default latency buckets ([`DEFAULT_LATENCY_BUCKETS_MS`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_buckets(name, DEFAULT_LATENCY_BUCKETS_MS)
    }

    /// Returns (registering on first use) the named histogram with
    /// explicit ascending bucket upper bounds. The buckets of an
    /// already-registered histogram are not changed.
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[f64]) -> Histogram {
        let stripe = self.stripe(name);
        if let Some(h) = read(&stripe.histograms).get(name) {
            return h.clone();
        }
        write(&stripe.histograms)
            .entry(name.to_owned())
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                    count: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// Renders every series in the given exposition format — the one
    /// call sites (CLI `--metrics`, the daemon's `/metrics` endpoint)
    /// share so the two front ends can never drift.
    #[must_use]
    pub fn exposition(&self, format: ExpositionFormat) -> String {
        match format {
            ExpositionFormat::Prometheus => self.to_prometheus(),
            ExpositionFormat::Json => self.to_json(),
        }
    }

    /// A consistent-enough point-in-time copy of every series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for stripe in &self.stripes {
            for (name, c) in read(&stripe.counters).iter() {
                snap.counters.insert(name.clone(), c.get());
            }
            for (name, g) in read(&stripe.gauges).iter() {
                snap.gauges.insert(name.clone(), g.get());
            }
            for (name, h) in read(&stripe.histograms).iter() {
                snap.histograms.insert(name.clone(), h.snapshot());
            }
        }
        snap
    }

    /// Serializes every series as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in snap.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in snap.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if value.is_finite() {
                let _ = write!(out, "\"{}\":{}", json_escape(name), value);
            } else {
                let _ = write!(out, "\"{}\":null", json_escape(name));
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in snap.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{{\"buckets\":[", json_escape(name));
            for (j, (&bound, &count)) in h.bounds.iter().zip(&h.counts).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"le\":{bound},\"count\":{count}}}");
            }
            if h.counts.len() > h.bounds.len() {
                if !h.bounds.is_empty() {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"le\":null,\"count\":{}}}",
                    h.counts[h.bounds.len()]
                );
            }
            let finite_sum = if h.sum.is_finite() {
                h.sum.to_string()
            } else {
                "null".to_owned()
            };
            let _ = write!(out, "],\"sum\":{},\"count\":{}", finite_sum, h.count);
            out.push_str(",\"quantiles\":{");
            for (j, &(label, q)) in EXPOSED_QUANTILES.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match h.quantile(q) {
                    Some(v) if v.is_finite() => {
                        let _ = write!(out, "\"{label}\":{v}");
                    }
                    _ => {
                        let _ = write!(out, "\"{label}\":null");
                    }
                }
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }

    /// Serializes every series in the Prometheus text exposition
    /// format (names sanitized to `[a-zA-Z0-9_]`, histograms as
    /// cumulative `_bucket`/`_sum`/`_count` families plus a parallel
    /// `{name}_quantiles` summary family carrying p50/p90/p99, help
    /// text and label values escaped per the spec).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let snap = self.snapshot();
        let help = read(&self.help);
        let help_line = |out: &mut String, name: &str, n: &str| {
            if let Some(h) = help.get(name) {
                let _ = writeln!(out, "# HELP {n} {}", prom_escape_help(h));
            }
        };
        let mut out = String::with_capacity(512);
        for (name, value) in &snap.counters {
            let n = prom_name(name);
            help_line(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &snap.gauges {
            let n = prom_name(name);
            help_line(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &snap.histograms {
            let n = prom_name(name);
            help_line(&mut out, name, &n);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (&bound, &count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let _ = writeln!(
                    out,
                    "{n}_bucket{{le=\"{}\"}} {cumulative}",
                    prom_escape_label(&bound.to_string())
                );
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
            if h.count > 0 {
                let _ = writeln!(out, "# TYPE {n}_quantiles summary");
                for &(_, q) in EXPOSED_QUANTILES {
                    if let Some(v) = h.quantile(q) {
                        let _ = writeln!(
                            out,
                            "{n}_quantiles{{quantile=\"{}\"}} {v}",
                            prom_escape_label(&q.to_string())
                        );
                    }
                }
            }
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    super::subscriber::escape_into_for_metrics(&mut out, s);
    out
}

/// Escapes a Prometheus label value per the text exposition format:
/// backslash, double-quote, and line feed become `\\`, `\"`, `\n`.
fn prom_escape_label(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text per the text exposition format: backslash and
/// line feed become `\\` and `\n` (quotes stay literal outside labels).
fn prom_escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        r.counter("a.count").add(3);
        r.counter("a.count").inc();
        r.gauge("b.gauge").set(1.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a.count"], 4);
        assert_eq!(snap.gauges["b.gauge"], 1.5);
        assert_eq!(snap.series_count(), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus() {
        let r = Registry::new();
        let h = r.histogram_with_buckets("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_count 3"));
        assert!(text.contains("lat_sum 105.5"));
    }

    #[test]
    fn json_exposition_is_balanced_and_complete() {
        let r = Registry::new();
        r.counter("solves").add(2);
        r.gauge("util").set(0.75);
        r.histogram_with_buckets("ms", &[1.0]).observe(0.2);
        let text = r.to_json();
        assert!(text.contains("\"solves\":2"));
        assert!(text.contains("\"util\":0.75"));
        assert!(text.contains("\"le\":null"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prom_name("engine.memo-hits"), "engine_memo_hits");
        assert_eq!(prom_name("0weird"), "_0weird");
    }

    #[test]
    fn handles_are_shared_across_lookups() {
        let r = Registry::new();
        let a = r.counter("shared");
        let b = r.counter("shared");
        a.add(1);
        b.add(1);
        assert_eq!(r.counter("shared").get(), 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    let c = r.counter("contended");
                    let h = r.histogram_with_buckets("contended.ms", &[0.5]);
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.1);
                    }
                });
            }
        });
        assert_eq!(r.counter("contended").get(), 4000);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["contended.ms"].count, 4000);
        assert!((snap.histograms["contended.ms"].sum - 400.0).abs() < 1e-9);
    }

    #[test]
    fn default_buckets_are_ascending() {
        assert!(DEFAULT_LATENCY_BUCKETS_MS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn default_buckets_are_log_spaced() {
        // Four buckets per decade: each bound is ~1.78x the previous
        // (rounded to three significant figures in the const).
        for w in DEFAULT_LATENCY_BUCKETS_MS.windows(2) {
            let ratio = w[1] / w[0];
            assert!(
                (ratio - 10f64.powf(0.25)).abs() < 0.01,
                "ratio {ratio} off log spacing at bound {}",
                w[1]
            );
        }
        assert_eq!(DEFAULT_LATENCY_BUCKETS_MS[0], 0.001);
        assert_eq!(*DEFAULT_LATENCY_BUCKETS_MS.last().unwrap(), 10000.0);
    }

    #[test]
    fn log_buckets_span_min_to_max_geometrically() {
        let b = log_buckets(1.0, 1000.0, 1);
        assert_eq!(b, vec![1.0, 10.0, 100.0, 1000.0]);
        let b = log_buckets(0.5, 50.0, 2);
        assert_eq!(b.first(), Some(&0.5));
        assert_eq!(b.last(), Some(&50.0));
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // Two per decade over two decades: 4 steps + both endpoints.
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "min must be positive")]
    fn log_buckets_reject_nonpositive_min() {
        let _ = log_buckets(0.0, 10.0, 4);
    }

    #[test]
    fn quantiles_are_exact_on_uniform_bucket_fill() {
        // 10 observations per bucket over [0,10], (10,20], (20,30],
        // (30,40] — the interpolated quantiles are exact.
        let r = Registry::new();
        let h = r.histogram_with_buckets("q.uniform", &[10.0, 20.0, 30.0, 40.0]);
        for i in 0..40 {
            h.observe(f64::from(i) + 0.5);
        }
        assert_eq!(h.quantile(0.5), Some(20.0));
        assert_eq!(h.quantile(0.25), Some(10.0));
        assert_eq!(h.quantile(0.9), Some(36.0));
        assert_eq!(h.quantile(1.0), Some(40.0));
        assert_eq!(h.quantile(0.0), Some(0.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let r = Registry::new();
        // Empty histogram: no quantile.
        let empty = r.histogram_with_buckets("q.empty", &[1.0]);
        assert_eq!(empty.quantile(0.5), None);
        // Out-of-range q: no quantile.
        let h = r.histogram_with_buckets("q.edge", &[1.0, 2.0]);
        h.observe(0.5);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        // Single bucket holds everything: interpolation stays inside it.
        let q = h.quantile(0.5).unwrap();
        assert!(q > 0.0 && q <= 1.0, "q={q}");
        // Observation exactly on a bucket boundary counts in that
        // bucket (le semantics): p100 of {2.0} is the 2.0 bound.
        let hb = r.histogram_with_buckets("q.bound", &[1.0, 2.0]);
        hb.observe(2.0);
        assert_eq!(hb.quantile(1.0), Some(2.0));
        // Everything in the +Inf overflow clamps to the last finite bound.
        let ho = r.histogram_with_buckets("q.over", &[1.0, 2.0]);
        ho.observe(100.0);
        assert_eq!(ho.quantile(0.5), Some(2.0));
    }

    #[test]
    fn json_exposition_carries_quantiles() {
        let r = Registry::new();
        let h = r.histogram_with_buckets("lat.q", &[10.0, 20.0]);
        for i in 0..20 {
            h.observe(f64::from(i) + 0.5);
        }
        let text = r.to_json();
        assert!(text.contains("\"quantiles\":{\"p50\":10,\"p90\":18,\"p99\":19.8}"));
        // Empty histograms expose null quantiles, not garbage.
        let r2 = Registry::new();
        r2.histogram_with_buckets("lat.empty", &[1.0]);
        assert!(r2
            .to_json()
            .contains("\"quantiles\":{\"p50\":null,\"p90\":null,\"p99\":null}"));
    }

    #[test]
    fn prometheus_exposes_quantile_summary_family() {
        let r = Registry::new();
        let h = r.histogram_with_buckets("lat", &[10.0, 20.0]);
        for i in 0..20 {
            h.observe(f64::from(i) + 0.5);
        }
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat_quantiles summary"));
        assert!(text.contains("lat_quantiles{quantile=\"0.5\"} 10"));
        assert!(text.contains("lat_quantiles{quantile=\"0.9\"} 18"));
        assert!(text.contains("lat_quantiles{quantile=\"0.99\"} 19.8"));
    }

    #[test]
    fn prometheus_escapes_help_and_labels() {
        assert_eq!(prom_escape_label("a\\b\n\"c\""), "a\\\\b\\n\\\"c\\\"");
        assert_eq!(
            prom_escape_help("back\\slash\nnewline \"q\""),
            "back\\\\slash\\nnewline \"q\""
        );
        let r = Registry::new();
        r.counter("esc").inc();
        r.set_help("esc", "line1\nline2 \\ \"quoted\"");
        let text = r.to_prometheus();
        assert!(text.contains("# HELP esc line1\\nline2 \\\\ \"quoted\""));
        assert!(text.contains("# TYPE esc counter"));
    }
}
