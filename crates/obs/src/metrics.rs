//! Lock-striped metrics registry: monotonic counters, gauges, and
//! fixed-bucket histograms, with JSON and Prometheus-text exposition.
//!
//! Series are registered lazily by name. Lookup takes a read lock on
//! one of [`STRIPES`] shards (chosen by name hash) so concurrent
//! solver threads updating different series rarely contend; the
//! returned handles ([`Counter`], [`Gauge`], [`Histogram`]) are
//! cheaply cloneable `Arc`s whose updates are plain atomics with no
//! lock at all — cache one per instrumentation site when a name lookup
//! per update would matter.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of independent shards in a [`Registry`].
const STRIPES: usize = 8;

/// Default histogram bucket upper bounds, in milliseconds — sized for
/// solver latencies from sub-millisecond RBD solves to multi-second
/// batch runs.
pub const DEFAULT_LATENCY_BUCKETS_MS: &[f64] = &[
    0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
];

/// A monotonic counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `delta` to the counter.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge handle (stores `f64` bits atomically).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Ascending bucket upper bounds; an implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, value: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(core.bounds.len());
        core.counts[idx].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        if value.is_finite() {
            let mut cur = core.sum_bits.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + value).to_bits();
                match core.sum_bits.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.clone(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed)),
            count: self.0.count.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending; `+Inf` bucket is implicit).
    pub bounds: Vec<f64>,
    /// Per-bucket counts, one per bound plus the `+Inf` overflow.
    pub counts: Vec<u64>,
    /// Sum of all finite observations.
    pub sum: f64,
    /// Total observation count.
    pub count: u64,
}

/// Point-in-time copy of a whole [`Registry`], with names sorted.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Total number of distinct series across all metric kinds.
    #[must_use]
    pub fn series_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len()
    }
}

#[derive(Debug, Default)]
struct Stripe {
    counters: RwLock<HashMap<String, Counter>>,
    gauges: RwLock<HashMap<String, Gauge>>,
    histograms: RwLock<HashMap<String, Histogram>>,
}

/// A lock-striped registry of named metric series.
#[derive(Debug)]
pub struct Registry {
    stripes: Vec<Stripe>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

fn read<T>(l: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(l: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            stripes: (0..STRIPES).map(|_| Stripe::default()).collect(),
        }
    }

    fn stripe(&self, name: &str) -> &Stripe {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.stripes[(h.finish() as usize) % STRIPES]
    }

    /// Returns (registering on first use) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let stripe = self.stripe(name);
        if let Some(c) = read(&stripe.counters).get(name) {
            return c.clone();
        }
        write(&stripe.counters)
            .entry(name.to_owned())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns (registering on first use) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let stripe = self.stripe(name);
        if let Some(g) = read(&stripe.gauges).get(name) {
            return g.clone();
        }
        write(&stripe.gauges)
            .entry(name.to_owned())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits()))))
            .clone()
    }

    /// Returns (registering on first use) the named histogram with the
    /// default latency buckets ([`DEFAULT_LATENCY_BUCKETS_MS`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with_buckets(name, DEFAULT_LATENCY_BUCKETS_MS)
    }

    /// Returns (registering on first use) the named histogram with
    /// explicit ascending bucket upper bounds. The buckets of an
    /// already-registered histogram are not changed.
    pub fn histogram_with_buckets(&self, name: &str, bounds: &[f64]) -> Histogram {
        let stripe = self.stripe(name);
        if let Some(h) = read(&stripe.histograms).get(name) {
            return h.clone();
        }
        write(&stripe.histograms)
            .entry(name.to_owned())
            .or_insert_with(|| {
                Histogram(Arc::new(HistogramCore {
                    bounds: bounds.to_vec(),
                    counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                    sum_bits: AtomicU64::new(0.0f64.to_bits()),
                    count: AtomicU64::new(0),
                }))
            })
            .clone()
    }

    /// A consistent-enough point-in-time copy of every series.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for stripe in &self.stripes {
            for (name, c) in read(&stripe.counters).iter() {
                snap.counters.insert(name.clone(), c.get());
            }
            for (name, g) in read(&stripe.gauges).iter() {
                snap.gauges.insert(name.clone(), g.get());
            }
            for (name, h) in read(&stripe.histograms).iter() {
                snap.histograms.insert(name.clone(), h.snapshot());
            }
        }
        snap
    }

    /// Serializes every series as one JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(256);
        out.push_str("{\"counters\":{");
        for (i, (name, value)) in snap.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in snap.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            if value.is_finite() {
                let _ = write!(out, "\"{}\":{}", json_escape(name), value);
            } else {
                let _ = write!(out, "\"{}\":null", json_escape(name));
            }
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in snap.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{{\"buckets\":[", json_escape(name));
            for (j, (&bound, &count)) in h.bounds.iter().zip(&h.counts).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"le\":{bound},\"count\":{count}}}");
            }
            if h.counts.len() > h.bounds.len() {
                if !h.bounds.is_empty() {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"le\":null,\"count\":{}}}",
                    h.counts[h.bounds.len()]
                );
            }
            let finite_sum = if h.sum.is_finite() {
                h.sum.to_string()
            } else {
                "null".to_owned()
            };
            let _ = write!(out, "],\"sum\":{},\"count\":{}}}", finite_sum, h.count);
        }
        out.push_str("}}");
        out
    }

    /// Serializes every series in the Prometheus text exposition
    /// format (names sanitized to `[a-zA-Z0-9_]`, histograms as
    /// cumulative `_bucket`/`_sum`/`_count` families).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::with_capacity(512);
        for (name, value) in &snap.counters {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} counter");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, value) in &snap.gauges {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} gauge");
            let _ = writeln!(out, "{n} {value}");
        }
        for (name, h) in &snap.histograms {
            let n = prom_name(name);
            let _ = writeln!(out, "# TYPE {n} histogram");
            let mut cumulative = 0u64;
            for (&bound, &count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                let _ = writeln!(out, "{n}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{n}_sum {}", h.sum);
            let _ = writeln!(out, "{n}_count {}", h.count);
        }
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    super::subscriber::escape_into_for_metrics(&mut out, s);
    out
}

fn prom_name(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let r = Registry::new();
        r.counter("a.count").add(3);
        r.counter("a.count").inc();
        r.gauge("b.gauge").set(1.5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a.count"], 4);
        assert_eq!(snap.gauges["b.gauge"], 1.5);
        assert_eq!(snap.series_count(), 2);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus() {
        let r = Registry::new();
        let h = r.histogram_with_buckets("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(100.0);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"10\"} 2"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_count 3"));
        assert!(text.contains("lat_sum 105.5"));
    }

    #[test]
    fn json_exposition_is_balanced_and_complete() {
        let r = Registry::new();
        r.counter("solves").add(2);
        r.gauge("util").set(0.75);
        r.histogram_with_buckets("ms", &[1.0]).observe(0.2);
        let text = r.to_json();
        assert!(text.contains("\"solves\":2"));
        assert!(text.contains("\"util\":0.75"));
        assert!(text.contains("\"le\":null"));
        assert_eq!(text.matches('{').count(), text.matches('}').count());
        assert_eq!(text.matches('[').count(), text.matches(']').count());
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prom_name("engine.memo-hits"), "engine_memo_hits");
        assert_eq!(prom_name("0weird"), "_0weird");
    }

    #[test]
    fn handles_are_shared_across_lookups() {
        let r = Registry::new();
        let a = r.counter("shared");
        let b = r.counter("shared");
        a.add(1);
        b.add(1);
        assert_eq!(r.counter("shared").get(), 2);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = Arc::clone(&r);
                scope.spawn(move || {
                    let c = r.counter("contended");
                    let h = r.histogram_with_buckets("contended.ms", &[0.5]);
                    for _ in 0..1000 {
                        c.inc();
                        h.observe(0.1);
                    }
                });
            }
        });
        assert_eq!(r.counter("contended").get(), 4000);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["contended.ms"].count, 4000);
        assert!((snap.histograms["contended.ms"].sum - 400.0).abs() < 1e-9);
    }

    #[test]
    fn default_buckets_are_ascending() {
        assert!(DEFAULT_LATENCY_BUCKETS_MS.windows(2).all(|w| w[0] < w[1]));
    }
}
