//! # reliab-obs
//!
//! Zero-dependency observability layer for the reliab workspace:
//! structured tracing (nested spans and events with pluggable
//! subscribers) plus a lock-striped metrics registry (counters,
//! gauges, fixed-bucket histograms) with JSON and Prometheus-text
//! exposition.
//!
//! ## Design
//!
//! The hot paths of every solver call into this crate, so the
//! disabled path must be near-free:
//!
//! * Tracing is **off by default**. [`span`] and [`event`] first read
//!   one relaxed [`AtomicBool`]; with no subscriber installed they
//!   return immediately — no clock read, no allocation, no lock.
//! * Metrics are **off by default** behind a second flag; the
//!   convenience helpers ([`counter_add`], [`observe_ms`], ...) bail
//!   out the same way.
//!
//! When a subscriber *is* installed (see [`JsonlSubscriber`] for a
//! JSONL trace stream, [`MemorySubscriber`] for tests), spans carry
//! RAII wall-clock timing and parent links, so the emitted stream
//! reconstructs the full call tree:
//!
//! ```
//! use reliab_obs as obs;
//! use std::sync::Arc;
//!
//! let collector = Arc::new(obs::MemorySubscriber::default());
//! obs::install_subscriber(collector.clone());
//! {
//!     let _solve = obs::span("engine.solve");
//!     let _inner = obs::span("markov.steady");
//!     obs::event("markov.iteration", &[("iter", 1u64.into()), ("residual", 1e-9.into())]);
//! }
//! obs::clear_subscribers();
//! assert_eq!(collector.count_spans("markov.steady"), 1);
//! assert_eq!(collector.count_events("markov.iteration"), 1);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod metrics;
mod profile;
mod recorder;
mod subscriber;

pub use metrics::{
    log_buckets, Counter, ExpositionFormat, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot,
    Registry, DEFAULT_LATENCY_BUCKETS_MS,
};
pub use profile::{PhaseProfile, PhaseRow, ProfileSubscriber};
pub use recorder::{FlightRecorder, DEFAULT_RECORDER_CAPACITY};
pub use subscriber::{
    EventInfo, JsonlSubscriber, MemorySubscriber, OwnedValue, SpanInfo, Subscriber, TraceRecord,
    Value,
};

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);
static SUBSCRIBERS: RwLock<Vec<Arc<dyn Subscriber>>> = RwLock::new(Vec::new());

thread_local! {
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

fn read_subs() -> std::sync::RwLockReadGuard<'static, Vec<Arc<dyn Subscriber>>> {
    SUBSCRIBERS
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Whether any trace subscriber is installed. One relaxed atomic load:
/// this is the check every instrumentation site performs first.
#[inline]
#[must_use]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Whether metric recording is enabled (see [`set_metrics_enabled`]).
#[inline]
#[must_use]
pub fn metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed)
}

/// Turns the metric-recording helpers on or off. The registry itself
/// ([`registry`]) always works; this flag only gates the free-function
/// helpers used at instrumentation sites.
pub fn set_metrics_enabled(on: bool) {
    METRICS_ENABLED.store(on, Ordering::Relaxed);
}

/// Installs a trace subscriber. Multiple subscribers may be installed;
/// every span/event is dispatched to each in installation order.
pub fn install_subscriber(sub: Arc<dyn Subscriber>) {
    let mut subs = SUBSCRIBERS
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    subs.push(sub);
    TRACE_ENABLED.store(true, Ordering::Relaxed);
}

/// Removes every installed subscriber and disables tracing.
pub fn clear_subscribers() {
    let mut subs = SUBSCRIBERS
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    subs.clear();
    TRACE_ENABLED.store(false, Ordering::Relaxed);
}

/// Flushes every installed subscriber (e.g. buffered JSONL writers).
/// Call before `std::process::exit`, which skips destructors.
pub fn flush_subscribers() {
    for sub in read_subs().iter() {
        sub.flush();
    }
}

/// The process-global metrics registry.
#[must_use]
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Mints a fresh trace/request id (never 0). Every span and event
/// carries the calling thread's current trace id, so a request-scoped
/// guard ([`set_trace_id`]) stamps the whole solve — including spans on
/// fan-out worker threads once they re-apply the id.
///
/// Ids are unique within a process *and* carry per-process entropy in
/// their upper bits: artifacts keyed by `{trace}` (CLI `--record`, the
/// daemon's per-request recordings) must not clobber each other when
/// two separate processes both count from 1.
#[must_use]
pub fn mint_trace_id() -> u64 {
    static SEED: std::sync::Once = std::sync::Once::new();
    SEED.call_once(|| {
        let pid = u64::from(std::process::id());
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| u64::from(d.subsec_nanos()) ^ d.as_secs());
        let entropy = (pid ^ now.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 40;
        // 24 entropy bits above a 40-bit monotonic counter.
        NEXT_TRACE_ID.store((entropy << 40) | 1, Ordering::Relaxed);
    });
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The calling thread's current trace id (0 = none). Dispatching code
/// reads this before spawning workers and re-applies it inside them via
/// [`set_trace_id`], keeping one request's spans correlated across
/// threads.
#[inline]
#[must_use]
pub fn current_trace_id() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard restoring the previous thread-local trace id on drop.
#[derive(Debug)]
#[must_use = "the trace id is reset when the guard drops; bind it to a `_guard` variable"]
pub struct TraceIdGuard {
    prev: u64,
}

impl Drop for TraceIdGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Sets the calling thread's trace id for the lifetime of the guard.
#[inline]
pub fn set_trace_id(id: u64) -> TraceIdGuard {
    let prev = CURRENT_TRACE.with(|c| c.replace(id));
    TraceIdGuard { prev }
}

/// Ensures the calling thread has a trace id: mints and installs a
/// fresh one if none is set, no-ops (keeping the ambient id) otherwise.
/// Solve entry points call this so nested sub-solves — hierarchy
/// submodels, uncertainty inner models — stay stamped with the id of
/// the request that triggered them. Near-free when tracing is disabled:
/// one relaxed load, no mint.
#[inline]
pub fn ensure_trace_id() -> Option<TraceIdGuard> {
    if !trace_enabled() || current_trace_id() != 0 {
        return None;
    }
    Some(set_trace_id(mint_trace_id()))
}

/// Increments the named global counter by `delta` when metrics are
/// enabled; no-op (one relaxed load) otherwise.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if metrics_enabled() {
        registry().counter(name).add(delta);
    }
}

/// Sets the named global gauge when metrics are enabled.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if metrics_enabled() {
        registry().gauge(name).set(value);
    }
}

/// Records a latency observation (milliseconds) into the named global
/// histogram (default latency buckets) when metrics are enabled.
#[inline]
pub fn observe_ms(name: &str, value_ms: f64) {
    if metrics_enabled() {
        registry().histogram(name).observe(value_ms);
    }
}

/// An RAII span guard: created by [`span`], reports its wall-clock
/// duration to every subscriber when dropped. When tracing is disabled
/// the guard is inert and construction touches no clock or lock.
#[must_use = "a span measures the scope it is bound to; bind it to a `_guard` variable"]
#[derive(Debug)]
pub struct Span(Option<ActiveSpan>);

#[derive(Debug)]
struct ActiveSpan {
    id: u64,
    /// Parent span reported to subscribers.
    parent: u64,
    /// Thread-local current-span value to restore on drop (equals
    /// `parent` unless the span was re-parented across threads).
    prev: u64,
    /// Trace/request id the span was opened under (0 = none).
    trace: u64,
    name: &'static str,
    start: Instant,
}

impl Span {
    /// The span's id, usable to re-parent spans across threads via
    /// [`span_with_parent`]. Returns 0 for an inert (disabled) span.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.0.as_ref().map_or(0, |a| a.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.0.take() {
            CURRENT_SPAN.with(|c| c.set(a.prev));
            let duration = a.start.elapsed();
            let info = SpanInfo {
                id: a.id,
                parent: a.parent,
                trace: a.trace,
                name: a.name,
            };
            for sub in read_subs().iter() {
                sub.on_span_end(&info, duration);
            }
        }
    }
}

/// Opens a span nested under the calling thread's current span.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !trace_enabled() {
        return Span(None);
    }
    let parent = CURRENT_SPAN.with(Cell::get);
    enter(name, parent, parent)
}

/// Opens a span under an explicit parent id — the cross-thread variant
/// used when work fans out to a pool but should stay nested under the
/// dispatching span (pass `parent = 0` for a root span).
#[inline]
pub fn span_with_parent(name: &'static str, parent: u64) -> Span {
    if !trace_enabled() {
        return Span(None);
    }
    let prev = CURRENT_SPAN.with(Cell::get);
    enter(name, parent, prev)
}

fn enter(name: &'static str, parent: u64, prev: u64) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    CURRENT_SPAN.with(|c| c.set(id));
    let trace = current_trace_id();
    let info = SpanInfo {
        id,
        parent,
        trace,
        name,
    };
    for sub in read_subs().iter() {
        sub.on_span_start(&info);
    }
    Span(Some(ActiveSpan {
        id,
        parent,
        prev,
        trace,
        name,
        start: Instant::now(),
    }))
}

/// Emits a structured event attached to the calling thread's current
/// span. No-op (one relaxed load) when tracing is disabled.
#[inline]
pub fn event(name: &str, fields: &[(&str, Value<'_>)]) {
    if !trace_enabled() {
        return;
    }
    let info = EventInfo {
        span: CURRENT_SPAN.with(Cell::get),
        trace: current_trace_id(),
        name,
        fields,
    };
    for sub in read_subs().iter() {
        sub.on_event(&info);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Tracing state is process-global; serialize the tests that
    /// install subscribers.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = locked();
        clear_subscribers();
        let s = span("noop");
        assert_eq!(s.id(), 0);
        event("nothing", &[("x", 1u64.into())]);
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let _guard = locked();
        let mem = Arc::new(MemorySubscriber::default());
        install_subscriber(mem.clone());
        {
            let outer = span("outer");
            let outer_id = outer.id();
            assert!(outer_id > 0);
            {
                let _inner = span("inner");
                event("tick", &[("n", 3u64.into())]);
            }
            // Inner restored the current span.
            event("outer-tick", &[]);
            drop(outer);
            let records = mem.records();
            let inner_start = records
                .iter()
                .find_map(|r| match r {
                    TraceRecord::SpanStart { id, parent, name } if *name == "inner" => {
                        Some((*id, *parent))
                    }
                    _ => None,
                })
                .expect("inner span recorded");
            assert_eq!(inner_start.1, outer_id, "inner nests under outer");
            let tick_span = records
                .iter()
                .find_map(|r| match r {
                    TraceRecord::Event { span, name, .. } if name == "tick" => Some(*span),
                    _ => None,
                })
                .expect("tick event recorded");
            assert_eq!(tick_span, inner_start.0, "event attaches to inner span");
            let outer_tick = records
                .iter()
                .find_map(|r| match r {
                    TraceRecord::Event { span, name, .. } if name == "outer-tick" => Some(*span),
                    _ => None,
                })
                .unwrap();
            assert_eq!(outer_tick, outer_id);
        }
        clear_subscribers();
        assert_eq!(mem.count_spans("outer"), 1);
        assert_eq!(mem.count_spans("inner"), 1);
    }

    #[test]
    fn cross_thread_reparenting() {
        let _guard = locked();
        let mem = Arc::new(MemorySubscriber::default());
        install_subscriber(mem.clone());
        let batch = span("batch");
        let batch_id = batch.id();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _worker = span_with_parent("worker", batch_id);
            });
        });
        drop(batch);
        clear_subscribers();
        let records = mem.records();
        let worker_parent = records
            .iter()
            .find_map(|r| match r {
                TraceRecord::SpanStart { parent, name, .. } if *name == "worker" => Some(*parent),
                _ => None,
            })
            .unwrap();
        assert_eq!(worker_parent, batch_id);
    }

    #[test]
    fn multiple_subscribers_both_receive() {
        let _guard = locked();
        let a = Arc::new(MemorySubscriber::default());
        let b = Arc::new(MemorySubscriber::default());
        install_subscriber(a.clone());
        install_subscriber(b.clone());
        event("broadcast", &[]);
        clear_subscribers();
        assert_eq!(a.count_events("broadcast"), 1);
        assert_eq!(b.count_events("broadcast"), 1);
    }

    #[test]
    fn metric_helpers_respect_the_flag() {
        let _guard = locked();
        set_metrics_enabled(false);
        counter_add("obs.test.flagged", 5);
        assert_eq!(
            registry().snapshot().counters.get("obs.test.flagged"),
            None,
            "disabled helpers must not create series"
        );
        set_metrics_enabled(true);
        counter_add("obs.test.flagged", 5);
        gauge_set("obs.test.gauge", 2.5);
        observe_ms("obs.test.latency", 1.0);
        set_metrics_enabled(false);
        let snap = registry().snapshot();
        assert_eq!(snap.counters.get("obs.test.flagged"), Some(&5));
        assert_eq!(snap.gauges.get("obs.test.gauge"), Some(&2.5));
        assert_eq!(snap.histograms.get("obs.test.latency").unwrap().count, 1);
    }
}
