//! Phase profiler: a [`Subscriber`] that aggregates the span tree
//! into a per-phase wall-time profile and exports the raw spans in
//! the Chrome trace event format (`chrome://tracing`, Perfetto).
//!
//! The profiler keeps one completed-span record per span (bounded by
//! the solve's span count, not its event volume) and derives:
//!
//! * **total time** — wall time between span open and close;
//! * **self time** — total minus the summed totals of direct
//!   children, i.e. time actually spent in that phase's own code;
//! * **call count** — completed spans per phase name.
//!
//! Chrome-trace export emits a balanced `B`/`E` pair per completed
//! span — both sides are emitted together at span end, so the output
//! can never contain an unmatched begin.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::subscriber::{escape_into_for_metrics as escape_json_into, EventInfo, SpanInfo};
use crate::Subscriber;

/// Stable small integer identifying the calling thread in trace
/// exports (`std::thread::ThreadId` has no stable numeric accessor).
fn thread_lane() -> u64 {
    static NEXT_LANE: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static LANE: u64 = NEXT_LANE.fetch_add(1, Ordering::Relaxed);
    }
    LANE.with(|l| *l)
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    start_us: u64,
    start_seq: u64,
}

#[derive(Debug, Clone)]
struct SpanRecord {
    name: &'static str,
    id: u64,
    parent: u64,
    trace: u64,
    tid: u64,
    start_us: u64,
    /// Epoch-clock time at span end. Deliberately *not*
    /// `start_us + dur_us`: the duration comes from the span's own
    /// `Instant`, started slightly after `start_us` was sampled, and
    /// that per-span skew can make a parent's reconstructed end sort
    /// before its child's. Sampling both endpoints from the same
    /// epoch clock keeps per-thread begin/end events stack-ordered.
    end_us: u64,
    dur_us: u64,
    self_us: u64,
    start_seq: u64,
    end_seq: u64,
}

#[derive(Debug, Default)]
struct ProfileState {
    /// Spans opened but not yet closed, by span id.
    open: HashMap<u64, OpenSpan>,
    /// Summed child wall time per *open* parent span id, consumed
    /// when the parent closes to compute its self time.
    child_us: HashMap<u64, u64>,
    /// Completed spans in end order.
    records: Vec<SpanRecord>,
    /// Monotone tie-breaker so equal-microsecond timestamps still
    /// sort in dispatch order (keeps `B`/`E` nesting valid).
    seq: u64,
}

/// One aggregated profile row (a span name = a solver phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Span name, e.g. `"markov.steady"`.
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Summed wall time, including child spans (µs).
    pub total_us: u64,
    /// Summed wall time excluding direct children (µs).
    pub self_us: u64,
}

/// A per-solve profile: one row per phase, hottest self-time first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    /// Aggregated rows, sorted by descending self time.
    pub rows: Vec<PhaseRow>,
}

impl PhaseProfile {
    /// Serializes the profile as a JSON array of row objects, e.g.
    /// `[{"name":"engine.solve","count":1,"total_us":42,"self_us":7}]`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 64 * self.rows.len());
        out.push('[');
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(&mut out, &row.name);
            let _ = write!(
                out,
                "\",\"count\":{},\"total_us\":{},\"self_us\":{}}}",
                row.count, row.total_us, row.self_us
            );
        }
        out.push(']');
        out
    }
}

/// A [`Subscriber`] that records completed spans for phase
/// aggregation ([`ProfileSubscriber::profile`]) and Chrome-trace
/// export ([`ProfileSubscriber::to_chrome_trace`]). Events are
/// ignored — the flight recorder handles those.
#[derive(Debug)]
pub struct ProfileSubscriber {
    epoch: Instant,
    state: Mutex<ProfileState>,
}

impl Default for ProfileSubscriber {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfileSubscriber {
    /// An empty profiler; timestamps are relative to this call.
    #[must_use]
    pub fn new() -> Self {
        ProfileSubscriber {
            epoch: Instant::now(),
            state: Mutex::new(ProfileState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ProfileState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[allow(clippy::cast_possible_truncation)]
    fn t_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Number of completed spans recorded so far.
    #[must_use]
    pub fn span_count(&self) -> usize {
        self.lock().records.len()
    }

    /// Aggregates the completed spans into a per-phase profile,
    /// sorted by descending self time (count as tie-breaker).
    #[must_use]
    pub fn profile(&self) -> PhaseProfile {
        let state = self.lock();
        let mut by_name: HashMap<&'static str, PhaseRow> = HashMap::new();
        for r in &state.records {
            let row = by_name.entry(r.name).or_insert_with(|| PhaseRow {
                name: r.name.to_owned(),
                count: 0,
                total_us: 0,
                self_us: 0,
            });
            row.count += 1;
            row.total_us += r.dur_us;
            row.self_us += r.self_us;
        }
        let mut rows: Vec<PhaseRow> = by_name.into_values().collect();
        rows.sort_by(|a, b| {
            b.self_us
                .cmp(&a.self_us)
                .then(b.count.cmp(&a.count))
                .then(a.name.cmp(&b.name))
        });
        PhaseProfile { rows }
    }

    /// Exports every completed span as Chrome trace events (JSON
    /// object format, `traceEvents` array of `B`/`E` pairs with
    /// microsecond timestamps) — loadable in `chrome://tracing` and
    /// Perfetto. Pairs are balanced by construction; still-open spans
    /// are omitted. Span id and trace id ride along in `args`.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        struct Ev<'a> {
            ts: u64,
            seq: u64,
            ph: char,
            r: &'a SpanRecord,
        }
        let state = self.lock();
        let mut events: Vec<Ev<'_>> = Vec::with_capacity(2 * state.records.len());
        for r in &state.records {
            events.push(Ev {
                ts: r.start_us,
                seq: r.start_seq,
                ph: 'B',
                r,
            });
            events.push(Ev {
                ts: r.end_us,
                seq: r.end_seq,
                ph: 'E',
                r,
            });
        }
        events.sort_by_key(|e| (e.ts, e.seq));
        let mut out = String::with_capacity(64 + 128 * events.len());
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(&mut out, e.r.name);
            let _ = write!(
                out,
                "\",\"cat\":\"span\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"span\":{},\"parent\":{},\"trace\":{}}}}}",
                e.ph, e.ts, e.r.tid, e.r.id, e.r.parent, e.r.trace
            );
        }
        out.push_str("]}");
        out
    }
}

impl Subscriber for ProfileSubscriber {
    fn on_span_start(&self, span: &SpanInfo) {
        let t = self.t_us();
        let mut state = self.lock();
        state.seq += 1;
        let seq = state.seq;
        state.open.insert(
            span.id,
            OpenSpan {
                start_us: t,
                start_seq: seq,
            },
        );
    }

    fn on_span_end(&self, span: &SpanInfo, duration: Duration) {
        let t = self.t_us();
        #[allow(clippy::cast_possible_truncation)]
        let dur_us = duration.as_micros() as u64;
        let tid = thread_lane();
        let mut state = self.lock();
        let Some(open) = state.open.remove(&span.id) else {
            return; // started before this subscriber was installed
        };
        state.seq += 1;
        let end_seq = state.seq;
        let child_us = state.child_us.remove(&span.id).unwrap_or(0);
        if span.parent != 0 {
            *state.child_us.entry(span.parent).or_insert(0) += dur_us;
        }
        state.records.push(SpanRecord {
            name: span.name,
            id: span.id,
            parent: span.parent,
            trace: span.trace,
            tid,
            start_us: open.start_us,
            end_us: t.max(open.start_us),
            dur_us,
            self_us: dur_us.saturating_sub(child_us),
            start_seq: open.start_seq,
            end_seq,
        });
    }

    fn on_event(&self, _event: &EventInfo<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn end(p: &ProfileSubscriber, id: u64, parent: u64, name: &'static str, us: u64) {
        p.on_span_end(
            &SpanInfo {
                id,
                parent,
                trace: 1,
                name,
            },
            Duration::from_micros(us),
        );
    }

    fn start(p: &ProfileSubscriber, id: u64, parent: u64, name: &'static str) {
        p.on_span_start(&SpanInfo {
            id,
            parent,
            trace: 1,
            name,
        });
    }

    #[test]
    fn self_time_excludes_direct_children() {
        let p = ProfileSubscriber::new();
        start(&p, 1, 0, "solve");
        start(&p, 2, 1, "build");
        end(&p, 2, 1, "build", 30);
        start(&p, 3, 1, "steady");
        end(&p, 3, 1, "steady", 50);
        end(&p, 1, 0, "solve", 100);
        let profile = p.profile();
        let row = |n: &str| profile.rows.iter().find(|r| r.name == n).unwrap();
        assert_eq!(row("solve").total_us, 100);
        assert_eq!(row("solve").self_us, 20);
        assert_eq!(row("build").self_us, 30);
        assert_eq!(row("steady").self_us, 50);
        // Hottest self time first.
        assert_eq!(profile.rows[0].name, "steady");
    }

    #[test]
    fn repeated_phases_aggregate_counts() {
        let p = ProfileSubscriber::new();
        for id in 1..=3u64 {
            start(&p, id, 0, "markov.matvec");
            end(&p, id, 0, "markov.matvec", 10);
        }
        let profile = p.profile();
        assert_eq!(profile.rows.len(), 1);
        assert_eq!(profile.rows[0].count, 3);
        assert_eq!(profile.rows[0].total_us, 30);
        let json = profile.to_json();
        assert!(json.contains("\"name\":\"markov.matvec\""));
        assert!(json.contains("\"count\":3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn chrome_trace_pairs_are_balanced_and_ordered() {
        let p = ProfileSubscriber::new();
        start(&p, 1, 0, "outer");
        start(&p, 2, 1, "inner");
        end(&p, 2, 1, "inner", 5);
        end(&p, 1, 0, "outer", 9);
        // A span left open must not emit an unmatched B.
        start(&p, 3, 0, "dangling");
        let trace = p.to_chrome_trace();
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert_eq!(trace.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(trace.matches("\"ph\":\"E\"").count(), 2);
        assert!(!trace.contains("dangling"));
        // Even with all-equal timestamps, the seq tie-breaker keeps
        // stack order: B(outer) B(inner) E(inner) E(outer).
        let b_outer = trace.find("\"ph\":\"B\",\"ts\":").unwrap();
        let order: Vec<usize> = ["outer", "inner"]
            .iter()
            .map(|n| trace.find(&format!("\"name\":\"{n}\"")).unwrap())
            .collect();
        assert!(order[0] < order[1], "outer B precedes inner B");
        assert!(b_outer > 0);
    }

    #[test]
    fn end_without_start_is_ignored() {
        let p = ProfileSubscriber::new();
        end(&p, 99, 0, "orphan", 5);
        assert_eq!(p.span_count(), 0);
        assert!(p.profile().rows.is_empty());
    }
}
