//! # reliab-semimarkov
//!
//! Models with non-exponential sojourn times, the tutorial's answer to
//! "what if the holding times are not memoryless?":
//!
//! * [`SemiMarkov`] — semi-Markov processes with arbitrary sojourn-time
//!   distributions and an embedded DTMC; steady-state probabilities via
//!   the embedded-chain + mean-sojourn formula, mean first-passage
//!   times via the Markov-renewal equations.
//! * [`renewal`] — renewal-reward / Markov-regenerative analysis of
//!   maintenance policies: age-replacement availability and cost-rate,
//!   and the software-rejuvenation optimum (deterministic inspection or
//!   rejuvenation clocks racing an aging failure distribution). These
//!   are the two-state MRGPs the tutorial solves for IBM's software
//!   rejuvenation story.
//!
//! ```
//! use reliab_semimarkov::SemiMarkovBuilder;
//! use reliab_dist::{Deterministic, Exponential};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // Machine alternates: up (mean 9h, exponential) / down (exactly 1h).
//! let mut b = SemiMarkovBuilder::new();
//! let up = b.state("up", Box::new(Exponential::from_mean(9.0)?));
//! let down = b.state("down", Box::new(Deterministic::new(1.0)?));
//! b.transition(up, down, 1.0)?;
//! b.transition(down, up, 1.0)?;
//! let smp = b.build()?;
//! let pi = smp.steady_state()?;
//! assert!((pi[up.index()] - 0.9).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod expand;
pub mod renewal;
mod smp;

pub use expand::ExpandedCtmc;
pub use smp::{SemiMarkov, SemiMarkovBuilder, SmpStateId};
