//! Semi-Markov processes: embedded DTMC + general sojourn times.

use reliab_core::{ensure_probability, Error, Result};
use reliab_dist::Lifetime;
use reliab_numeric::DenseMatrix;

/// Handle to a semi-Markov state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SmpStateId(usize);

impl SmpStateId {
    /// Index into solution vectors.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds a handle from an index (must come from the same
    /// process; used by the phase-type expansion and by callers that
    /// iterate over `0..num_states()`).
    pub fn from_index(i: usize) -> SmpStateId {
        SmpStateId(i)
    }
}

/// Builder for [`SemiMarkov`] processes.
///
/// This implements the "simple" semi-Markov kernel used throughout the
/// tutorial: the sojourn time in a state is drawn from that state's
/// distribution independent of the successor, and the successor is
/// chosen by the embedded DTMC probabilities.
pub struct SemiMarkovBuilder {
    names: Vec<String>,
    sojourns: Vec<Box<dyn Lifetime>>,
    probs: Vec<(usize, usize, f64)>,
}

impl std::fmt::Debug for SemiMarkovBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemiMarkovBuilder")
            .field("states", &self.names)
            .field("transitions", &self.probs.len())
            .finish()
    }
}

impl Default for SemiMarkovBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SemiMarkovBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SemiMarkovBuilder {
            names: Vec::new(),
            sojourns: Vec::new(),
            probs: Vec::new(),
        }
    }

    /// Adds a state with its sojourn-time distribution.
    pub fn state(&mut self, name: &str, sojourn: Box<dyn Lifetime>) -> SmpStateId {
        self.names.push(name.to_owned());
        self.sojourns.push(sojourn);
        SmpStateId(self.names.len() - 1)
    }

    /// Adds an embedded transition probability.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for probabilities outside
    /// `[0, 1]` or [`Error::Model`] for self-loops / foreign handles.
    pub fn transition(&mut self, from: SmpStateId, to: SmpStateId, p: f64) -> Result<&mut Self> {
        ensure_probability(p, "embedded transition probability")?;
        if from == to {
            return Err(Error::model(
                "self-loop in the embedded chain: fold it into the sojourn distribution instead",
            ));
        }
        if from.0 >= self.names.len() || to.0 >= self.names.len() {
            return Err(Error::model("state handle from another builder"));
        }
        if p > 0.0 {
            self.probs.push((from.0, to.0, p));
        }
        Ok(self)
    }

    /// Finalizes the process.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if any state's outgoing probabilities
    /// do not sum to 1 (within `1e-9`) or the process is empty.
    pub fn build(self) -> Result<SemiMarkov> {
        let n = self.names.len();
        if n == 0 {
            return Err(Error::model("semi-Markov process has no states"));
        }
        let mut row_sums = vec![0.0f64; n];
        for &(f, _, p) in &self.probs {
            row_sums[f] += p;
        }
        for (i, &s) in row_sums.iter().enumerate() {
            if (s - 1.0).abs() > 1e-9 {
                return Err(Error::model(format!(
                    "embedded probabilities out of state '{}' sum to {s}, expected 1",
                    self.names[i]
                )));
            }
        }
        Ok(SemiMarkov {
            names: self.names,
            sojourns: self.sojourns,
            probs: self.probs,
        })
    }
}

/// A semi-Markov process; see [`SemiMarkovBuilder`].
pub struct SemiMarkov {
    names: Vec<String>,
    sojourns: Vec<Box<dyn Lifetime>>,
    probs: Vec<(usize, usize, f64)>,
}

impl std::fmt::Debug for SemiMarkov {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SemiMarkov")
            .field("states", &self.names)
            .field("transitions", &self.probs.len())
            .finish()
    }
}

impl SemiMarkov {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.names.len()
    }

    /// Name of a state.
    pub fn state_name(&self, s: SmpStateId) -> &str {
        &self.names[s.0]
    }

    /// Mean sojourn time of each state.
    pub fn mean_sojourns(&self) -> Vec<f64> {
        self.sojourns.iter().map(|d| d.mean()).collect()
    }

    /// The sojourn-time distribution of a state.
    ///
    /// # Panics
    ///
    /// Panics on a foreign handle.
    pub fn sojourn(&self, s: SmpStateId) -> &dyn Lifetime {
        self.sojourns[s.0].as_ref()
    }

    /// Iterates over `(successor, probability)` pairs of the embedded
    /// chain out of `s`.
    pub fn successors(&self, s: SmpStateId) -> impl Iterator<Item = (SmpStateId, f64)> + '_ {
        self.probs
            .iter()
            .filter(move |&&(f, _, _)| f == s.0)
            .map(|&(_, t, p)| (SmpStateId(t), p))
    }

    /// Stationary distribution of the embedded DTMC.
    fn embedded_steady_state(&self) -> Result<Vec<f64>> {
        let n = self.num_states();
        // GTH on P - I (off-diagonal entries only).
        let mut q = DenseMatrix::zeros(n, n);
        for &(f, t, p) in &self.probs {
            q.add_to(f, t, p);
        }
        reliab_numeric::gth_steady_state(&q).map_err(|e| Error::numerical(e.to_string()))
    }

    /// Long-run fraction of time in each state:
    /// `p_i = ν_i h_i / Σ_j ν_j h_j`, with `ν` the embedded stationary
    /// vector and `h` the mean sojourns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Numerical`] for reducible embedded chains or
    /// degenerate sojourn means.
    pub fn steady_state(&self) -> Result<Vec<f64>> {
        let nu = self.embedded_steady_state()?;
        let h = self.mean_sojourns();
        let mut weighted: Vec<f64> = nu.iter().zip(&h).map(|(a, b)| a * b).collect();
        let total: f64 = weighted.iter().sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(Error::numerical(format!(
                "total weighted sojourn {total} is not positive"
            )));
        }
        for w in &mut weighted {
            *w /= total;
        }
        Ok(weighted)
    }

    /// Mean recurrence time of a state: the expected time between
    /// successive entries into `s`.
    ///
    /// # Errors
    ///
    /// Propagates steady-state errors.
    pub fn mean_recurrence_time(&self, s: SmpStateId) -> Result<f64> {
        let nu = self.embedded_steady_state()?;
        let h = self.mean_sojourns();
        let total: f64 = nu.iter().zip(&h).map(|(a, b)| a * b).sum();
        if nu[s.0] <= 0.0 {
            return Err(Error::numerical(format!(
                "state '{}' has zero embedded stationary probability",
                self.names[s.0]
            )));
        }
        Ok(total / nu[s.0])
    }

    /// Mean first-passage time from `from` into any of `targets`,
    /// solving the Markov-renewal equations
    /// `m_i = h_i + Σ_{j ∉ T} P_ij m_j`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for empty/invalid targets;
    /// [`Error::Numerical`] if targets are unreachable.
    pub fn mean_first_passage(&self, from: SmpStateId, targets: &[SmpStateId]) -> Result<f64> {
        if targets.is_empty() {
            return Err(Error::invalid("target state set is empty"));
        }
        let n = self.num_states();
        let mut is_target = vec![false; n];
        for t in targets {
            if t.0 >= n {
                return Err(Error::invalid("target state handle out of range"));
            }
            is_target[t.0] = true;
        }
        if is_target[from.0] {
            return Ok(0.0);
        }
        let transient: Vec<usize> = (0..n).filter(|&i| !is_target[i]).collect();
        let mut compact = vec![usize::MAX; n];
        for (c, &s) in transient.iter().enumerate() {
            compact[s] = c;
        }
        let m = transient.len();
        // (I - P_TT) x = h_T
        let mut a = DenseMatrix::identity(m);
        for &(f, t, p) in &self.probs {
            if !is_target[f] && !is_target[t] {
                a.add_to(compact[f], compact[t], -p);
            }
        }
        let h: Vec<f64> = transient.iter().map(|&s| self.sojourns[s].mean()).collect();
        let x = a.lu_solve(&h).map_err(|e| {
            Error::numerical(format!(
                "first-passage system is singular (targets unreachable?): {e}"
            ))
        })?;
        let v = x[compact[from.0]];
        if !v.is_finite() || v < 0.0 {
            return Err(Error::numerical(format!(
                "first-passage time computed as {v}; targets may be unreachable"
            )));
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::{Deterministic, Exponential, LogNormal, Weibull};

    #[test]
    fn alternating_renewal_availability() {
        // Exponential up (mean 99), lognormal down (mean 1):
        // availability = 99/100 regardless of distribution shape.
        let mut b = SemiMarkovBuilder::new();
        let up = b.state("up", Box::new(Exponential::from_mean(99.0).unwrap()));
        let down = b.state(
            "down",
            Box::new(LogNormal::from_mean_cv2(1.0, 4.0).unwrap()),
        );
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 1.0).unwrap();
        let smp = b.build().unwrap();
        let pi = smp.steady_state().unwrap();
        assert!((pi[0] - 0.99).abs() < 1e-9);
    }

    #[test]
    fn three_state_cycle() {
        // Cycle a -> b -> c -> a with sojourn means 1, 2, 3:
        // time-stationary = (1/6, 2/6, 3/6).
        let mut b = SemiMarkovBuilder::new();
        let a = b.state("a", Box::new(Deterministic::new(1.0).unwrap()));
        let bb = b.state("b", Box::new(Exponential::from_mean(2.0).unwrap()));
        let c = b.state("c", Box::new(Weibull::new(1.0, 3.0).unwrap()));
        b.transition(a, bb, 1.0).unwrap();
        b.transition(bb, c, 1.0).unwrap();
        b.transition(c, a, 1.0).unwrap();
        let smp = b.build().unwrap();
        let pi = smp.steady_state().unwrap();
        assert!((pi[0] - 1.0 / 6.0).abs() < 1e-9);
        assert!((pi[1] - 2.0 / 6.0).abs() < 1e-9);
        assert!((pi[2] - 3.0 / 6.0).abs() < 1e-9);
        // Mean recurrence of a = total cycle time 6.
        assert!((smp.mean_recurrence_time(a).unwrap() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn branching_first_passage() {
        // a -> b (0.5) or c (0.5); b -> dead; c -> a. Sojourns all det 1.
        let mut b = SemiMarkovBuilder::new();
        let a = b.state("a", Box::new(Deterministic::new(1.0).unwrap()));
        let bb = b.state("b", Box::new(Deterministic::new(1.0).unwrap()));
        let c = b.state("c", Box::new(Deterministic::new(1.0).unwrap()));
        let dead = b.state("dead", Box::new(Deterministic::new(1.0).unwrap()));
        b.transition(a, bb, 0.5).unwrap();
        b.transition(a, c, 0.5).unwrap();
        b.transition(bb, dead, 1.0).unwrap();
        b.transition(c, a, 1.0).unwrap();
        b.transition(dead, a, 1.0).unwrap(); // make chain closed
        let smp = b.build().unwrap();
        // m_a = 1 + 0.5 m_b + 0.5 m_c; m_b = 1; m_c = 1 + m_a
        // => m_a = 1 + 0.5 + 0.5 + 0.5 m_a => m_a = 4.
        let m = smp.mean_first_passage(a, &[dead]).unwrap();
        assert!((m - 4.0).abs() < 1e-9, "{m}");
        assert_eq!(smp.mean_first_passage(dead, &[dead]).unwrap(), 0.0);
    }

    #[test]
    fn builder_validation() {
        let mut b = SemiMarkovBuilder::new();
        let a = b.state("a", Box::new(Deterministic::new(1.0).unwrap()));
        assert!(b.transition(a, a, 1.0).is_err());
        let bb = b.state("b", Box::new(Deterministic::new(1.0).unwrap()));
        assert!(b.transition(a, bb, 1.5).is_err());
        b.transition(a, bb, 0.5).unwrap();
        // Row sums to 0.5, not 1: build fails.
        assert!(b.build().is_err());
        assert!(SemiMarkovBuilder::new().build().is_err());
    }

    #[test]
    fn unreachable_target_reported() {
        let mut b = SemiMarkovBuilder::new();
        let a = b.state("a", Box::new(Deterministic::new(1.0).unwrap()));
        let bb = b.state("b", Box::new(Deterministic::new(1.0).unwrap()));
        let island = b.state("island", Box::new(Deterministic::new(1.0).unwrap()));
        b.transition(a, bb, 1.0).unwrap();
        b.transition(bb, a, 1.0).unwrap();
        b.transition(island, a, 1.0).unwrap();
        let smp = b.build().unwrap();
        assert!(smp.mean_first_passage(a, &[island]).is_err());
        assert!(smp.mean_first_passage(a, &[]).is_err());
    }

    #[test]
    fn exponential_sojourns_reduce_to_ctmc() {
        // With exponential sojourns the SMP equals the CTMC solution.
        let (l, m) = (0.5f64, 2.0f64);
        let mut b = SemiMarkovBuilder::new();
        let up = b.state("up", Box::new(Exponential::new(l).unwrap()));
        let down = b.state("down", Box::new(Exponential::new(m).unwrap()));
        b.transition(up, down, 1.0).unwrap();
        b.transition(down, up, 1.0).unwrap();
        let pi = b.build().unwrap().steady_state().unwrap();
        assert!((pi[0] - m / (l + m)).abs() < 1e-12);
    }
}
