//! Phase-type expansion: approximating a semi-Markov process by a
//! CTMC whose states are `(SMP state, phase)` pairs.
//!
//! This is the tutorial's standard recipe for "what if holding times
//! are not exponential but I still want Markov machinery (transient
//! solutions, rewards, sensitivity)": fit each sojourn distribution
//! with a phase-type law matching its first two moments, then expand
//! each SMP state into that law's phases. Steady-state results are
//! *exact* (they only depend on the sojourn means); transient results
//! are two-moment approximations that improve with the fidelity of the
//! fit.

use crate::smp::{SemiMarkov, SmpStateId};
use reliab_core::{Error, Result};
use reliab_dist::{fit_two_moments, Lifetime, TwoMomentFit};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};

/// The result of a phase-type expansion; see
/// [`SemiMarkov::expand_to_ctmc`].
#[derive(Debug)]
pub struct ExpandedCtmc {
    /// The expanded chain.
    pub ctmc: Ctmc,
    /// `phases[i]` lists the CTMC states representing SMP state `i`
    /// (in phase order).
    pub phases: Vec<Vec<StateId>>,
    /// `initial_alpha[i]` is the initial phase distribution used when
    /// entering SMP state `i`.
    pub initial_alpha: Vec<Vec<f64>>,
}

impl ExpandedCtmc {
    /// Aggregates a CTMC distribution back onto SMP states.
    pub fn aggregate(&self, pi: &[f64]) -> Vec<f64> {
        self.phases
            .iter()
            .map(|ps| ps.iter().map(|s| pi[s.index()]).sum())
            .collect()
    }

    /// Initial CTMC distribution representing "the SMP just entered
    /// state `s`".
    pub fn entry_distribution(&self, s: SmpStateId) -> Vec<f64> {
        let mut p = vec![0.0; self.ctmc.num_states()];
        for (phase, st) in self.phases[s.index()].iter().enumerate() {
            p[st.index()] = self.initial_alpha[s.index()][phase];
        }
        p
    }

    /// Interval availability `(1/t) ∫₀ᵗ A(u) du` over the horizon
    /// `[0, t]`, starting at entry into `initial`, with `up` the
    /// operational SMP states. Computed on the expansion's accumulated
    /// state occupancies (uniformization truncated at `epsilon`), so it
    /// inherits the two-moment transient approximation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a non-positive horizon
    /// or out-of-range handles, and propagates transient-solver errors.
    pub fn interval_availability(
        &self,
        initial: SmpStateId,
        up: &[SmpStateId],
        t: f64,
        epsilon: f64,
    ) -> Result<f64> {
        if !(t > 0.0 && t.is_finite()) {
            return Err(Error::invalid(format!(
                "interval-availability horizon must be positive and finite, got {t}"
            )));
        }
        for s in up {
            if s.index() >= self.phases.len() {
                return Err(Error::invalid("up-state handle out of range"));
            }
        }
        let p0 = self.entry_distribution(initial);
        let acc = self.ctmc.accumulated(&p0, t, epsilon)?;
        let up_time: f64 = up
            .iter()
            .flat_map(|s| self.phases[s.index()].iter())
            .map(|st| acc[st.index()])
            .sum();
        Ok(up_time / t)
    }
}

/// Internal canonical phase-type form: initial distribution `alpha`,
/// within-chain rates, and per-phase exit rates.
struct PhForm {
    alpha: Vec<f64>,
    /// (from phase, to phase, rate)
    internal: Vec<(usize, usize, f64)>,
    /// exit rate per phase
    exit: Vec<f64>,
}

fn ph_form_of(d: &dyn Lifetime) -> Result<PhForm> {
    // Two-moment fit with cv² clamped into the representable range;
    // deterministic sojourns (cv² = 0) become stiff Erlangs.
    let mean = d.mean();
    if !(mean.is_finite() && mean > 0.0) {
        return Err(Error::invalid(format!(
            "sojourn mean {mean} must be finite and positive for PH expansion"
        )));
    }
    let cv2 = d.cv_squared().clamp(1.0 / 64.0, 64.0);
    match fit_two_moments(mean, cv2)? {
        TwoMomentFit::Exponential(e) => Ok(PhForm {
            alpha: vec![1.0],
            internal: Vec::new(),
            exit: vec![e.rate()],
        }),
        TwoMomentFit::Erlang(er) => {
            let k = er.stages() as usize;
            let r = er.rate();
            let mut internal = Vec::new();
            for i in 0..k - 1 {
                internal.push((i, i + 1, r));
            }
            let mut exit = vec![0.0; k];
            exit[k - 1] = r;
            let mut alpha = vec![0.0; k];
            alpha[0] = 1.0;
            Ok(PhForm {
                alpha,
                internal,
                exit,
            })
        }
        TwoMomentFit::HyperExponential(h) => Ok(PhForm {
            // Two parallel single-phase branches.
            alpha: h.probs().to_vec(),
            internal: Vec::new(),
            exit: h.rates().to_vec(),
        }),
        TwoMomentFit::ErlangMixture(ph) => {
            let m = ph.phases();
            let t = ph.sub_generator();
            let mut internal = Vec::new();
            let mut exit = vec![0.0; m];
            for (i, exit_i) in exit.iter_mut().enumerate() {
                let mut row_sum = 0.0;
                for j in 0..m {
                    let v = t.get(i, j);
                    row_sum += v;
                    if i != j && v > 0.0 {
                        internal.push((i, j, v));
                    }
                }
                *exit_i = (-row_sum).max(0.0);
            }
            Ok(PhForm {
                alpha: ph.alpha().to_vec(),
                internal,
                exit,
            })
        }
    }
}

impl SemiMarkov {
    /// Expands the process into a CTMC by phase-type fitting each
    /// sojourn distribution (two-moment match, cv² clamped to
    /// `[1/64, 64]`).
    ///
    /// Steady-state probabilities of the expansion (aggregated back
    /// over phases) equal the SMP's exactly; transient probabilities
    /// are a two-moment approximation. The expansion starts in the
    /// given `initial` SMP state's entry phases.
    ///
    /// # Errors
    ///
    /// Returns fitting errors (degenerate sojourns) and CTMC
    /// construction errors.
    pub fn expand_to_ctmc(&self, initial: SmpStateId) -> Result<ExpandedCtmc> {
        let n = self.num_states();
        if initial.index() >= n {
            return Err(Error::invalid("initial state handle out of range"));
        }
        let forms: Vec<PhForm> = (0..n)
            .map(|i| ph_form_of(self.sojourn(SmpStateId::from_index(i))))
            .collect::<Result<_>>()?;
        let mut b = CtmcBuilder::new();
        let phases: Vec<Vec<StateId>> = (0..n)
            .map(|i| {
                (0..forms[i].alpha.len())
                    .map(|ph| {
                        b.state(&format!(
                            "{}#{ph}",
                            self.state_name(SmpStateId::from_index(i))
                        ))
                    })
                    .collect()
            })
            .collect();
        for i in 0..n {
            // Internal phase transitions.
            for &(f, t, r) in &forms[i].internal {
                b.transition(phases[i][f], phases[i][t], r)?;
            }
            // Exits: distribute over successors j (embedded probs) and
            // their entry phases (alpha_j).
            for (ph, &er) in forms[i].exit.iter().enumerate() {
                if er <= 0.0 {
                    continue;
                }
                for (j, pij) in self.successors(SmpStateId::from_index(i)) {
                    for (ph2, &a) in forms[j.index()].alpha.iter().enumerate() {
                        let rate = er * pij * a;
                        if rate > 0.0 {
                            b.transition(phases[i][ph], phases[j.index()][ph2], rate)?;
                        }
                    }
                }
            }
        }
        Ok(ExpandedCtmc {
            ctmc: b.build()?,
            initial_alpha: forms.into_iter().map(|f| f.alpha).collect(),
            phases,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SemiMarkovBuilder;
    use reliab_dist::{Deterministic, Exponential, LogNormal};

    fn alternating(up: Box<dyn Lifetime>, down: Box<dyn Lifetime>) -> SemiMarkov {
        let mut b = SemiMarkovBuilder::new();
        let u = b.state("up", up);
        let d = b.state("down", down);
        b.transition(u, d, 1.0).unwrap();
        b.transition(d, u, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn exponential_sojourns_expand_to_the_same_chain() {
        let smp = alternating(
            Box::new(Exponential::new(0.5).unwrap()),
            Box::new(Exponential::new(4.0).unwrap()),
        );
        let initial = SmpStateId::from_index(0);
        let exp = smp.expand_to_ctmc(initial).unwrap();
        assert_eq!(exp.ctmc.num_states(), 2);
        let pi = exp.ctmc.steady_state().unwrap();
        let agg = exp.aggregate(&pi);
        let exact = smp.steady_state().unwrap();
        assert!((agg[0] - exact[0]).abs() < 1e-12);
    }

    #[test]
    fn lognormal_sojourns_steady_state_is_exact() {
        // Lognormal cv² = 4 on the down state: steady state only
        // depends on means, so aggregation must match the SMP.
        let smp = alternating(
            Box::new(Exponential::from_mean(9.0).unwrap()),
            Box::new(LogNormal::from_mean_cv2(1.0, 4.0).unwrap()),
        );
        let exp = smp.expand_to_ctmc(SmpStateId::from_index(0)).unwrap();
        // H2 fit: down expands to 2 phases.
        assert_eq!(exp.ctmc.num_states(), 3);
        let agg = exp.aggregate(&exp.ctmc.steady_state().unwrap());
        let exact = smp.steady_state().unwrap();
        assert!(
            (agg[0] - exact[0]).abs() < 1e-10,
            "{} vs {}",
            agg[0],
            exact[0]
        );
        assert!((agg[1] - exact[1]).abs() < 1e-10);
    }

    #[test]
    fn deterministic_sojourn_becomes_stiff_erlang() {
        let smp = alternating(
            Box::new(Exponential::from_mean(10.0).unwrap()),
            Box::new(Deterministic::new(1.0).unwrap()),
        );
        let exp = smp.expand_to_ctmc(SmpStateId::from_index(0)).unwrap();
        // cv² clamps to 1/64 => 64-stage Erlang + the exponential state.
        assert_eq!(exp.ctmc.num_states(), 65);
        let agg = exp.aggregate(&exp.ctmc.steady_state().unwrap());
        let exact = smp.steady_state().unwrap();
        assert!((agg[0] - exact[0]).abs() < 1e-10);
    }

    #[test]
    fn transient_of_expansion_is_sensible() {
        // With a nearly deterministic down time of 1h, starting "down",
        // the process is almost surely up again shortly after t = 1.
        let smp = alternating(
            Box::new(Exponential::from_mean(100.0).unwrap()),
            Box::new(Deterministic::new(1.0).unwrap()),
        );
        let down = SmpStateId::from_index(1);
        let exp = smp.expand_to_ctmc(down).unwrap();
        let p0 = exp.entry_distribution(down);
        let at = |t: f64| {
            let pi = exp.ctmc.transient(&p0, t).unwrap();
            exp.aggregate(&pi)[1] // probability still down
        };
        assert!(at(0.5) > 0.9, "still down mid-repair: {}", at(0.5));
        assert!(at(2.0) < 0.1, "repaired soon after 1h: {}", at(2.0));
    }

    #[test]
    fn three_state_cycle_aggregates_exactly() {
        let mut b = SemiMarkovBuilder::new();
        let a = b.state("a", Box::new(LogNormal::from_mean_cv2(1.0, 2.0).unwrap()));
        let bb = b.state("b", Box::new(Exponential::from_mean(2.0).unwrap()));
        let c = b.state("c", Box::new(Deterministic::new(3.0).unwrap()));
        b.transition(a, bb, 1.0).unwrap();
        b.transition(bb, c, 1.0).unwrap();
        b.transition(c, a, 1.0).unwrap();
        let smp = b.build().unwrap();
        let exp = smp.expand_to_ctmc(a).unwrap();
        let agg = exp.aggregate(&exp.ctmc.steady_state().unwrap());
        let exact = smp.steady_state().unwrap();
        for i in 0..3 {
            assert!((agg[i] - exact[i]).abs() < 1e-9, "state {i}");
        }
    }
}
