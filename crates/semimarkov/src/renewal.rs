//! Renewal-reward / Markov-regenerative analysis of maintenance and
//! rejuvenation policies.
//!
//! The common shape: a regeneration cycle starts with the system fresh;
//! an aging time-to-failure distribution races a deterministic policy
//! clock `δ` (inspection, preventive maintenance, or software
//! rejuvenation). If failure wins, the system suffers a long reactive
//! repair; if the clock wins, a short proactive action restores it.
//! Renewal-reward then gives exact long-run availability and cost
//! rate, and a one-dimensional search yields the optimal `δ` — the
//! tutorial's software-rejuvenation story in miniature.

use reliab_core::{ensure_finite_nonneg, ensure_finite_positive, Error, Result};
use reliab_dist::Lifetime;
use reliab_numeric::quadrature::integrate;
use reliab_numeric::roots::golden_section_min;

/// Long-run measures of an age-replacement / rejuvenation policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyMeasures {
    /// Long-run availability.
    pub availability: f64,
    /// Expected cycle length.
    pub cycle_length: f64,
    /// Probability that a cycle ends in (unplanned) failure.
    pub failure_probability: f64,
    /// Long-run cost per unit time (only meaningful when costs were
    /// supplied; zero otherwise).
    pub cost_rate: f64,
}

/// Cost structure for [`policy_measures`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyCosts {
    /// Cost of an unplanned (failure) repair.
    pub failure: f64,
    /// Cost of a planned (preventive/rejuvenation) action.
    pub planned: f64,
}

impl Default for PolicyCosts {
    fn default() -> Self {
        PolicyCosts {
            failure: 0.0,
            planned: 0.0,
        }
    }
}

/// Evaluates an age-replacement policy: act preventively at age `delta`
/// unless the unit fails first.
///
/// * `ttf` — time-to-failure distribution (aging makes the policy
///   worthwhile: for exponential `ttf` the optimum is `δ → ∞`).
/// * `repair_time` — mean downtime of an unplanned repair.
/// * `planned_time` — mean downtime of the planned action
///   (rejuvenation/PM), typically much smaller.
/// * `delta` — the policy age.
///
/// Renewal-reward over one cycle:
/// `uptime = ∫₀^δ R(t) dt`, `E[cycle] = uptime + F(δ)·repair +
/// R(δ)·planned`, availability = uptime / E\[cycle\].
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for non-positive `delta` or
/// negative times, and propagates distribution/quadrature errors.
pub fn policy_measures(
    ttf: &dyn Lifetime,
    repair_time: f64,
    planned_time: f64,
    delta: f64,
    costs: &PolicyCosts,
) -> Result<PolicyMeasures> {
    ensure_finite_positive(delta, "policy age delta")?;
    ensure_finite_nonneg(repair_time, "repair time")?;
    ensure_finite_nonneg(planned_time, "planned action time")?;
    ensure_finite_nonneg(costs.failure, "failure cost")?;
    ensure_finite_nonneg(costs.planned, "planned cost")?;

    let uptime = integrate(|t| ttf.survival(t).unwrap_or(f64::NAN), 0.0, delta, 1e-11)
        .map_err(|e| Error::numerical(e.to_string()))?;
    let f_delta = ttf.cdf(delta)?;
    let r_delta = 1.0 - f_delta;
    let downtime = f_delta * repair_time + r_delta * planned_time;
    let cycle = uptime + downtime;
    if cycle.is_nan() || cycle <= 0.0 {
        return Err(Error::numerical(format!(
            "expected cycle length {cycle} is not positive"
        )));
    }
    let cost_per_cycle = f_delta * costs.failure + r_delta * costs.planned;
    Ok(PolicyMeasures {
        availability: uptime / cycle,
        cycle_length: cycle,
        failure_probability: f_delta,
        cost_rate: cost_per_cycle / cycle,
    })
}

/// Minimizes `objective` over `[lo, hi]` by a coarse log-spaced grid
/// scan (to bracket the optimum robustly — availability curves have
/// long flat plateaus that defeat plain golden section) followed by
/// golden-section refinement inside the bracketing cell.
fn grid_then_golden<F: Fn(f64) -> f64>(objective: F, lo: f64, hi: f64) -> Result<f64> {
    const GRID: usize = 64;
    let ratio = (hi / lo).powf(1.0 / (GRID - 1) as f64);
    let grid: Vec<f64> = (0..GRID).map(|i| lo * ratio.powi(i as i32)).collect();
    let mut best = 0usize;
    let mut best_val = f64::INFINITY;
    for (i, &d) in grid.iter().enumerate() {
        let v = objective(d);
        if v < best_val {
            best_val = v;
            best = i;
        }
    }
    let a = grid[best.saturating_sub(1)];
    let b = grid[(best + 1).min(GRID - 1)];
    if a >= b {
        return Ok(grid[best]);
    }
    let (d_opt, v_opt) = golden_section_min(&objective, a, b, 1e-8 * hi)
        .map_err(|e| Error::numerical(e.to_string()))?;
    Ok(if v_opt <= best_val { d_opt } else { grid[best] })
}

/// Searches for the `delta` maximizing availability over
/// `[delta_min, delta_max]`.
///
/// Returns `(delta_opt, measures_at_optimum)`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a malformed search interval
/// and propagates evaluation errors.
pub fn optimal_policy_age(
    ttf: &dyn Lifetime,
    repair_time: f64,
    planned_time: f64,
    delta_min: f64,
    delta_max: f64,
) -> Result<(f64, PolicyMeasures)> {
    if !(delta_min > 0.0 && delta_min < delta_max && delta_max.is_finite()) {
        return Err(Error::invalid(format!(
            "search interval [{delta_min}, {delta_max}] must satisfy 0 < min < max < inf"
        )));
    }
    let objective = |d: f64| {
        policy_measures(ttf, repair_time, planned_time, d, &PolicyCosts::default())
            .map(|m| -m.availability)
            .unwrap_or(f64::INFINITY)
    };
    let d_opt = grid_then_golden(objective, delta_min, delta_max)?;
    let m = policy_measures(
        ttf,
        repair_time,
        planned_time,
        d_opt,
        &PolicyCosts::default(),
    )?;
    Ok((d_opt, m))
}

/// Searches for the `delta` minimizing long-run cost rate.
///
/// # Errors
///
/// Same as [`optimal_policy_age`].
pub fn optimal_policy_cost(
    ttf: &dyn Lifetime,
    repair_time: f64,
    planned_time: f64,
    costs: &PolicyCosts,
    delta_min: f64,
    delta_max: f64,
) -> Result<(f64, PolicyMeasures)> {
    if !(delta_min > 0.0 && delta_min < delta_max && delta_max.is_finite()) {
        return Err(Error::invalid(format!(
            "search interval [{delta_min}, {delta_max}] must satisfy 0 < min < max < inf"
        )));
    }
    let objective = |d: f64| {
        policy_measures(ttf, repair_time, planned_time, d, costs)
            .map(|m| m.cost_rate)
            .unwrap_or(f64::INFINITY)
    };
    let d_opt = grid_then_golden(objective, delta_min, delta_max)?;
    let m = policy_measures(ttf, repair_time, planned_time, d_opt, costs)?;
    Ok((d_opt, m))
}

/// Long-run measures of a periodic-inspection policy with latent
/// failures; see [`inspection_measures`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InspectionMeasures {
    /// Long-run availability (fraction of time actually functioning).
    pub availability: f64,
    /// Mean latency between a (latent) failure and its detection at
    /// the next inspection.
    pub mean_detection_delay: f64,
    /// Expected regeneration-cycle length.
    pub cycle_length: f64,
}

/// Evaluates a periodic-inspection policy for a unit whose failures
/// are **latent** (a failed standby/safety system looks healthy until
/// someone checks): inspections every `tau`, each taking the unit
/// offline for `inspection_time`; a failure is found at the next
/// inspection and repaired in `repair_time`.
///
/// Renewal-reward over cycles: with `N = ⌈X/τ⌉` inspections per cycle
/// (X the time to failure), `E[N] = Σ_{k≥0} R(kτ)` and
///
/// ```text
/// A = E[X] / (τ·E[N] + inspection_time·E[N] + repair_time)
/// ```
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] on non-positive `tau` or
/// negative times, and propagates distribution errors.
pub fn inspection_measures(
    ttf: &dyn Lifetime,
    tau: f64,
    inspection_time: f64,
    repair_time: f64,
) -> Result<InspectionMeasures> {
    ensure_finite_positive(tau, "inspection interval")?;
    ensure_finite_nonneg(inspection_time, "inspection time")?;
    ensure_finite_nonneg(repair_time, "repair time")?;
    // E[N] = sum of survival at inspection epochs (k = 0, 1, ...).
    let mut expected_n = 0.0;
    let mut k = 0usize;
    loop {
        let r = ttf.survival(k as f64 * tau)?;
        expected_n += r;
        k += 1;
        if r < 1e-14 || k > 10_000_000 {
            break;
        }
    }
    let mean_up = ttf.mean();
    let cycle = tau * expected_n + inspection_time * expected_n + repair_time;
    if cycle.is_nan() || cycle <= 0.0 {
        return Err(Error::numerical(format!(
            "expected cycle length {cycle} is not positive"
        )));
    }
    Ok(InspectionMeasures {
        availability: mean_up / cycle,
        mean_detection_delay: tau * expected_n - mean_up,
        cycle_length: cycle,
    })
}

/// Finds the inspection interval maximizing availability over
/// `[tau_min, tau_max]`.
///
/// With `inspection_time > 0` the optimum is interior (inspect too
/// often and overhead dominates; too rarely and latent dead time
/// dominates).
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for a malformed interval and
/// propagates evaluation errors.
pub fn optimal_inspection_interval(
    ttf: &dyn Lifetime,
    inspection_time: f64,
    repair_time: f64,
    tau_min: f64,
    tau_max: f64,
) -> Result<(f64, InspectionMeasures)> {
    if !(tau_min > 0.0 && tau_min < tau_max && tau_max.is_finite()) {
        return Err(Error::invalid(format!(
            "search interval [{tau_min}, {tau_max}] must satisfy 0 < min < max < inf"
        )));
    }
    let objective = |tau: f64| {
        inspection_measures(ttf, tau, inspection_time, repair_time)
            .map(|m| -m.availability)
            .unwrap_or(f64::INFINITY)
    };
    let tau_opt = grid_then_golden(objective, tau_min, tau_max)?;
    let m = inspection_measures(ttf, tau_opt, inspection_time, repair_time)?;
    Ok((tau_opt, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use reliab_dist::{Exponential, Weibull};

    #[test]
    fn exponential_ttf_prefers_no_preventive_action() {
        // Memoryless failures: acting early only adds downtime, so
        // availability increases with delta.
        let ttf = Exponential::from_mean(100.0).unwrap();
        let a_small = policy_measures(&ttf, 10.0, 1.0, 50.0, &PolicyCosts::default())
            .unwrap()
            .availability;
        let a_large = policy_measures(&ttf, 10.0, 1.0, 500.0, &PolicyCosts::default())
            .unwrap()
            .availability;
        assert!(a_large > a_small);
    }

    #[test]
    fn aging_ttf_has_interior_optimum() {
        // Strong wear-out (Weibull shape 3), expensive repair: the
        // optimal rejuvenation age is interior and beats both extremes.
        let ttf = Weibull::new(3.0, 100.0).unwrap();
        let (d_opt, m_opt) = optimal_policy_age(&ttf, 50.0, 1.0, 1.0, 500.0).unwrap();
        assert!(d_opt > 1.5 && d_opt < 400.0, "d_opt = {d_opt}");
        for &d in &[5.0, 300.0] {
            let m = policy_measures(&ttf, 50.0, 1.0, d, &PolicyCosts::default()).unwrap();
            assert!(
                m_opt.availability >= m.availability - 1e-9,
                "optimum {0} must beat delta = {d} ({1})",
                m_opt.availability,
                m.availability
            );
        }
    }

    #[test]
    fn availability_accounting_is_consistent() {
        let ttf = Weibull::new(2.0, 10.0).unwrap();
        let m = policy_measures(&ttf, 5.0, 0.5, 8.0, &PolicyCosts::default()).unwrap();
        assert!(m.availability > 0.0 && m.availability < 1.0);
        assert!(m.failure_probability > 0.0 && m.failure_probability < 1.0);
        // uptime = availability * cycle must be below delta.
        assert!(m.availability * m.cycle_length <= 8.0 + 1e-9);
    }

    #[test]
    fn cost_rate_optimum_trades_failure_against_planned() {
        let ttf = Weibull::new(2.5, 100.0).unwrap();
        let costs = PolicyCosts {
            failure: 100.0,
            planned: 5.0,
        };
        let (d_opt, m) = optimal_policy_cost(&ttf, 10.0, 1.0, &costs, 1.0, 1000.0).unwrap();
        assert!(d_opt > 1.5 && d_opt < 900.0);
        assert!(m.cost_rate > 0.0);
        // Classic check: at the optimum, cost beats replace-never
        // (approximated by a huge delta).
        let never = policy_measures(&ttf, 10.0, 1.0, 999.0, &costs).unwrap();
        assert!(m.cost_rate < never.cost_rate);
    }

    #[test]
    fn validation() {
        let ttf = Exponential::new(1.0).unwrap();
        let c = PolicyCosts::default();
        assert!(policy_measures(&ttf, 1.0, 1.0, 0.0, &c).is_err());
        assert!(policy_measures(&ttf, -1.0, 1.0, 1.0, &c).is_err());
        assert!(optimal_policy_age(&ttf, 1.0, 1.0, 5.0, 2.0).is_err());
        assert!(optimal_policy_cost(&ttf, 1.0, 1.0, &c, 0.0, 2.0).is_err());
    }

    #[test]
    fn inspection_frequent_checks_approach_alternating_renewal() {
        // Free, instantaneous inspections at tau -> 0:
        // A -> E[X] / (E[X] + repair).
        let ttf = Exponential::from_mean(100.0).unwrap();
        let m = inspection_measures(&ttf, 0.01, 0.0, 5.0).unwrap();
        assert!((m.availability - 100.0 / 105.0).abs() < 1e-3);
        assert!(m.mean_detection_delay < 0.02);
    }

    #[test]
    fn inspection_rare_checks_leave_long_dead_time() {
        let ttf = Exponential::from_mean(100.0).unwrap();
        let m = inspection_measures(&ttf, 1000.0, 0.0, 5.0).unwrap();
        // Almost always fails early in the interval; average ~latency
        // near tau - E[X] (memoryless: E[Ntau] - E[X]).
        assert!(m.availability < 0.2);
        assert!(m.mean_detection_delay > 500.0);
    }

    #[test]
    fn inspection_exponential_closed_form() {
        // For exp(rate a): E[N] = sum e^{-a k tau} = 1/(1 - e^{-a tau}).
        let (mean, tau, r) = (50.0, 20.0, 2.0);
        let a = 1.0 / mean;
        let ttf = Exponential::new(a).unwrap();
        let m = inspection_measures(&ttf, tau, 0.0, r).unwrap();
        let en = 1.0 / (1.0 - (-a * tau).exp());
        let expected = mean / (tau * en + r);
        assert!((m.availability - expected).abs() < 1e-9);
    }

    #[test]
    fn costly_inspections_yield_interior_optimum() {
        let ttf = Weibull::new(2.0, 1000.0).unwrap();
        let (tau_opt, m_opt) = optimal_inspection_interval(&ttf, 1.0, 24.0, 1.0, 20_000.0).unwrap();
        assert!(tau_opt > 2.0 && tau_opt < 10_000.0, "tau* = {tau_opt}");
        for &tau in &[2.0, 10_000.0] {
            let m = inspection_measures(&ttf, tau, 1.0, 24.0).unwrap();
            assert!(m_opt.availability >= m.availability - 1e-9);
        }
    }

    #[test]
    fn inspection_validation() {
        let ttf = Exponential::new(1.0).unwrap();
        assert!(inspection_measures(&ttf, 0.0, 0.0, 1.0).is_err());
        assert!(inspection_measures(&ttf, 1.0, -1.0, 1.0).is_err());
        assert!(optimal_inspection_interval(&ttf, 0.0, 1.0, 5.0, 2.0).is_err());
    }
}
