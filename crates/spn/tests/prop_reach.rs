//! Property tests for the parallel state-space generator: on randomly
//! generated bounded SPNs, every worker count must produce a CTMC
//! bitwise identical to the sequential reference — same canonical
//! marking order, same generator triplets, same initial distribution —
//! and the generation guards (vanishing loops, marking caps) must fire
//! identically under parallelism.
//!
//! Net generation is seeded and self-contained so any failure
//! reproduces from the seed in the assertion message. Boundedness is
//! by construction: every output place carries an inhibitor cap, and
//! every immediate transition strictly decreases the token count, so
//! vanishing chains terminate.

use reliab_spn::{PlaceId, ReachabilityOptions, SpnBuilder, TransitionId};

/// splitmix64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn f64(&mut self) -> f64 {
        ((self.next() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// A random bounded SPN on 2–4 places, plus the id of its timed token
/// source (used as a throughput probe).
///
/// * Timed transitions: a token source (inhibitor-capped), plus
///   random movers with one input and an inhibitor-capped output.
/// * Immediate transitions: consume two tokens, emit at most one —
///   token count strictly decreases, so no vanishing chain can loop.
fn random_spn(seed: u64) -> (reliab_spn::Spn, TransitionId) {
    let mut rng = Rng(seed);
    let mut b = SpnBuilder::new();
    let num_places = 2 + rng.below(3) as usize;
    let cap = 3 + rng.below(3) as u32;
    let places: Vec<PlaceId> = (0..num_places)
        .map(|i| {
            let tokens = rng.below(3) as u32;
            b.place(&format!("p{i}"), tokens)
        })
        .collect();
    let pick = |rng: &mut Rng| places[rng.below(num_places as u64) as usize];

    // A capped source keeps the chain live (no all-deadlock nets).
    let source = b.timed("t_src", 0.5 + rng.f64());
    let src_place = pick(&mut rng);
    b.output_arc(source, src_place, 1);
    b.inhibitor_arc(source, src_place, cap);

    let num_timed = 2 + rng.below(3);
    for k in 0..num_timed {
        let t = b.timed(&format!("t{k}"), 0.2 + 2.0 * rng.f64());
        let from = pick(&mut rng);
        let to = pick(&mut rng);
        b.input_arc(t, from, 1);
        if to != from {
            b.output_arc(t, to, 1);
            b.inhibitor_arc(t, to, cap);
        }
    }

    let num_immediate = rng.below(3);
    for k in 0..num_immediate {
        let t = b.immediate(&format!("i{k}"), 0.1 + rng.f64(), rng.below(2) as u32);
        let a = pick(&mut rng);
        let bp = pick(&mut rng);
        if a == bp {
            b.input_arc(t, a, 2);
        } else {
            b.input_arc(t, a, 1);
            b.input_arc(t, bp, 1);
        }
        if rng.below(2) == 0 {
            let out = pick(&mut rng);
            b.output_arc(t, out, 1);
            b.inhibitor_arc(t, out, cap + 2);
        }
    }

    (b.build().expect("random net is well-formed"), source)
}

#[test]
fn parallel_generation_is_bitwise_identical_on_random_nets() {
    for seed in 0..40u64 {
        let (spn, source) = random_spn(seed);
        let seq = spn
            .solve_with(&ReachabilityOptions {
                jobs: 1,
                ..Default::default()
            })
            .expect("bounded net solves sequentially");
        for jobs in [2usize, 4, 8] {
            let par = spn
                .solve_with(&ReachabilityOptions {
                    jobs,
                    ..Default::default()
                })
                .unwrap_or_else(|e| panic!("seed {seed}, jobs {jobs}: parallel solve failed: {e}"));
            assert_eq!(
                par.num_markings(),
                seq.num_markings(),
                "seed {seed}, jobs {jobs}: marking counts differ"
            );
            assert_eq!(
                par.markings(),
                seq.markings(),
                "seed {seed}, jobs {jobs}: canonical marking order differs"
            );
            assert_eq!(
                par.ctmc().generator(),
                seq.ctmc().generator(),
                "seed {seed}, jobs {jobs}: generator triplets differ"
            );
            assert_eq!(
                par.initial_distribution(),
                seq.initial_distribution(),
                "seed {seed}, jobs {jobs}: initial distributions differ"
            );

            // Identical CTMCs must yield identical downstream measures
            // — same success/failure, and bitwise-equal values on
            // success (the steady solve is deterministic given the
            // generator).
            let seq_steady = seq.ctmc().steady_state();
            let par_steady = par.ctmc().steady_state();
            match (&seq_steady, &par_steady) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "seed {seed}, jobs {jobs}: steady vectors differ");
                    let st = seq.throughput_given(a, source).expect("source exists");
                    let pt = par.throughput_given(b, source).expect("source exists");
                    assert_eq!(st, pt, "seed {seed}, jobs {jobs}: throughput differs");
                }
                (Err(_), Err(_)) => {}
                _ => panic!(
                    "seed {seed}, jobs {jobs}: steady-state solvability differs \
                     (seq {seq_steady:?} vs par {par_steady:?})"
                ),
            }
        }
    }
}

#[test]
fn shard_bits_do_not_change_the_result() {
    for seed in [3u64, 11, 17] {
        let (spn, _) = random_spn(seed);
        let reference = spn.solve().expect("bounded net");
        for shard_bits in [0u32, 1, 4, 10] {
            for jobs in [1usize, 4] {
                let alt = spn
                    .solve_with(&ReachabilityOptions {
                        jobs,
                        shard_bits,
                        ..Default::default()
                    })
                    .expect("bounded net");
                assert_eq!(
                    alt.markings(),
                    reference.markings(),
                    "seed {seed}, shard_bits {shard_bits}, jobs {jobs}"
                );
                assert_eq!(
                    alt.ctmc().generator(),
                    reference.ctmc().generator(),
                    "seed {seed}, shard_bits {shard_bits}, jobs {jobs}"
                );
            }
        }
    }
}

/// A vanishing loop behind a timed transition: the loop is not visible
/// at the initial marking, so it must be detected mid-exploration by
/// whichever worker expands that region.
#[test]
fn vanishing_loop_is_detected_at_every_worker_count() {
    let mut b = SpnBuilder::new();
    let staging = b.place("staging", 0);
    let trap = b.place("trap", 0);
    let feed = b.timed("feed", 1.0);
    b.output_arc(feed, staging, 1);
    b.inhibitor_arc(feed, staging, 1);
    let arm = b.timed("arm", 2.0);
    b.input_arc(arm, staging, 1);
    b.output_arc(arm, trap, 1);
    // Immediate self-loop: fires forever once `trap` is marked.
    let spin = b.immediate("spin", 1.0, 0);
    b.input_arc(spin, trap, 1);
    b.output_arc(spin, trap, 1);
    let spn = b.build().unwrap();

    for jobs in [1usize, 2, 4, 8] {
        let err = spn
            .solve_with(&ReachabilityOptions {
                jobs,
                ..Default::default()
            })
            .expect_err("vanishing loop must be detected");
        let msg = err.to_string();
        assert!(
            msg.contains("vanishing"),
            "jobs {jobs}: unexpected error: {msg}"
        );
    }
}

/// The marking cap aborts generation identically under parallelism.
#[test]
fn marking_cap_fires_at_every_worker_count() {
    let mut b = SpnBuilder::new();
    let p = b.place("p", 0);
    let grow = b.timed("grow", 1.0);
    b.output_arc(grow, p, 1);
    let spn = b.build().unwrap();

    for jobs in [1usize, 2, 8] {
        let err = spn
            .solve_with(&ReachabilityOptions {
                max_markings: 64,
                jobs,
                ..Default::default()
            })
            .expect_err("unbounded net must hit the cap");
        assert!(
            err.to_string().contains("64"),
            "jobs {jobs}: unexpected error: {err}"
        );
    }
}

/// The reported worker count follows the requested `jobs`.
#[test]
fn reach_stats_reflect_worker_count() {
    let (spn, _) = random_spn(7);
    for jobs in [1usize, 2, 4] {
        let solved = spn
            .solve_with(&ReachabilityOptions {
                jobs,
                ..Default::default()
            })
            .expect("bounded net");
        assert_eq!(solved.reach_stats().workers, jobs, "jobs {jobs}");
        assert_eq!(solved.reach_stats().markings, solved.num_markings());
        assert!(solved.reach_stats().max_shard_occupancy <= solved.num_markings());
    }
}
