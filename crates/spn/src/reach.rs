//! Reachability-graph generation, vanishing-marking elimination, and
//! CTMC-backed measures.
//!
//! The generator is built for state spaces in the 10^5–10^6 range:
//! markings live packed in a single `u32` arena behind an
//! open-addressing FxHash intern table (no `Marking` clones on the hot
//! path), the frontier can be explored by a work-stealing worker pool
//! (`ReachabilityOptions::jobs`), and the CTMC is emitted as a triplet
//! stream under a canonical state numbering — the BFS discovery order
//! of the sequential reference — so parallel and sequential runs
//! produce bitwise-identical generators. See `DESIGN.md` for the
//! determinism argument.

use crate::model::{Spn, Timing, TransitionId};
use crate::Marking;
use reliab_core::fxhash::FxHasher;
use reliab_core::{Error, Result};
use reliab_markov::{Ctmc, StateId};
use reliab_obs as obs;
use std::collections::VecDeque;
use std::hash::Hasher;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Options for reachability-graph generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityOptions {
    /// Hard cap on tangible markings (state-space explosion guard).
    pub max_markings: usize,
    /// Hard cap on vanishing-chain length while eliminating immediate
    /// transitions (catches immediate-transition loops).
    pub max_vanishing_depth: usize,
    /// Worker threads for frontier exploration: `1` (the default) runs
    /// the sequential reference generator in the calling thread, `0`
    /// uses one worker per available CPU, `n > 1` uses exactly `n`
    /// workers. Every setting yields the same canonical CTMC bit for
    /// bit; see `DESIGN.md`.
    pub jobs: usize,
    /// log2 of the number of intern-table shards used by the parallel
    /// generator (clamped to `[0, 16]`; the sequential path keeps a
    /// single unsharded table).
    pub shard_bits: u32,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_markings: 1_000_000,
            max_vanishing_depth: 10_000,
            jobs: 1,
            shard_bits: 6,
        }
    }
}

/// Telemetry from one reachability-graph generation, exposed via
/// [`SolvedSpn::reach_stats`] and mirrored into the `reliab-obs`
/// metrics registry under `spn.reach.*`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ReachStats {
    /// Tangible markings (CTMC states).
    pub markings: usize,
    /// CTMC rate triplets emitted (parallel arcs still separate).
    pub arcs: usize,
    /// Vanishing markings expanded and eliminated on the way.
    pub vanishing_eliminated: u64,
    /// Worker threads used (1 = sequential reference path).
    pub workers: usize,
    /// Intern-table shards (1 for the sequential path).
    pub shards: usize,
    /// Markings held by the fullest shard.
    pub max_shard_occupancy: usize,
    /// Markings expanded by each worker (one entry per worker).
    pub per_worker_markings: Vec<u64>,
    /// Wall-clock nanoseconds spent on graph generation (excludes CTMC
    /// assembly).
    pub generation_ns: u128,
}

/// Hashes a packed marking with the vendored FxHash — the keys are
/// process-generated token vectors, so the non-cryptographic
/// multiply-rotate hash is the right trade (same reasoning as the BDD
/// unique table).
#[inline]
pub(crate) fn hash_marking(m: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &w in m {
        h.write_u32(w);
    }
    h.finish()
}

/// Empty-slot sentinel in the intern table.
const EMPTY: u32 = u32::MAX;

/// Open-addressing intern table over packed markings.
///
/// Markings are rows of stride `width` in one shared `u32` arena;
/// table slots cache the full 64-bit hash so probes touch the arena
/// only on a hash match. Interning a marking copies `width` words into
/// the arena at most once — no `Marking` (i.e. `Vec<u32>`) clones, no
/// per-state allocation.
pub(crate) struct InternTable {
    width: usize,
    hashes: Vec<u64>,
    ids: Vec<u32>,
    arena: Vec<u32>,
    pub(crate) count: usize,
}

impl InternTable {
    pub(crate) fn new(width: usize) -> Self {
        let cap = 1024;
        InternTable {
            width,
            hashes: vec![0; cap],
            ids: vec![EMPTY; cap],
            arena: Vec::new(),
            count: 0,
        }
    }

    /// The packed marking with local id `id`.
    #[inline]
    pub(crate) fn get(&self, id: u32) -> &[u32] {
        let lo = id as usize * self.width;
        &self.arena[lo..lo + self.width]
    }

    /// Read-only probe: the local id of `m` if it is interned. Touches
    /// the arena only on a full-hash match, like [`InternTable::intern`],
    /// but never mutates — the row-regeneration hot path of the
    /// streaming solver tier, where every successor is already known to
    /// be interned.
    #[inline]
    pub(crate) fn find(&self, m: &[u32], hash: u64) -> Option<u32> {
        let mask = self.ids.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                return None;
            }
            if self.hashes[slot] == hash && self.get(id) == m {
                return Some(id);
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Bytes resident in the table's backing stores (arena plus slot
    /// arrays) — the deterministic accounting the streaming tier's
    /// memory planner uses.
    pub(crate) fn resident_bytes(&self) -> usize {
        self.arena.len() * 4 + self.hashes.len() * 8 + self.ids.len() * 4
    }

    /// Interns `m` (whose hash is `hash`), returning its local id and
    /// whether it was newly inserted.
    pub(crate) fn intern(&mut self, m: &[u32], hash: u64) -> (u32, bool) {
        debug_assert_eq!(m.len(), self.width);
        // Grow at 70% load so probe chains stay short.
        if self.count * 10 >= self.ids.len() * 7 {
            self.grow();
        }
        let mask = self.ids.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let id = self.ids[slot];
            if id == EMPTY {
                let new_id = self.count as u32;
                self.ids[slot] = new_id;
                self.hashes[slot] = hash;
                self.arena.extend_from_slice(m);
                self.count += 1;
                return (new_id, true);
            }
            if self.hashes[slot] == hash && self.get(id) == m {
                return (id, false);
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.ids.len() * 2;
        let mut hashes = vec![0u64; new_cap];
        let mut ids = vec![EMPTY; new_cap];
        let mask = new_cap - 1;
        for old_slot in 0..self.ids.len() {
            let id = self.ids[old_slot];
            if id == EMPTY {
                continue;
            }
            let h = self.hashes[old_slot];
            let mut slot = (h as usize) & mask;
            while ids[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            ids[slot] = id;
            hashes[slot] = h;
        }
        self.hashes = hashes;
        self.ids = ids;
    }
}

/// Provisional-id encoding for the parallel path: shard index in the
/// high bits, local id within the shard's table below.
const PROV_SHARD_SHIFT: u32 = 40;
const PROV_LOCAL_MASK: u64 = (1 << PROV_SHARD_SHIFT) - 1;

#[inline]
fn prov_id(shard: usize, local: u32) -> u64 {
    ((shard as u64) << PROV_SHARD_SHIFT) | u64::from(local)
}

#[inline]
fn prov_parts(prov: u64) -> (usize, u32) {
    (
        (prov >> PROV_SHARD_SHIFT) as usize,
        (prov & PROV_LOCAL_MASK) as u32,
    )
}

/// The generator output before CTMC assembly: markings in canonical
/// (sequential-BFS) order, arcs in canonical emission order.
struct RawGraph {
    markings: Vec<Marking>,
    arcs: Vec<(u32, u32, f64)>,
    initial_pairs: Vec<(u32, f64)>,
    vanishing_eliminated: u64,
    per_worker: Vec<u64>,
    shards: usize,
    max_shard_occupancy: usize,
}

pub(crate) fn cap_error(opts: &ReachabilityOptions) -> Error {
    Error::model(format!(
        "reachability exceeded {} tangible markings",
        opts.max_markings
    ))
}

/// Per-worker accumulator for the parallel path.
#[derive(Default)]
struct WorkerOut {
    /// `(source provisional id, ordered successor arcs)` per expanded
    /// tangible marking.
    arcs: Vec<(u64, Vec<(u64, f64)>)>,
    processed: u64,
    vanishing_eliminated: u64,
}

/// State shared by the parallel worker pool.
struct ParShared {
    shards: Vec<Mutex<InternTable>>,
    shard_mask: usize,
    queues: Vec<Mutex<VecDeque<u64>>>,
    /// Total interned markings across shards (cap enforcement).
    total: AtomicUsize,
    /// Discovered-but-not-yet-expanded markings; generation terminates
    /// when this reaches zero.
    pending: AtomicUsize,
    failed: AtomicBool,
    error: Mutex<Option<Error>>,
}

impl ParShared {
    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        // High bits pick the shard; low bits index slots within it, so
        // the two selections stay independent.
        ((hash >> 48) as usize) & self.shard_mask
    }

    /// Interns `m` into its shard; returns the provisional id and
    /// whether it was new. Errors when the global cap is exceeded.
    fn intern(&self, m: &[u32], opts: &ReachabilityOptions) -> Result<(u64, bool)> {
        let hash = hash_marking(m);
        let s = self.shard_of(hash);
        let (local, is_new) = {
            let mut shard = self.shards[s].lock().expect("intern shard poisoned");
            shard.intern(m, hash)
        };
        if is_new && self.total.fetch_add(1, Ordering::Relaxed) >= opts.max_markings {
            return Err(cap_error(opts));
        }
        Ok((prov_id(s, local), is_new))
    }

    fn record_error(&self, e: Error) {
        let mut slot = self.error.lock().expect("error slot poisoned");
        if slot.is_none() {
            *slot = Some(e);
        }
        self.failed.store(true, Ordering::Release);
    }
}

impl Spn {
    /// Generates the reachability graph, eliminates vanishing markings,
    /// and builds the underlying CTMC, with default options.
    ///
    /// # Errors
    ///
    /// See [`Spn::solve_with`].
    pub fn solve(&self) -> Result<SolvedSpn<'_>> {
        self.solve_with(&ReachabilityOptions::default())
    }

    /// [`Spn::solve`] with explicit limits and worker configuration.
    ///
    /// # Errors
    ///
    /// * [`Error::Model`] — state-space cap exceeded, vanishing loop
    ///   detected, or a marking-dependent rate misbehaved.
    pub fn solve_with(&self, opts: &ReachabilityOptions) -> Result<SolvedSpn<'_>> {
        let _span = obs::span("spn.reach");
        let start = Instant::now();
        let workers = match opts.jobs {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        let raw = if workers <= 1 {
            self.generate_sequential(opts)?
        } else {
            self.generate_parallel(opts, workers)?
        };
        let generation_ns = start.elapsed().as_nanos();

        let stats = ReachStats {
            markings: raw.markings.len(),
            arcs: raw.arcs.len(),
            vanishing_eliminated: raw.vanishing_eliminated,
            workers,
            shards: raw.shards,
            max_shard_occupancy: raw.max_shard_occupancy,
            per_worker_markings: raw.per_worker.clone(),
            generation_ns,
        };
        obs::counter_add("spn.reach.markings", stats.markings as u64);
        obs::counter_add("spn.reach.arcs", stats.arcs as u64);
        obs::counter_add("spn.reach.vanishing_eliminated", stats.vanishing_eliminated);
        obs::gauge_set(
            "spn.reach.shard_max_occupancy",
            stats.max_shard_occupancy as f64,
        );
        let secs = generation_ns as f64 / 1e9;
        if secs > 0.0 {
            obs::gauge_set(
                "spn.reach.worker_throughput",
                stats.markings as f64 / secs / workers as f64,
            );
        }
        obs::event(
            "spn.reach.done",
            &[
                ("markings", (stats.markings as u64).into()),
                ("arcs", (stats.arcs as u64).into()),
                ("vanishing_eliminated", stats.vanishing_eliminated.into()),
                ("workers", (workers as u64).into()),
                ("shards", (stats.shards as u64).into()),
            ],
        );

        // Streaming CTMC assembly: the canonical triplets go straight
        // into the chain, bypassing the name-interning builder.
        let names: Vec<String> = raw.markings.iter().map(|m| format!("{m:?}")).collect();
        let triplets: Vec<(usize, usize, f64)> = raw
            .arcs
            .iter()
            .map(|&(f, t, r)| (f as usize, t as usize, r))
            .collect();
        let ctmc = Ctmc::from_parts(names, triplets)?;
        let state_ids = ctmc.state_ids();
        let mut initial = vec![0.0; raw.markings.len()];
        for &(i, p) in &raw.initial_pairs {
            initial[i as usize] += p;
        }
        Ok(SolvedSpn {
            spn: self,
            markings: raw.markings,
            state_ids,
            ctmc,
            initial,
            stats,
        })
    }

    /// Indices of the timed transitions, in declaration order — the
    /// outer loop of every state expansion.
    pub(crate) fn timed_indices(&self) -> Vec<usize> {
        (0..self.transitions.len())
            .filter(|&t| matches!(self.transitions[t].timing, Timing::Timed(_)))
            .collect()
    }

    /// The sequential reference generator: FIFO (BFS) frontier over the
    /// intern table, which *defines* the canonical state numbering the
    /// parallel path reproduces.
    fn generate_sequential(&self, opts: &ReachabilityOptions) -> Result<RawGraph> {
        let width = self.num_places();
        let timed = self.timed_indices();
        let has_imm = self.has_immediate();
        let mut table = InternTable::new(width);
        let mut arcs: Vec<(u32, u32, f64)> = Vec::new();
        let mut vanishing = 0u64;

        let intern = |table: &mut InternTable, m: &[u32]| -> Result<u32> {
            let (id, is_new) = table.intern(m, hash_marking(m));
            if is_new && table.count > opts.max_markings {
                return Err(cap_error(opts));
            }
            Ok(id)
        };

        // Resolve the initial marking (it may be vanishing).
        let mut initial_pairs: Vec<(u32, f64)> = Vec::new();
        for (m, p) in self.resolve_vanishing(self.initial.clone(), opts, &mut vanishing)? {
            let i = intern(&mut table, &m)?;
            initial_pairs.push((i, p));
        }

        // Newly interned markings get the next index, so walking the
        // arena front to back *is* the BFS — no explicit queue.
        let mut cur: Marking = Vec::with_capacity(width);
        let mut fired: Marking = Vec::with_capacity(width);
        let mut i = 0usize;
        // BFS levels are implicit in the arena walk: everything
        // interned while expanding level L is level L+1.
        let mut level = 0u64;
        let mut level_end = table.count;
        while i < table.count {
            if i == level_end {
                if obs::trace_enabled() {
                    obs::event(
                        "spn.reach.level",
                        &[
                            ("level", level.into()),
                            ("frontier", (table.count - level_end).into()),
                            ("states", table.count.into()),
                            ("arcs", arcs.len().into()),
                        ],
                    );
                }
                level += 1;
                level_end = table.count;
            }
            cur.clear();
            cur.extend_from_slice(table.get(i as u32));
            for &t in &timed {
                if !self.enabled(t, &cur) {
                    continue;
                }
                let rate = self.rate_of(t, &cur)?;
                self.fire_into(t, &cur, &mut fired);
                if has_imm && self.any_immediate_enabled(&fired) {
                    for (target, p) in
                        self.resolve_vanishing(fired.clone(), opts, &mut vanishing)?
                    {
                        let j = intern(&mut table, &target)?;
                        if j as usize != i {
                            arcs.push((i as u32, j, rate * p));
                        }
                    }
                } else {
                    let j = intern(&mut table, &fired)?;
                    if j as usize != i {
                        arcs.push((i as u32, j, rate));
                    }
                }
            }
            i += 1;
        }

        let count = table.count;
        let markings: Vec<Marking> = (0..count).map(|k| table.get(k as u32).to_vec()).collect();
        Ok(RawGraph {
            markings,
            arcs,
            initial_pairs,
            vanishing_eliminated: vanishing,
            per_worker: vec![count as u64],
            shards: 1,
            max_shard_occupancy: count,
        })
    }

    /// The parallel generator: sharded intern table, work-stealing
    /// frontier, then a canonical renumbering pass that replays the
    /// sequential BFS over the recorded per-state arc lists — so the
    /// emitted triplet stream is bitwise identical to
    /// [`Spn::generate_sequential`]'s regardless of worker count.
    fn generate_parallel(&self, opts: &ReachabilityOptions, workers: usize) -> Result<RawGraph> {
        let width = self.num_places();
        let timed = self.timed_indices();
        let has_imm = self.has_immediate();
        let num_shards = 1usize << opts.shard_bits.min(16);
        let shared = ParShared {
            shards: (0..num_shards)
                .map(|_| Mutex::new(InternTable::new(width)))
                .collect(),
            shard_mask: num_shards - 1,
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            total: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        };

        // Resolve and seed the initial distribution sequentially; the
        // resolved targets are distinct, so each is new.
        let mut vanishing0 = 0u64;
        let mut initial_provs: Vec<(u64, f64)> = Vec::new();
        for (rr, (m, p)) in self
            .resolve_vanishing(self.initial.clone(), opts, &mut vanishing0)?
            .into_iter()
            .enumerate()
        {
            let (prov, is_new) = shared.intern(&m, opts)?;
            initial_provs.push((prov, p));
            if is_new {
                shared.pending.fetch_add(1, Ordering::Release);
                shared.queues[rr % workers]
                    .lock()
                    .expect("frontier queue poisoned")
                    .push_back(prov);
            }
        }

        let mut outs: Vec<WorkerOut> = Vec::with_capacity(workers);
        let trace = obs::current_trace_id();
        std::thread::scope(|sc| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let shared = &shared;
                    let timed = &timed;
                    sc.spawn(move || {
                        let _trace = obs::set_trace_id(trace);
                        let mut out = WorkerOut::default();
                        self.worker_loop(shared, opts, timed, has_imm, me, &mut out);
                        out
                    })
                })
                .collect();
            for h in handles {
                outs.push(h.join().expect("reachability worker panicked"));
            }
        });
        if shared.failed.load(Ordering::Acquire) {
            let e = shared
                .error
                .lock()
                .expect("error slot poisoned")
                .take()
                .unwrap_or_else(|| Error::model("parallel reachability generation failed"));
            return Err(e);
        }

        // --- Canonical renumbering -------------------------------------
        // Replay the sequential BFS over the recorded arc lists: states
        // are numbered in first-appearance order of the canonical arc
        // stream (initial distribution first), and arcs are re-emitted
        // in that order. Both streams coincide exactly with what the
        // sequential path produces.
        let tables: Vec<InternTable> = shared
            .shards
            .into_iter()
            .map(|m| m.into_inner().expect("intern shard poisoned"))
            .collect();
        let mut base = vec![0usize; tables.len() + 1];
        for (s, t) in tables.iter().enumerate() {
            base[s + 1] = base[s] + t.count;
        }
        let total = base[tables.len()];
        let dense = |prov: u64| {
            let (s, l) = prov_parts(prov);
            base[s] + l as usize
        };
        let mut succ: Vec<Vec<(u64, f64)>> = vec![Vec::new(); total];
        for out in &mut outs {
            for (src, list) in out.arcs.drain(..) {
                succ[dense(src)] = list;
            }
        }
        let mut canon: Vec<u32> = vec![u32::MAX; total];
        let mut order: Vec<u64> = Vec::with_capacity(total);
        let mut initial_pairs: Vec<(u32, f64)> = Vec::with_capacity(initial_provs.len());
        for &(prov, p) in &initial_provs {
            let d = dense(prov);
            if canon[d] == u32::MAX {
                canon[d] = order.len() as u32;
                order.push(prov);
            }
            initial_pairs.push((canon[d], p));
        }
        let mut arcs: Vec<(u32, u32, f64)> = Vec::new();
        let mut head = 0usize;
        // The replay is the sequential BFS, so it carries the same
        // implicit level structure — emit the identical level series.
        let mut level = 0u64;
        let mut level_end = order.len();
        while head < order.len() {
            if head == level_end {
                if obs::trace_enabled() {
                    obs::event(
                        "spn.reach.level",
                        &[
                            ("level", level.into()),
                            ("frontier", (order.len() - level_end).into()),
                            ("states", order.len().into()),
                            ("arcs", arcs.len().into()),
                        ],
                    );
                }
                level += 1;
                level_end = order.len();
            }
            let src = head as u32;
            // The successor list is moved out to appease the borrow on
            // `order`; it is dead after this pass anyway.
            let list = std::mem::take(&mut succ[dense(order[head])]);
            for &(dst, rate) in &list {
                let d = dense(dst);
                if canon[d] == u32::MAX {
                    canon[d] = order.len() as u32;
                    order.push(dst);
                }
                arcs.push((src, canon[d], rate));
            }
            head += 1;
        }
        if order.len() != total {
            return Err(Error::model(
                "internal error: interned markings unreachable from the initial distribution",
            ));
        }
        let markings: Vec<Marking> = order
            .iter()
            .map(|&prov| {
                let (s, l) = prov_parts(prov);
                tables[s].get(l).to_vec()
            })
            .collect();

        let vanishing_eliminated =
            vanishing0 + outs.iter().map(|o| o.vanishing_eliminated).sum::<u64>();
        Ok(RawGraph {
            markings,
            arcs,
            initial_pairs,
            vanishing_eliminated,
            per_worker: outs.iter().map(|o| o.processed).collect(),
            shards: tables.len(),
            max_shard_occupancy: tables.iter().map(|t| t.count).max().unwrap_or(0),
        })
    }

    /// One worker of the parallel pool: drain the own deque from the
    /// back (depth-first locally, for cache locality), steal from the
    /// front of a sibling's deque when empty, terminate when no
    /// marking anywhere is discovered-but-unexpanded.
    fn worker_loop(
        &self,
        shared: &ParShared,
        opts: &ReachabilityOptions,
        timed: &[usize],
        has_imm: bool,
        me: usize,
        out: &mut WorkerOut,
    ) {
        let width = self.num_places();
        let mut cur: Marking = Vec::with_capacity(width);
        let mut fired: Marking = Vec::with_capacity(width);
        let mut newly: Vec<u64> = Vec::new();
        loop {
            if shared.failed.load(Ordering::Acquire) {
                return;
            }
            let item = shared.queues[me]
                .lock()
                .expect("frontier queue poisoned")
                .pop_back();
            let Some(prov) = item else {
                let mut stole = false;
                for k in 1..shared.queues.len() {
                    let victim = (me + k) % shared.queues.len();
                    let stolen: Vec<u64> = {
                        let mut q = shared.queues[victim]
                            .lock()
                            .expect("frontier queue poisoned");
                        let take = q.len().div_ceil(2);
                        q.drain(..take).collect()
                    };
                    if !stolen.is_empty() {
                        shared.queues[me]
                            .lock()
                            .expect("frontier queue poisoned")
                            .extend(stolen);
                        stole = true;
                        break;
                    }
                }
                if !stole {
                    if shared.pending.load(Ordering::Acquire) == 0 {
                        return;
                    }
                    std::thread::yield_now();
                }
                continue;
            };

            let (s, l) = prov_parts(prov);
            {
                let shard = shared.shards[s].lock().expect("intern shard poisoned");
                cur.clear();
                cur.extend_from_slice(shard.get(l));
            }
            newly.clear();
            let mut list: Vec<(u64, f64)> = Vec::new();
            let result = (|| -> Result<()> {
                for &t in timed {
                    if !self.enabled(t, &cur) {
                        continue;
                    }
                    let rate = self.rate_of(t, &cur)?;
                    self.fire_into(t, &cur, &mut fired);
                    if has_imm && self.any_immediate_enabled(&fired) {
                        for (target, p) in self.resolve_vanishing(
                            fired.clone(),
                            opts,
                            &mut out.vanishing_eliminated,
                        )? {
                            let (dst, is_new) = shared.intern(&target, opts)?;
                            if is_new {
                                shared.pending.fetch_add(1, Ordering::Release);
                                newly.push(dst);
                            }
                            if dst != prov {
                                list.push((dst, rate * p));
                            }
                        }
                    } else {
                        let (dst, is_new) = shared.intern(&fired, opts)?;
                        if is_new {
                            shared.pending.fetch_add(1, Ordering::Release);
                            newly.push(dst);
                        }
                        if dst != prov {
                            list.push((dst, rate));
                        }
                    }
                }
                Ok(())
            })();
            match result {
                Ok(()) => {
                    out.arcs.push((prov, list));
                    if !newly.is_empty() {
                        shared.queues[me]
                            .lock()
                            .expect("frontier queue poisoned")
                            .extend(newly.iter().copied());
                    }
                    out.processed += 1;
                    shared.pending.fetch_sub(1, Ordering::Release);
                }
                Err(e) => {
                    shared.record_error(e);
                    return;
                }
            }
        }
    }

    /// Pushes a (possibly vanishing) marking through immediate
    /// transitions until only tangible markings remain, returning the
    /// tangible distribution in a canonical (lexicographic) order — the
    /// order must not depend on exploration interleaving, or parallel
    /// and sequential runs would emit different arc streams.
    pub(crate) fn resolve_vanishing(
        &self,
        m: Marking,
        opts: &ReachabilityOptions,
        eliminated: &mut u64,
    ) -> Result<Vec<(Marking, f64)>> {
        if !self.any_immediate_enabled(&m) {
            return Ok(vec![(m, 1.0)]);
        }
        let mut out: Vec<(Marking, f64)> = Vec::new();
        let mut stack: Vec<(Marking, f64, usize)> = vec![(m, 1.0, 0)];
        while let Some((m, p, depth)) = stack.pop() {
            if depth > opts.max_vanishing_depth {
                return Err(Error::model(
                    "vanishing-marking chain exceeded depth limit: immediate-transition loop?",
                ));
            }
            // Enabled immediate transitions of the highest priority.
            let mut best_priority = None;
            for (t, tr) in self.transitions.iter().enumerate() {
                if let Timing::Immediate { priority, .. } = tr.timing {
                    if self.enabled(t, &m) {
                        best_priority =
                            Some(best_priority.map_or(priority, |b: u32| b.max(priority)));
                    }
                }
            }
            let Some(best) = best_priority else {
                out.push((m, p));
                continue;
            };
            *eliminated += 1;
            let firing: Vec<(usize, f64)> = self
                .transitions
                .iter()
                .enumerate()
                .filter_map(|(t, tr)| match tr.timing {
                    Timing::Immediate { weight, priority }
                        if priority == best && self.enabled(t, &m) =>
                    {
                        Some((t, weight))
                    }
                    _ => None,
                })
                .collect();
            let total_weight: f64 = firing.iter().map(|(_, w)| w).sum();
            for (t, w) in firing {
                let next = self.fire(t, &m);
                stack.push((next, p * w / total_weight, depth + 1));
            }
        }
        // Deterministic merge: stable-sort the tangible targets
        // lexicographically, then sum duplicates in that order. The
        // DFS above is itself deterministic per input marking, so the
        // resulting distribution is a pure function of `m`.
        out.sort_by(|a, b| a.0.cmp(&b.0));
        let mut merged: Vec<(Marking, f64)> = Vec::with_capacity(out.len());
        for (m, p) in out {
            match merged.last_mut() {
                Some((last, q)) if *last == m => *q += p,
                _ => merged.push((m, p)),
            }
        }
        Ok(merged)
    }
}

/// The solved net: tangible markings plus the underlying CTMC.
///
/// Borrow of the [`Spn`] is kept for marking-dependent throughput
/// queries.
#[derive(Debug)]
pub struct SolvedSpn<'a> {
    spn: &'a Spn,
    markings: Vec<Marking>,
    state_ids: Vec<StateId>,
    ctmc: Ctmc,
    initial: Vec<f64>,
    stats: ReachStats,
}

impl SolvedSpn<'_> {
    /// Number of tangible markings (CTMC states).
    pub fn num_markings(&self) -> usize {
        self.markings.len()
    }

    /// The tangible markings, indexed like CTMC states.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// The underlying CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// Generation telemetry: markings, arcs, vanishing chains
    /// eliminated, worker/shard utilization.
    pub fn reach_stats(&self) -> &ReachStats {
        &self.stats
    }

    /// Initial distribution over tangible markings (a vanishing initial
    /// marking spreads over its tangible successors).
    pub fn initial_distribution(&self) -> &[f64] {
        &self.initial
    }

    /// Steady-state expected value of a marking reward function.
    ///
    /// # Errors
    ///
    /// Propagates CTMC steady-state errors (e.g. reducible nets).
    pub fn steady_state_expected_reward<F>(&self, reward: F) -> Result<f64>
    where
        F: Fn(&Marking) -> f64,
    {
        let rewards: Vec<f64> = self.markings.iter().map(reward).collect();
        self.ctmc.expected_steady_state_reward(&rewards)
    }

    /// Expected value of a marking reward function at time `t`,
    /// starting from the net's initial marking.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver errors.
    pub fn transient_expected_reward<F>(&self, reward: F, t: f64) -> Result<f64>
    where
        F: Fn(&Marking) -> f64,
    {
        let rewards: Vec<f64> = self.markings.iter().map(reward).collect();
        self.ctmc.expected_reward_at(&self.initial, &rewards, t)
    }

    /// Expected reward accumulated over `[0, t]` from the initial
    /// marking: `E[∫₀ᵗ r(M_u) du]`.
    ///
    /// With an indicator reward this is the expected total time spent
    /// in the matching markings — e.g. cumulative downtime over a
    /// mission.
    ///
    /// # Errors
    ///
    /// Propagates accumulated-solver errors.
    pub fn accumulated_expected_reward<F>(&self, reward: F, t: f64) -> Result<f64>
    where
        F: Fn(&Marking) -> f64,
    {
        let rewards: Vec<f64> = self.markings.iter().map(reward).collect();
        self.ctmc
            .expected_accumulated_reward(&self.initial, &rewards, t)
    }

    /// Steady-state expected token count in a place.
    ///
    /// # Errors
    ///
    /// Propagates steady-state errors.
    pub fn expected_tokens(&self, place: crate::PlaceId) -> Result<f64> {
        self.steady_state_expected_reward(|m| f64::from(m[place.index()]))
    }

    /// Steady-state throughput of a **timed** transition:
    /// `Σ_m π_m · rate_t(m) · 1[t enabled in m]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for immediate transitions and
    /// propagates solver errors.
    pub fn throughput(&self, t: TransitionId) -> Result<f64> {
        let pi = self.ctmc.steady_state()?;
        self.throughput_given(&pi, t)
    }

    /// [`SolvedSpn::throughput`] under a caller-supplied stationary
    /// distribution — avoids re-solving the chain when several measures
    /// share one `π`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for immediate transitions,
    /// [`Error::InvalidParameter`] for a `π` of the wrong length, and
    /// propagates rate-evaluation errors.
    pub fn throughput_given(&self, pi: &[f64], t: TransitionId) -> Result<f64> {
        let idx = t.index();
        if !matches!(self.spn.transitions[idx].timing, Timing::Timed(_)) {
            return Err(Error::model(format!(
                "throughput of immediate transition '{}' is not defined; attach the measure \
                 to a timed transition",
                self.spn.transitions[idx].name
            )));
        }
        if pi.len() != self.markings.len() {
            return Err(Error::invalid(format!(
                "distribution length {} != number of markings {}",
                pi.len(),
                self.markings.len()
            )));
        }
        let mut total = 0.0;
        for (i, m) in self.markings.iter().enumerate() {
            if self.spn.enabled(idx, m) {
                total += pi[i] * self.spn.rate_of(idx, m)?;
            }
        }
        Ok(total)
    }

    /// Mean time until the net first enters a marking satisfying
    /// `predicate`, from the initial marking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if no reachable marking satisfies the
    /// predicate, and propagates MTTF solver errors.
    pub fn mean_time_to<F>(&self, predicate: F) -> Result<f64>
    where
        F: Fn(&Marking) -> bool,
    {
        let absorbing: Vec<StateId> = self
            .markings
            .iter()
            .zip(&self.state_ids)
            .filter(|(m, _)| predicate(m))
            .map(|(_, id)| *id)
            .collect();
        if absorbing.is_empty() {
            return Err(Error::model(
                "no reachable marking satisfies the target predicate",
            ));
        }
        self.ctmc.mttf(&self.initial, &absorbing)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Marking, ReachabilityOptions, SpnBuilder};

    /// M/M/1/K queue as an SPN; closed-form stationary distribution.
    fn mm1k(lambda: f64, mu: f64, k: u32) -> crate::Spn {
        let mut b = SpnBuilder::new();
        let queue = b.place("queue", 0);
        let arrive = b.timed("arrive", lambda);
        let serve = b.timed("serve", mu);
        b.output_arc(arrive, queue, 1);
        b.input_arc(serve, queue, 1);
        b.inhibitor_arc(arrive, queue, k);
        b.build().unwrap()
    }

    #[test]
    fn mm1k_state_space_and_distribution() {
        let (l, m, k) = (1.0, 2.0, 4u32);
        let spn = mm1k(l, m, k);
        let solved = spn.solve().unwrap();
        assert_eq!(solved.num_markings(), (k + 1) as usize);
        let rho: f64 = l / m;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        // P(queue nonempty):
        let p_busy = solved
            .steady_state_expected_reward(|mk: &Marking| if mk[0] > 0 { 1.0 } else { 0.0 })
            .unwrap();
        let expected = (1..=k).map(|i| rho.powi(i as i32)).sum::<f64>() / norm;
        assert!((p_busy - expected).abs() < 1e-12);
        // Expected tokens:
        let en = solved
            .expected_tokens(crate::PlaceId::index_test(0))
            .unwrap();
        let expected_n = (0..=k).map(|i| i as f64 * rho.powi(i as i32)).sum::<f64>() / norm;
        assert!((en - expected_n).abs() < 1e-12);
    }

    #[test]
    fn throughput_balance() {
        // In steady state, arrival throughput == service throughput.
        let spn = mm1k(1.0, 2.0, 3);
        let solved = spn.solve().unwrap();
        let arrive = crate::TransitionId::index_test(0);
        let serve = crate::TransitionId::index_test(1);
        let ta = solved.throughput(arrive).unwrap();
        let ts = solved.throughput(serve).unwrap();
        assert!((ta - ts).abs() < 1e-12);
        assert!(ta > 0.0 && ta < 1.0); // below offered load due to blocking
    }

    #[test]
    fn immediate_transitions_fork_probabilistically() {
        // Token arrives, then immediately routes 30/70 to two places.
        let mut b = SpnBuilder::new();
        let inbox = b.place("inbox", 0);
        let left = b.place("left", 0);
        let right = b.place("right", 0);
        let arrive = b.timed("arrive", 1.0);
        b.output_arc(arrive, inbox, 1);
        let go_left = b.immediate("go-left", 0.3, 0);
        b.input_arc(go_left, inbox, 1);
        b.output_arc(go_left, left, 1);
        let go_right = b.immediate("go-right", 0.7, 0);
        b.input_arc(go_right, inbox, 1);
        b.output_arc(go_right, right, 1);
        // Drain both sides so a steady state exists.
        let dl = b.timed("drain-left", 5.0);
        b.input_arc(dl, left, 1);
        let dr = b.timed("drain-right", 5.0);
        b.input_arc(dr, right, 1);
        // Caps to keep the space finite.
        b.inhibitor_arc(arrive, left, 3);
        b.inhibitor_arc(arrive, right, 3);
        let spn = b.build().unwrap();
        let solved = spn.solve().unwrap();
        // No tangible marking retains an inbox token.
        assert!(solved.markings().iter().all(|m| m[0] == 0));
        let tl = solved
            .throughput(crate::TransitionId::index_test(3))
            .unwrap();
        let tr = solved
            .throughput(crate::TransitionId::index_test(4))
            .unwrap();
        assert!(
            (tl / (tl + tr) - 0.3).abs() < 1e-9,
            "left share = {}",
            tl / (tl + tr)
        );
        // Vanishing markings were actually eliminated along the way.
        assert!(solved.reach_stats().vanishing_eliminated > 0);
    }

    #[test]
    fn priorities_preempt_lower_weights() {
        // Two immediates: priority 1 must always win over priority 0.
        let mut b = SpnBuilder::new();
        let inbox = b.place("inbox", 0);
        let hi = b.place("hi", 0);
        let lo = b.place("lo", 0);
        let arrive = b.timed("arrive", 1.0);
        b.output_arc(arrive, inbox, 1);
        let t_hi = b.immediate("hi-route", 1.0, 1);
        b.input_arc(t_hi, inbox, 1);
        b.output_arc(t_hi, hi, 1);
        let t_lo = b.immediate("lo-route", 100.0, 0);
        b.input_arc(t_lo, inbox, 1);
        b.output_arc(t_lo, lo, 1);
        let drain = b.timed("drain", 10.0);
        b.input_arc(drain, hi, 1);
        b.inhibitor_arc(arrive, hi, 2);
        let spn = b.build().unwrap();
        let solved = spn.solve().unwrap();
        // The low-priority route never fires: place "lo" stays empty.
        assert!(solved.markings().iter().all(|m| m[2] == 0));
    }

    #[test]
    fn vanishing_loop_detected() {
        // Two immediates shuffling a token between two places forever.
        let mut b = SpnBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t1 = b.immediate("pq", 1.0, 0);
        b.input_arc(t1, p, 1);
        b.output_arc(t1, q, 1);
        let t2 = b.immediate("qp", 1.0, 0);
        b.input_arc(t2, q, 1);
        b.output_arc(t2, p, 1);
        let spn = b.build().unwrap();
        assert!(spn.solve().is_err());
    }

    #[test]
    fn state_space_cap() {
        // Unbounded net trips the cap.
        let mut b = SpnBuilder::new();
        let p = b.place("p", 0);
        let t = b.timed("grow", 1.0);
        b.output_arc(t, p, 1);
        let spn = b.build().unwrap();
        let opts = ReachabilityOptions {
            max_markings: 100,
            ..Default::default()
        };
        assert!(spn.solve_with(&opts).is_err());
        // The parallel path trips the same cap.
        let opts = ReachabilityOptions {
            max_markings: 100,
            jobs: 2,
            ..Default::default()
        };
        assert!(spn.solve_with(&opts).is_err());
    }

    #[test]
    fn mean_time_to_full_queue() {
        // M/M/1/2: time from empty until the queue first fills.
        let spn = mm1k(1.0, 1.0, 2);
        let solved = spn.solve().unwrap();
        let mtt = solved.mean_time_to(|m: &Marking| m[0] == 2).unwrap();
        // Birth-death first-passage 0 -> 2 with λ = μ = 1:
        // E[T_0->2] = 3 (standard result: sum over levels).
        assert!((mtt - 3.0).abs() < 1e-9, "{mtt}");
        // Predicate never satisfied:
        assert!(solved.mean_time_to(|m: &Marking| m[0] > 99).is_err());
    }

    #[test]
    fn accumulated_reward_long_run_matches_steady_state() {
        let spn = mm1k(1.0, 2.0, 3);
        let solved = spn.solve().unwrap();
        let busy = |m: &Marking| if m[0] > 0 { 1.0 } else { 0.0 };
        let p_busy = solved.steady_state_expected_reward(busy).unwrap();
        let t = 20_000.0;
        let acc = solved.accumulated_expected_reward(busy, t).unwrap();
        assert!(
            (acc / t - p_busy).abs() < 1e-3,
            "time-average {} vs steady-state {p_busy}",
            acc / t
        );
        // Zero-horizon accumulation is zero.
        assert_eq!(solved.accumulated_expected_reward(busy, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn marking_dependent_service_rates() {
        // M/M/2/3: service rate = min(n, 2) * mu.
        let (l, mu) = (1.0, 1.0);
        let mut b = SpnBuilder::new();
        let q = b.place("q", 0);
        let arrive = b.timed("arrive", l);
        b.output_arc(arrive, q, 1);
        b.inhibitor_arc(arrive, q, 3);
        let serve = b.timed_fn("serve", move |m: &Marking| (m[0].min(2)) as f64 * mu);
        b.input_arc(serve, q, 1);
        let spn = b.build().unwrap();
        let solved = spn.solve().unwrap();
        // Closed-form M/M/2/3: pi ∝ [1, a, a²/2, a³/4] with a = l/mu = 1.
        let weights = [1.0, 1.0, 0.5, 0.25];
        let norm: f64 = weights.iter().sum();
        let p_empty = solved
            .steady_state_expected_reward(|m: &Marking| if m[0] == 0 { 1.0 } else { 0.0 })
            .unwrap();
        assert!((p_empty - weights[0] / norm).abs() < 1e-12);
    }

    #[test]
    fn parallel_generation_is_bitwise_identical() {
        // The canonical numbering makes worker count unobservable: the
        // generator matrices must be equal entry for entry, bit for
        // bit. (The full randomized version lives in tests/prop_reach.)
        let spn = mm1k(1.3, 2.1, 6);
        let seq = spn.solve().unwrap();
        for jobs in [2usize, 4] {
            let opts = ReachabilityOptions {
                jobs,
                shard_bits: 2,
                ..Default::default()
            };
            let par = spn.solve_with(&opts).unwrap();
            assert_eq!(seq.markings(), par.markings());
            assert_eq!(seq.ctmc().generator(), par.ctmc().generator());
            assert_eq!(seq.initial_distribution(), par.initial_distribution());
            assert_eq!(par.reach_stats().workers, jobs);
            assert_eq!(par.reach_stats().shards, 4);
            assert_eq!(
                par.reach_stats().per_worker_markings.iter().sum::<u64>(),
                par.reach_stats().markings as u64
            );
        }
    }

    #[test]
    fn reach_stats_populated() {
        let spn = mm1k(1.0, 2.0, 4);
        let solved = spn.solve().unwrap();
        let s = solved.reach_stats();
        assert_eq!(s.markings, 5);
        assert_eq!(s.arcs, 8); // birth-death chain on 5 states
        assert_eq!(s.workers, 1);
        assert_eq!(s.shards, 1);
        assert_eq!(s.max_shard_occupancy, 5);
        assert_eq!(s.per_worker_markings, vec![5]);
    }

    #[test]
    fn throughput_given_validates_pi_length() {
        let spn = mm1k(1.0, 2.0, 3);
        let solved = spn.solve().unwrap();
        let arrive = crate::TransitionId::index_test(0);
        assert!(solved.throughput_given(&[1.0], arrive).is_err());
        let pi = solved.ctmc().steady_state().unwrap();
        let a = solved.throughput_given(&pi, arrive).unwrap();
        let b = solved.throughput(arrive).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
