//! Reachability-graph generation, vanishing-marking elimination, and
//! CTMC-backed measures.

use crate::model::{Spn, Timing, TransitionId};
use crate::Marking;
use reliab_core::{Error, Result};
use reliab_markov::{Ctmc, CtmcBuilder, StateId};
use std::collections::HashMap;

/// Options for reachability-graph generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachabilityOptions {
    /// Hard cap on tangible markings (state-space explosion guard).
    pub max_markings: usize,
    /// Hard cap on vanishing-chain length while eliminating immediate
    /// transitions (catches immediate-transition loops).
    pub max_vanishing_depth: usize,
}

impl Default for ReachabilityOptions {
    fn default() -> Self {
        ReachabilityOptions {
            max_markings: 1_000_000,
            max_vanishing_depth: 10_000,
        }
    }
}

impl Spn {
    /// Generates the reachability graph, eliminates vanishing markings,
    /// and builds the underlying CTMC, with default options.
    ///
    /// # Errors
    ///
    /// See [`Spn::solve_with`].
    pub fn solve(&self) -> Result<SolvedSpn<'_>> {
        self.solve_with(&ReachabilityOptions::default())
    }

    /// [`Spn::solve`] with explicit limits.
    ///
    /// # Errors
    ///
    /// * [`Error::Model`] — state-space cap exceeded, vanishing loop
    ///   detected, or a marking-dependent rate misbehaved.
    pub fn solve_with(&self, opts: &ReachabilityOptions) -> Result<SolvedSpn<'_>> {
        let mut markings: Vec<Marking> = Vec::new();
        let mut index: HashMap<Marking, usize> = HashMap::new();
        let mut queue: Vec<usize> = Vec::new();
        // CTMC transitions between tangible markings.
        let mut arcs: Vec<(usize, usize, f64)> = Vec::new();

        let intern = |m: Marking,
                      markings: &mut Vec<Marking>,
                      index: &mut HashMap<Marking, usize>,
                      queue: &mut Vec<usize>|
         -> Result<usize> {
            if let Some(&i) = index.get(&m) {
                return Ok(i);
            }
            if markings.len() >= opts.max_markings {
                return Err(Error::model(format!(
                    "reachability exceeded {} tangible markings",
                    opts.max_markings
                )));
            }
            let i = markings.len();
            index.insert(m.clone(), i);
            markings.push(m);
            queue.push(i);
            Ok(i)
        };

        // Resolve the initial marking (it may be vanishing).
        let init_dist = self.resolve_vanishing(self.initial.clone(), opts)?;
        let mut initial_pairs: Vec<(usize, f64)> = Vec::new();
        for (m, p) in init_dist {
            let i = intern(m, &mut markings, &mut index, &mut queue)?;
            initial_pairs.push((i, p));
        }

        while let Some(i) = queue.pop() {
            let m = markings[i].clone();
            for t in 0..self.transitions.len() {
                if !matches!(self.transitions[t].timing, Timing::Timed(_)) {
                    continue;
                }
                if !self.enabled(t, &m) {
                    continue;
                }
                let rate = self.rate_of(t, &m)?;
                let fired = self.fire(t, &m);
                for (target, p) in self.resolve_vanishing(fired, opts)? {
                    let j = intern(target, &mut markings, &mut index, &mut queue)?;
                    if j != i {
                        arcs.push((i, j, rate * p));
                    }
                }
            }
        }

        // Build the CTMC.
        let mut b = CtmcBuilder::new();
        let ids: Vec<StateId> = markings
            .iter()
            .map(|m| b.state(&format!("{m:?}")))
            .collect();
        for (f, t, r) in arcs {
            b.transition(ids[f], ids[t], r)?;
        }
        let ctmc = b.build()?;
        let mut initial = vec![0.0; markings.len()];
        for (i, p) in initial_pairs {
            initial[i] += p;
        }
        Ok(SolvedSpn {
            spn: self,
            markings,
            state_ids: ids,
            ctmc,
            initial,
        })
    }

    /// Pushes a (possibly vanishing) marking through immediate
    /// transitions until only tangible markings remain, returning the
    /// tangible distribution.
    fn resolve_vanishing(
        &self,
        m: Marking,
        opts: &ReachabilityOptions,
    ) -> Result<Vec<(Marking, f64)>> {
        let mut out: Vec<(Marking, f64)> = Vec::new();
        let mut stack: Vec<(Marking, f64, usize)> = vec![(m, 1.0, 0)];
        while let Some((m, p, depth)) = stack.pop() {
            if depth > opts.max_vanishing_depth {
                return Err(Error::model(
                    "vanishing-marking chain exceeded depth limit: immediate-transition loop?",
                ));
            }
            // Enabled immediate transitions of the highest priority.
            let mut best_priority = None;
            for (t, tr) in self.transitions.iter().enumerate() {
                if let Timing::Immediate { priority, .. } = tr.timing {
                    if self.enabled(t, &m) {
                        best_priority =
                            Some(best_priority.map_or(priority, |b: u32| b.max(priority)));
                    }
                }
            }
            let Some(best) = best_priority else {
                out.push((m, p));
                continue;
            };
            let firing: Vec<(usize, f64)> = self
                .transitions
                .iter()
                .enumerate()
                .filter_map(|(t, tr)| match tr.timing {
                    Timing::Immediate { weight, priority }
                        if priority == best && self.enabled(t, &m) =>
                    {
                        Some((t, weight))
                    }
                    _ => None,
                })
                .collect();
            let total_weight: f64 = firing.iter().map(|(_, w)| w).sum();
            for (t, w) in firing {
                let next = self.fire(t, &m);
                stack.push((next, p * w / total_weight, depth + 1));
            }
        }
        // Merge duplicate tangible markings.
        let mut merged: HashMap<Marking, f64> = HashMap::new();
        for (m, p) in out {
            *merged.entry(m).or_insert(0.0) += p;
        }
        Ok(merged.into_iter().collect())
    }
}

/// The solved net: tangible markings plus the underlying CTMC.
///
/// Borrow of the [`Spn`] is kept for marking-dependent throughput
/// queries.
#[derive(Debug)]
pub struct SolvedSpn<'a> {
    spn: &'a Spn,
    markings: Vec<Marking>,
    state_ids: Vec<StateId>,
    ctmc: Ctmc,
    initial: Vec<f64>,
}

impl SolvedSpn<'_> {
    /// Number of tangible markings (CTMC states).
    pub fn num_markings(&self) -> usize {
        self.markings.len()
    }

    /// The tangible markings, indexed like CTMC states.
    pub fn markings(&self) -> &[Marking] {
        &self.markings
    }

    /// The underlying CTMC.
    pub fn ctmc(&self) -> &Ctmc {
        &self.ctmc
    }

    /// Initial distribution over tangible markings (a vanishing initial
    /// marking spreads over its tangible successors).
    pub fn initial_distribution(&self) -> &[f64] {
        &self.initial
    }

    /// Steady-state expected value of a marking reward function.
    ///
    /// # Errors
    ///
    /// Propagates CTMC steady-state errors (e.g. reducible nets).
    pub fn steady_state_expected_reward<F>(&self, reward: F) -> Result<f64>
    where
        F: Fn(&Marking) -> f64,
    {
        let rewards: Vec<f64> = self.markings.iter().map(reward).collect();
        self.ctmc.expected_steady_state_reward(&rewards)
    }

    /// Expected value of a marking reward function at time `t`,
    /// starting from the net's initial marking.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver errors.
    pub fn transient_expected_reward<F>(&self, reward: F, t: f64) -> Result<f64>
    where
        F: Fn(&Marking) -> f64,
    {
        let rewards: Vec<f64> = self.markings.iter().map(reward).collect();
        self.ctmc.expected_reward_at(&self.initial, &rewards, t)
    }

    /// Expected reward accumulated over `[0, t]` from the initial
    /// marking: `E[∫₀ᵗ r(M_u) du]`.
    ///
    /// With an indicator reward this is the expected total time spent
    /// in the matching markings — e.g. cumulative downtime over a
    /// mission.
    ///
    /// # Errors
    ///
    /// Propagates accumulated-solver errors.
    pub fn accumulated_expected_reward<F>(&self, reward: F, t: f64) -> Result<f64>
    where
        F: Fn(&Marking) -> f64,
    {
        let rewards: Vec<f64> = self.markings.iter().map(reward).collect();
        self.ctmc
            .expected_accumulated_reward(&self.initial, &rewards, t)
    }

    /// Steady-state expected token count in a place.
    ///
    /// # Errors
    ///
    /// Propagates steady-state errors.
    pub fn expected_tokens(&self, place: crate::PlaceId) -> Result<f64> {
        self.steady_state_expected_reward(|m| f64::from(m[place.index()]))
    }

    /// Steady-state throughput of a **timed** transition:
    /// `Σ_m π_m · rate_t(m) · 1[t enabled in m]`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for immediate transitions and
    /// propagates solver errors.
    pub fn throughput(&self, t: TransitionId) -> Result<f64> {
        let idx = t.index();
        if !matches!(self.spn.transitions[idx].timing, Timing::Timed(_)) {
            return Err(Error::model(format!(
                "throughput of immediate transition '{}' is not defined; attach the measure \
                 to a timed transition",
                self.spn.transitions[idx].name
            )));
        }
        let pi = self.ctmc.steady_state()?;
        let mut total = 0.0;
        for (i, m) in self.markings.iter().enumerate() {
            if self.spn.enabled(idx, m) {
                total += pi[i] * self.spn.rate_of(idx, m)?;
            }
        }
        Ok(total)
    }

    /// Mean time until the net first enters a marking satisfying
    /// `predicate`, from the initial marking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] if no reachable marking satisfies the
    /// predicate, and propagates MTTF solver errors.
    pub fn mean_time_to<F>(&self, predicate: F) -> Result<f64>
    where
        F: Fn(&Marking) -> bool,
    {
        let absorbing: Vec<StateId> = self
            .markings
            .iter()
            .zip(&self.state_ids)
            .filter(|(m, _)| predicate(m))
            .map(|(_, id)| *id)
            .collect();
        if absorbing.is_empty() {
            return Err(Error::model(
                "no reachable marking satisfies the target predicate",
            ));
        }
        self.ctmc.mttf(&self.initial, &absorbing)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Marking, ReachabilityOptions, SpnBuilder};

    /// M/M/1/K queue as an SPN; closed-form stationary distribution.
    fn mm1k(lambda: f64, mu: f64, k: u32) -> crate::Spn {
        let mut b = SpnBuilder::new();
        let queue = b.place("queue", 0);
        let arrive = b.timed("arrive", lambda);
        let serve = b.timed("serve", mu);
        b.output_arc(arrive, queue, 1);
        b.input_arc(serve, queue, 1);
        b.inhibitor_arc(arrive, queue, k);
        b.build().unwrap()
    }

    #[test]
    fn mm1k_state_space_and_distribution() {
        let (l, m, k) = (1.0, 2.0, 4u32);
        let spn = mm1k(l, m, k);
        let solved = spn.solve().unwrap();
        assert_eq!(solved.num_markings(), (k + 1) as usize);
        let rho: f64 = l / m;
        let norm: f64 = (0..=k).map(|i| rho.powi(i as i32)).sum();
        // P(queue nonempty):
        let p_busy = solved
            .steady_state_expected_reward(|mk: &Marking| if mk[0] > 0 { 1.0 } else { 0.0 })
            .unwrap();
        let expected = (1..=k).map(|i| rho.powi(i as i32)).sum::<f64>() / norm;
        assert!((p_busy - expected).abs() < 1e-12);
        // Expected tokens:
        let en = solved
            .expected_tokens(crate::PlaceId::index_test(0))
            .unwrap();
        let expected_n = (0..=k).map(|i| i as f64 * rho.powi(i as i32)).sum::<f64>() / norm;
        assert!((en - expected_n).abs() < 1e-12);
    }

    #[test]
    fn throughput_balance() {
        // In steady state, arrival throughput == service throughput.
        let spn = mm1k(1.0, 2.0, 3);
        let solved = spn.solve().unwrap();
        let arrive = crate::TransitionId::index_test(0);
        let serve = crate::TransitionId::index_test(1);
        let ta = solved.throughput(arrive).unwrap();
        let ts = solved.throughput(serve).unwrap();
        assert!((ta - ts).abs() < 1e-12);
        assert!(ta > 0.0 && ta < 1.0); // below offered load due to blocking
    }

    #[test]
    fn immediate_transitions_fork_probabilistically() {
        // Token arrives, then immediately routes 30/70 to two places.
        let mut b = SpnBuilder::new();
        let inbox = b.place("inbox", 0);
        let left = b.place("left", 0);
        let right = b.place("right", 0);
        let arrive = b.timed("arrive", 1.0);
        b.output_arc(arrive, inbox, 1);
        let go_left = b.immediate("go-left", 0.3, 0);
        b.input_arc(go_left, inbox, 1);
        b.output_arc(go_left, left, 1);
        let go_right = b.immediate("go-right", 0.7, 0);
        b.input_arc(go_right, inbox, 1);
        b.output_arc(go_right, right, 1);
        // Drain both sides so a steady state exists.
        let dl = b.timed("drain-left", 5.0);
        b.input_arc(dl, left, 1);
        let dr = b.timed("drain-right", 5.0);
        b.input_arc(dr, right, 1);
        // Caps to keep the space finite.
        b.inhibitor_arc(arrive, left, 3);
        b.inhibitor_arc(arrive, right, 3);
        let spn = b.build().unwrap();
        let solved = spn.solve().unwrap();
        // No tangible marking retains an inbox token.
        assert!(solved.markings().iter().all(|m| m[0] == 0));
        let tl = solved
            .throughput(crate::TransitionId::index_test(3))
            .unwrap();
        let tr = solved
            .throughput(crate::TransitionId::index_test(4))
            .unwrap();
        assert!(
            (tl / (tl + tr) - 0.3).abs() < 1e-9,
            "left share = {}",
            tl / (tl + tr)
        );
    }

    #[test]
    fn priorities_preempt_lower_weights() {
        // Two immediates: priority 1 must always win over priority 0.
        let mut b = SpnBuilder::new();
        let inbox = b.place("inbox", 0);
        let hi = b.place("hi", 0);
        let lo = b.place("lo", 0);
        let arrive = b.timed("arrive", 1.0);
        b.output_arc(arrive, inbox, 1);
        let t_hi = b.immediate("hi-route", 1.0, 1);
        b.input_arc(t_hi, inbox, 1);
        b.output_arc(t_hi, hi, 1);
        let t_lo = b.immediate("lo-route", 100.0, 0);
        b.input_arc(t_lo, inbox, 1);
        b.output_arc(t_lo, lo, 1);
        let drain = b.timed("drain", 10.0);
        b.input_arc(drain, hi, 1);
        b.inhibitor_arc(arrive, hi, 2);
        let spn = b.build().unwrap();
        let solved = spn.solve().unwrap();
        // The low-priority route never fires: place "lo" stays empty.
        assert!(solved.markings().iter().all(|m| m[2] == 0));
    }

    #[test]
    fn vanishing_loop_detected() {
        // Two immediates shuffling a token between two places forever.
        let mut b = SpnBuilder::new();
        let p = b.place("p", 1);
        let q = b.place("q", 0);
        let t1 = b.immediate("pq", 1.0, 0);
        b.input_arc(t1, p, 1);
        b.output_arc(t1, q, 1);
        let t2 = b.immediate("qp", 1.0, 0);
        b.input_arc(t2, q, 1);
        b.output_arc(t2, p, 1);
        let spn = b.build().unwrap();
        assert!(spn.solve().is_err());
    }

    #[test]
    fn state_space_cap() {
        // Unbounded net trips the cap.
        let mut b = SpnBuilder::new();
        let p = b.place("p", 0);
        let t = b.timed("grow", 1.0);
        b.output_arc(t, p, 1);
        let spn = b.build().unwrap();
        let opts = ReachabilityOptions {
            max_markings: 100,
            ..Default::default()
        };
        assert!(spn.solve_with(&opts).is_err());
    }

    #[test]
    fn mean_time_to_full_queue() {
        // M/M/1/2: time from empty until the queue first fills.
        let spn = mm1k(1.0, 1.0, 2);
        let solved = spn.solve().unwrap();
        let mtt = solved.mean_time_to(|m: &Marking| m[0] == 2).unwrap();
        // Birth-death first-passage 0 -> 2 with λ = μ = 1:
        // E[T_0->2] = 3 (standard result: sum over levels).
        assert!((mtt - 3.0).abs() < 1e-9, "{mtt}");
        // Predicate never satisfied:
        assert!(solved.mean_time_to(|m: &Marking| m[0] > 99).is_err());
    }

    #[test]
    fn accumulated_reward_long_run_matches_steady_state() {
        let spn = mm1k(1.0, 2.0, 3);
        let solved = spn.solve().unwrap();
        let busy = |m: &Marking| if m[0] > 0 { 1.0 } else { 0.0 };
        let p_busy = solved.steady_state_expected_reward(busy).unwrap();
        let t = 20_000.0;
        let acc = solved.accumulated_expected_reward(busy, t).unwrap();
        assert!(
            (acc / t - p_busy).abs() < 1e-3,
            "time-average {} vs steady-state {p_busy}",
            acc / t
        );
        // Zero-horizon accumulation is zero.
        assert_eq!(solved.accumulated_expected_reward(busy, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn marking_dependent_service_rates() {
        // M/M/2/3: service rate = min(n, 2) * mu.
        let (l, mu) = (1.0, 1.0);
        let mut b = SpnBuilder::new();
        let q = b.place("q", 0);
        let arrive = b.timed("arrive", l);
        b.output_arc(arrive, q, 1);
        b.inhibitor_arc(arrive, q, 3);
        let serve = b.timed_fn("serve", move |m: &Marking| (m[0].min(2)) as f64 * mu);
        b.input_arc(serve, q, 1);
        let spn = b.build().unwrap();
        let solved = spn.solve().unwrap();
        // Closed-form M/M/2/3: pi ∝ [1, a, a²/2, a³/4] with a = l/mu = 1.
        let weights = [1.0, 1.0, 0.5, 0.25];
        let norm: f64 = weights.iter().sum();
        let p_empty = solved
            .steady_state_expected_reward(|m: &Marking| if m[0] == 0 { 1.0 } else { 0.0 })
            .unwrap();
        assert!((p_empty - weights[0] / norm).abs() < 1e-12);
    }
}
