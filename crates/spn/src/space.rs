//! The tangible marking space without its arcs: the out-of-core
//! backbone of the streaming solver tier.
//!
//! [`Spn::tangible_space`] runs the same sequential canonical BFS as
//! the materializing generator (`Spn::solve_with`) but stores **only**
//! the packed marking arena and its intern table — no arc triplets, no
//! `Marking` clones, no CTMC. Rows of the generator are regenerated on
//! demand by [`TangibleSpace::successors`], which re-fires the enabled
//! timed transitions of one marking (eliminating vanishing markings on
//! the fly) and resolves each tangible successor back to its canonical
//! id through a read-only intern-table probe. Because the BFS interned
//! every tangible successor during construction, regeneration
//! reproduces the materialized per-row arc stream exactly — same order,
//! same duplicates, same rates — which is what makes the streaming
//! solvers differential-testable against the CSR path.

use crate::model::Spn;
use crate::reach::{cap_error, hash_marking, InternTable, ReachabilityOptions};
use crate::Marking;
use crate::{PlaceId, TransitionId};
use reliab_core::{Error, Result};
use reliab_obs as obs;
use std::time::Instant;

/// Reusable per-row scratch for [`TangibleSpace::successors`] — holds
/// the marking buffers so row regeneration allocates only when a
/// vanishing chain must be resolved (exactly like the materializing
/// generator's hot path).
#[derive(Debug, Default)]
pub struct RowBuffer {
    /// The regenerated row: `(target id, rate)` arcs in canonical
    /// emission order, self-loops dropped, parallel arcs kept separate.
    pub arcs: Vec<(u32, f64)>,
    cur: Marking,
    fired: Marking,
    vanishing: u64,
}

impl RowBuffer {
    /// An empty buffer; capacity grows to the widest row encountered.
    #[must_use]
    pub fn new() -> Self {
        RowBuffer::default()
    }
}

/// Generation telemetry for a [`TangibleSpace`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub struct SpaceStats {
    /// Tangible markings (CTMC states).
    pub markings: usize,
    /// CTMC rate triplets the materialized generator would emit
    /// (counted during the BFS; none are stored).
    pub arcs: usize,
    /// Vanishing markings expanded and eliminated during the BFS.
    pub vanishing_eliminated: u64,
    /// Wall-clock nanoseconds spent on the BFS.
    pub generation_ns: u128,
}

/// The tangible marking space of an [`Spn`] under the canonical
/// (sequential-BFS) numbering, without materialized arcs.
///
/// Construct with [`Spn::tangible_space`]; regenerate generator rows
/// with [`TangibleSpace::successors`].
pub struct TangibleSpace<'a> {
    spn: &'a Spn,
    table: InternTable,
    timed: Vec<usize>,
    has_imm: bool,
    initial_pairs: Vec<(u32, f64)>,
    opts: ReachabilityOptions,
    stats: SpaceStats,
}

impl std::fmt::Debug for TangibleSpace<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TangibleSpace")
            .field("markings", &self.stats.markings)
            .field("arcs", &self.stats.arcs)
            .finish_non_exhaustive()
    }
}

impl Spn {
    /// Generates the tangible marking space **without** storing arcs —
    /// the entry point of the streaming solver tier. The BFS, vanishing
    /// elimination, cap enforcement, and state numbering are identical
    /// to the sequential materializing generator, so state `i` here is
    /// state `i` of [`Spn::solve_with`]'s CTMC at any worker count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Spn::solve_with`]: state-space cap
    /// exceeded, vanishing loop detected, or a marking-dependent rate
    /// misbehaved.
    pub fn tangible_space(&self, opts: &ReachabilityOptions) -> Result<TangibleSpace<'_>> {
        let _span = obs::span("spn.space");
        let start = Instant::now();
        let width = self.num_places();
        let timed = self.timed_indices();
        let has_imm = self.has_immediate();
        let mut table = InternTable::new(width);
        let mut arcs = 0usize;
        let mut vanishing = 0u64;

        let intern = |table: &mut InternTable, m: &[u32]| -> Result<u32> {
            let (id, is_new) = table.intern(m, hash_marking(m));
            if is_new && table.count > opts.max_markings {
                return Err(cap_error(opts));
            }
            Ok(id)
        };

        let mut initial_pairs: Vec<(u32, f64)> = Vec::new();
        for (m, p) in self.resolve_vanishing(self.initial.clone(), opts, &mut vanishing)? {
            let i = intern(&mut table, &m)?;
            initial_pairs.push((i, p));
        }

        // The arena walk IS the BFS, exactly as in the materializing
        // generator; the only difference is that arcs are counted, not
        // collected.
        let mut cur: Marking = Vec::with_capacity(width);
        let mut fired: Marking = Vec::with_capacity(width);
        let mut i = 0usize;
        let mut level = 0u64;
        let mut level_end = table.count;
        while i < table.count {
            if i == level_end {
                if obs::trace_enabled() {
                    obs::event(
                        "spn.reach.level",
                        &[
                            ("level", level.into()),
                            ("frontier", (table.count - level_end).into()),
                            ("states", table.count.into()),
                            ("arcs", arcs.into()),
                        ],
                    );
                }
                level += 1;
                level_end = table.count;
            }
            cur.clear();
            cur.extend_from_slice(table.get(i as u32));
            for &t in &timed {
                if !self.enabled(t, &cur) {
                    continue;
                }
                let rate = self.rate_of(t, &cur)?;
                debug_assert!(rate > 0.0);
                self.fire_into(t, &cur, &mut fired);
                if has_imm && self.any_immediate_enabled(&fired) {
                    for (target, _p) in
                        self.resolve_vanishing(fired.clone(), opts, &mut vanishing)?
                    {
                        let j = intern(&mut table, &target)?;
                        if j as usize != i {
                            arcs += 1;
                        }
                    }
                } else {
                    let j = intern(&mut table, &fired)?;
                    if j as usize != i {
                        arcs += 1;
                    }
                }
            }
            i += 1;
        }

        let stats = SpaceStats {
            markings: table.count,
            arcs,
            vanishing_eliminated: vanishing,
            generation_ns: start.elapsed().as_nanos(),
        };
        obs::counter_add("spn.space.markings", stats.markings as u64);
        obs::event(
            "spn.space.done",
            &[
                ("markings", (stats.markings as u64).into()),
                ("arcs", (stats.arcs as u64).into()),
                ("vanishing_eliminated", stats.vanishing_eliminated.into()),
            ],
        );
        Ok(TangibleSpace {
            spn: self,
            table,
            timed,
            has_imm,
            initial_pairs,
            opts: *opts,
            stats,
        })
    }
}

impl TangibleSpace<'_> {
    /// Number of tangible markings (CTMC states).
    #[must_use]
    pub fn num_markings(&self) -> usize {
        self.table.count
    }

    /// The packed marking with canonical id `id` (token count per
    /// place, indexed like [`PlaceId::index`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn marking(&self, id: u32) -> &[u32] {
        self.table.get(id)
    }

    /// Initial distribution as sparse `(state, probability)` pairs (a
    /// vanishing initial marking spreads over its tangible successors).
    #[must_use]
    pub fn initial_pairs(&self) -> &[(u32, f64)] {
        &self.initial_pairs
    }

    /// Generation telemetry.
    #[must_use]
    pub fn stats(&self) -> &SpaceStats {
        &self.stats
    }

    /// Bytes resident in the space's backing stores (marking arena,
    /// intern slots, transition index, initial pairs) — deterministic
    /// accounting for the streaming tier's memory planner.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.table.resident_bytes() + self.timed.len() * 8 + self.initial_pairs.len() * 12
    }

    /// Regenerates generator row `id` into `row.arcs`: the off-diagonal
    /// `(target, rate)` arcs in the canonical emission order — firing
    /// the enabled timed transitions in declaration order, eliminating
    /// vanishing successors on the fly, dropping self-loops, keeping
    /// parallel arcs separate. Byte-for-byte the per-row slice of the
    /// materialized generator's triplet stream.
    ///
    /// # Errors
    ///
    /// Propagates marking-dependent-rate and vanishing-chain errors;
    /// an un-interned successor (impossible for a space built by
    /// [`Spn::tangible_space`]) reports an internal model error.
    pub fn successors(&self, id: u32, row: &mut RowBuffer) -> Result<()> {
        row.arcs.clear();
        row.cur.clear();
        row.cur.extend_from_slice(self.table.get(id));
        for &t in &self.timed {
            if !self.spn.enabled(t, &row.cur) {
                continue;
            }
            let rate = self.spn.rate_of(t, &row.cur)?;
            self.spn.fire_into(t, &row.cur, &mut row.fired);
            if self.has_imm && self.spn.any_immediate_enabled(&row.fired) {
                for (target, p) in
                    self.spn
                        .resolve_vanishing(row.fired.clone(), &self.opts, &mut row.vanishing)?
                {
                    let j = self.find(&target)?;
                    if j != id {
                        row.arcs.push((j, rate * p));
                    }
                }
            } else {
                let j = self.find(&row.fired)?;
                if j != id {
                    row.arcs.push((j, rate));
                }
            }
        }
        Ok(())
    }

    fn find(&self, m: &[u32]) -> Result<u32> {
        self.table.find(m, hash_marking(m)).ok_or_else(|| {
            Error::model(
                "internal error: regenerated successor marking is not in the tangible space",
            )
        })
    }

    /// Expected token count in `place` under the distribution `pi`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for a `pi` of the wrong
    /// length.
    pub fn expected_tokens_given(&self, pi: &[f64], place: PlaceId) -> Result<f64> {
        self.check_pi(pi)?;
        let idx = place.index();
        let mut total = 0.0;
        for (i, &p) in pi.iter().enumerate() {
            total += p * f64::from(self.table.get(i as u32)[idx]);
        }
        Ok(total)
    }

    /// Throughput of a **timed** transition under the distribution
    /// `pi`: `Σ_m π_m · rate_t(m) · 1[t enabled in m]` — the streaming
    /// counterpart of `SolvedSpn::throughput_given`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for immediate transitions,
    /// [`Error::InvalidParameter`] for a `pi` of the wrong length, and
    /// propagates rate-evaluation errors.
    pub fn throughput_given(&self, pi: &[f64], t: TransitionId) -> Result<f64> {
        self.check_pi(pi)?;
        let idx = t.index();
        if !self.timed.contains(&idx) {
            return Err(Error::model(format!(
                "throughput of immediate transition '{}' is not defined; attach the measure \
                 to a timed transition",
                self.spn.transitions[idx].name
            )));
        }
        let mut total = 0.0;
        let mut m: Marking = Vec::with_capacity(self.spn.num_places());
        for (i, &p) in pi.iter().enumerate() {
            m.clear();
            m.extend_from_slice(self.table.get(i as u32));
            if self.spn.enabled(idx, &m) {
                total += p * self.spn.rate_of(idx, &m)?;
            }
        }
        Ok(total)
    }

    fn check_pi(&self, pi: &[f64]) -> Result<()> {
        if pi.len() != self.table.count {
            return Err(Error::invalid(format!(
                "distribution length {} != number of markings {}",
                pi.len(),
                self.table.count
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpnBuilder;

    fn mm1k(lambda: f64, mu: f64, k: u32) -> Spn {
        let mut b = SpnBuilder::new();
        let queue = b.place("queue", 0);
        let arrive = b.timed("arrive", lambda);
        let serve = b.timed("serve", mu);
        b.output_arc(arrive, queue, 1);
        b.input_arc(serve, queue, 1);
        b.inhibitor_arc(arrive, queue, k);
        b.build().unwrap()
    }

    /// A net with immediate routing, so row regeneration exercises
    /// on-the-fly vanishing elimination.
    fn routed() -> Spn {
        let mut b = SpnBuilder::new();
        let inbox = b.place("inbox", 0);
        let left = b.place("left", 0);
        let right = b.place("right", 0);
        let arrive = b.timed("arrive", 1.0);
        b.output_arc(arrive, inbox, 1);
        let go_left = b.immediate("go-left", 0.3, 0);
        b.input_arc(go_left, inbox, 1);
        b.output_arc(go_left, left, 1);
        let go_right = b.immediate("go-right", 0.7, 0);
        b.input_arc(go_right, inbox, 1);
        b.output_arc(go_right, right, 1);
        let dl = b.timed("drain-left", 5.0);
        b.input_arc(dl, left, 1);
        let dr = b.timed("drain-right", 5.0);
        b.input_arc(dr, right, 1);
        b.inhibitor_arc(arrive, left, 3);
        b.inhibitor_arc(arrive, right, 3);
        b.build().unwrap()
    }

    /// Row regeneration must reproduce the materialized generator's
    /// per-row arc stream exactly — same targets, same rates, same
    /// order, bit for bit.
    fn assert_rows_match(spn: &Spn) {
        let opts = ReachabilityOptions::default();
        let solved = spn.solve_with(&opts).unwrap();
        let space = spn.tangible_space(&opts).unwrap();
        assert_eq!(space.num_markings(), solved.num_markings());
        for (i, m) in solved.markings().iter().enumerate() {
            assert_eq!(space.marking(i as u32), &m[..], "marking {i}");
        }
        assert_eq!(
            space.initial_pairs().len(),
            solved
                .initial_distribution()
                .iter()
                .filter(|&&p| p > 0.0)
                .count()
        );
        let gen = solved.ctmc().generator();
        let mut row = RowBuffer::new();
        let mut total_arcs = 0usize;
        for i in 0..space.num_markings() {
            space.successors(i as u32, &mut row).unwrap();
            total_arcs += row.arcs.len();
            // Merge parallel arcs like CSR does, then compare.
            let mut merged: std::collections::BTreeMap<u32, f64> = Default::default();
            for &(j, r) in &row.arcs {
                *merged.entry(j).or_insert(0.0) += r;
            }
            let csr: Vec<(usize, f64)> = gen.row(i).filter(|&(j, _)| j != i).collect();
            assert_eq!(csr.len(), merged.len(), "row {i} arc count");
            for (j, v) in csr {
                let got = merged[&(j as u32)];
                assert_eq!(got.to_bits(), v.to_bits(), "row {i} -> {j}");
            }
        }
        assert_eq!(total_arcs, space.stats().arcs);
        assert_eq!(total_arcs, solved.reach_stats().arcs);
    }

    #[test]
    fn rows_match_materialized_generator_without_immediates() {
        assert_rows_match(&mm1k(1.3, 2.1, 6));
    }

    #[test]
    fn rows_match_materialized_generator_with_vanishing_elimination() {
        let spn = routed();
        assert_rows_match(&spn);
        let space = spn.tangible_space(&ReachabilityOptions::default()).unwrap();
        assert!(space.stats().vanishing_eliminated > 0);
    }

    #[test]
    fn measures_match_solved_spn() {
        let spn = mm1k(1.0, 2.0, 4);
        let opts = ReachabilityOptions::default();
        let solved = spn.solve_with(&opts).unwrap();
        let space = spn.tangible_space(&opts).unwrap();
        let pi = solved.ctmc().steady_state().unwrap();
        let place = crate::PlaceId::index_test(0);
        let serve = crate::TransitionId::index_test(1);
        let en = space.expected_tokens_given(&pi, place).unwrap();
        let en_ref = solved.expected_tokens(place).unwrap();
        assert!((en - en_ref).abs() < 1e-12);
        let tp = space.throughput_given(&pi, serve).unwrap();
        let tp_ref = solved.throughput_given(&pi, serve).unwrap();
        assert_eq!(tp.to_bits(), tp_ref.to_bits());
        // Validation mirrors SolvedSpn.
        assert!(space.expected_tokens_given(&[1.0], place).is_err());
        assert!(space
            .throughput_given(&pi, crate::TransitionId::index_test(0))
            .is_ok());
    }

    #[test]
    fn cap_is_enforced() {
        let mut b = SpnBuilder::new();
        let p = b.place("p", 0);
        let t = b.timed("grow", 1.0);
        b.output_arc(t, p, 1);
        let spn = b.build().unwrap();
        let opts = ReachabilityOptions {
            max_markings: 100,
            ..Default::default()
        };
        assert!(spn.tangible_space(&opts).is_err());
    }

    #[test]
    fn resident_bytes_is_far_below_materialized_footprint() {
        let spn = mm1k(1.0, 2.0, 200);
        let opts = ReachabilityOptions::default();
        let space = spn.tangible_space(&opts).unwrap();
        let n = space.num_markings();
        assert_eq!(n, 201);
        // Arena is one u32 per marking here; the whole space is a few KB.
        assert!(space.resident_bytes() < 64 * 1024);
        assert!(space.resident_bytes() >= n * 4);
    }
}
