//! # reliab-spn
//!
//! Generalized stochastic Petri nets (GSPNs) / stochastic reward nets
//! (SRNs): the tutorial's high-level front end for large Markov models.
//! Instead of enumerating states by hand, the analyst describes places,
//! tokens, timed transitions (exponential rates, possibly
//! marking-dependent), immediate transitions (weights/priorities),
//! inhibitor arcs, and guards; the tool generates the reachability
//! graph, eliminates vanishing markings, and hands the resulting CTMC
//! to the `reliab-markov` solvers with reward functions defined
//! directly on markings.
//!
//! ```
//! use reliab_spn::SpnBuilder;
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! // M/M/1/3 queue as an SPN.
//! let mut b = SpnBuilder::new();
//! let queue = b.place("queue", 0);
//! let arrive = b.timed("arrive", 1.0);
//! let serve = b.timed("serve", 2.0);
//! b.output_arc(arrive, queue, 1);
//! b.input_arc(serve, queue, 1);
//! b.inhibitor_arc(arrive, queue, 3); // capacity 3
//! let spn = b.build()?;
//! let reach = spn.solve()?;
//! let util = reach.steady_state_expected_reward(|m| {
//!     if m[queue.index()] > 0 { 1.0 } else { 0.0 }
//! })?;
//! assert!(util > 0.0 && util < 1.0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod model;
mod reach;
mod space;

pub use model::{PlaceId, Spn, SpnBuilder, TransitionId};
pub use reach::{ReachStats, ReachabilityOptions, SolvedSpn};
pub use space::{RowBuffer, SpaceStats, TangibleSpace};

/// A marking: token count per place, indexed by [`PlaceId::index`].
pub type Marking = Vec<u32>;
