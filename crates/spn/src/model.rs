//! SPN structure: places, transitions, arcs, guards.

use crate::Marking;
use reliab_core::{ensure_finite_positive, Error, Result};
use std::fmt;
use std::sync::Arc;

/// Handle to a place.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PlaceId(usize);

impl PlaceId {
    /// Index into [`Marking`] vectors.
    pub fn index(self) -> usize {
        self.0
    }

    #[cfg(test)]
    pub(crate) fn index_test(i: usize) -> Self {
        PlaceId(i)
    }
}

/// Handle to a transition (timed or immediate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransitionId(usize);

impl TransitionId {
    /// Index used in throughput queries.
    pub fn index(self) -> usize {
        self.0
    }

    #[cfg(test)]
    pub(crate) fn index_test(i: usize) -> Self {
        TransitionId(i)
    }
}

/// A guard predicate evaluated against the current marking.
pub(crate) type MarkingGuard = Arc<dyn Fn(&Marking) -> bool + Send + Sync>;

/// Rate of a timed transition: constant or a function of the marking.
pub(crate) enum RateSpec {
    Constant(f64),
    MarkingDependent(Arc<dyn Fn(&Marking) -> f64 + Send + Sync>),
}

impl fmt::Debug for RateSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RateSpec::Constant(r) => write!(f, "Constant({r})"),
            RateSpec::MarkingDependent(_) => write!(f, "MarkingDependent(..)"),
        }
    }
}

pub(crate) enum Timing {
    Timed(RateSpec),
    Immediate { weight: f64, priority: u32 },
}

impl fmt::Debug for Timing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Timing::Timed(r) => write!(f, "Timed({r:?})"),
            Timing::Immediate { weight, priority } => {
                write!(f, "Immediate(weight={weight}, priority={priority})")
            }
        }
    }
}

pub(crate) struct Transition {
    pub name: String,
    pub timing: Timing,
    /// (place, multiplicity)
    pub inputs: Vec<(usize, u32)>,
    pub outputs: Vec<(usize, u32)>,
    pub inhibitors: Vec<(usize, u32)>,
    pub guard: Option<MarkingGuard>,
}

impl fmt::Debug for Transition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transition")
            .field("name", &self.name)
            .field("timing", &self.timing)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .field("inhibitors", &self.inhibitors)
            .field("guard", &self.guard.is_some())
            .finish()
    }
}

/// Builder for [`Spn`] models.
#[derive(Debug, Default)]
pub struct SpnBuilder {
    place_names: Vec<String>,
    initial: Vec<u32>,
    transitions: Vec<Transition>,
}

impl SpnBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SpnBuilder::default()
    }

    /// Adds a place with an initial token count.
    pub fn place(&mut self, name: &str, initial_tokens: u32) -> PlaceId {
        self.place_names.push(name.to_owned());
        self.initial.push(initial_tokens);
        PlaceId(self.place_names.len() - 1)
    }

    /// Adds a timed (exponential) transition with a constant rate.
    pub fn timed(&mut self, name: &str, rate: f64) -> TransitionId {
        self.transitions.push(Transition {
            name: name.to_owned(),
            timing: Timing::Timed(RateSpec::Constant(rate)),
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
            guard: None,
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds a timed transition whose rate depends on the current
    /// marking (e.g. `k`-server rates `min(m, k)·μ`).
    pub fn timed_fn<F>(&mut self, name: &str, rate: F) -> TransitionId
    where
        F: Fn(&Marking) -> f64 + Send + Sync + 'static,
    {
        self.transitions.push(Transition {
            name: name.to_owned(),
            timing: Timing::Timed(RateSpec::MarkingDependent(Arc::new(rate))),
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
            guard: None,
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds an immediate transition with the given weight and priority
    /// (higher priority fires first; among equal priorities, weights
    /// are normalized into branching probabilities).
    pub fn immediate(&mut self, name: &str, weight: f64, priority: u32) -> TransitionId {
        self.transitions.push(Transition {
            name: name.to_owned(),
            timing: Timing::Immediate { weight, priority },
            inputs: Vec::new(),
            outputs: Vec::new(),
            inhibitors: Vec::new(),
            guard: None,
        });
        TransitionId(self.transitions.len() - 1)
    }

    /// Adds an input arc (tokens consumed when the transition fires;
    /// the transition is enabled only if the place holds at least
    /// `multiplicity` tokens).
    pub fn input_arc(&mut self, t: TransitionId, p: PlaceId, multiplicity: u32) -> &mut Self {
        self.transitions[t.0].inputs.push((p.0, multiplicity));
        self
    }

    /// Adds an output arc (tokens produced on firing).
    pub fn output_arc(&mut self, t: TransitionId, p: PlaceId, multiplicity: u32) -> &mut Self {
        self.transitions[t.0].outputs.push((p.0, multiplicity));
        self
    }

    /// Adds an inhibitor arc: the transition is disabled while the
    /// place holds at least `multiplicity` tokens.
    pub fn inhibitor_arc(&mut self, t: TransitionId, p: PlaceId, multiplicity: u32) -> &mut Self {
        self.transitions[t.0].inhibitors.push((p.0, multiplicity));
        self
    }

    /// Attaches a guard predicate; the transition is enabled only where
    /// the guard is true.
    pub fn guard<F>(&mut self, t: TransitionId, guard: F) -> &mut Self
    where
        F: Fn(&Marking) -> bool + Send + Sync + 'static,
    {
        self.transitions[t.0].guard = Some(Arc::new(guard));
        self
    }

    /// Finalizes the net.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Model`] for an empty net and
    /// [`Error::InvalidParameter`] for non-positive constant rates,
    /// weights, or zero arc multiplicities.
    pub fn build(self) -> Result<Spn> {
        if self.place_names.is_empty() {
            return Err(Error::model("SPN has no places"));
        }
        if self.transitions.is_empty() {
            return Err(Error::model("SPN has no transitions"));
        }
        for t in &self.transitions {
            match &t.timing {
                Timing::Timed(RateSpec::Constant(r)) => {
                    ensure_finite_positive(*r, &format!("rate of transition '{}'", t.name))?;
                }
                Timing::Timed(RateSpec::MarkingDependent(_)) => {}
                Timing::Immediate { weight, .. } => {
                    ensure_finite_positive(
                        *weight,
                        &format!("weight of immediate transition '{}'", t.name),
                    )?;
                }
            }
            for (what, arcs) in [
                ("input", &t.inputs),
                ("output", &t.outputs),
                ("inhibitor", &t.inhibitors),
            ] {
                for &(p, m) in arcs.iter() {
                    if p >= self.place_names.len() {
                        return Err(Error::model(format!(
                            "{what} arc of '{}' references unknown place {p}",
                            t.name
                        )));
                    }
                    if m == 0 {
                        return Err(Error::invalid(format!(
                            "{what} arc of '{}' has zero multiplicity",
                            t.name
                        )));
                    }
                }
            }
        }
        Ok(Spn {
            place_names: self.place_names,
            initial: self.initial,
            transitions: self.transitions,
        })
    }
}

/// A validated stochastic Petri net; see [`SpnBuilder`].
#[derive(Debug)]
pub struct Spn {
    pub(crate) place_names: Vec<String>,
    pub(crate) initial: Vec<u32>,
    pub(crate) transitions: Vec<Transition>,
}

impl Spn {
    /// Number of places.
    pub fn num_places(&self) -> usize {
        self.place_names.len()
    }

    /// Number of transitions.
    pub fn num_transitions(&self) -> usize {
        self.transitions.len()
    }

    /// The initial marking.
    pub fn initial_marking(&self) -> &[u32] {
        &self.initial
    }

    /// Name of a place.
    pub fn place_name(&self, p: PlaceId) -> &str {
        &self.place_names[p.0]
    }

    /// Name of a transition.
    pub fn transition_name(&self, t: TransitionId) -> &str {
        &self.transitions[t.0].name
    }

    /// Whether transition `idx` is enabled in `m`.
    pub(crate) fn enabled(&self, idx: usize, m: &Marking) -> bool {
        let t = &self.transitions[idx];
        for &(p, mult) in &t.inputs {
            if m[p] < mult {
                return false;
            }
        }
        for &(p, mult) in &t.inhibitors {
            if m[p] >= mult {
                return false;
            }
        }
        if let Some(g) = &t.guard {
            if !g(m) {
                return false;
            }
        }
        true
    }

    /// Fires transition `idx` from `m` (must be enabled).
    pub(crate) fn fire(&self, idx: usize, m: &Marking) -> Marking {
        let t = &self.transitions[idx];
        let mut next = m.clone();
        for &(p, mult) in &t.inputs {
            next[p] -= mult;
        }
        for &(p, mult) in &t.outputs {
            next[p] += mult;
        }
        next
    }

    /// Fires transition `idx` from `src` into the reusable buffer
    /// `dst` — the allocation-free variant the state-space generator
    /// uses on its hot path.
    pub(crate) fn fire_into(&self, idx: usize, src: &[u32], dst: &mut Marking) {
        let t = &self.transitions[idx];
        dst.clear();
        dst.extend_from_slice(src);
        for &(p, mult) in &t.inputs {
            dst[p] -= mult;
        }
        for &(p, mult) in &t.outputs {
            dst[p] += mult;
        }
    }

    /// Whether the net declares any immediate transitions at all; when
    /// it does not, the generator skips vanishing resolution entirely.
    pub(crate) fn has_immediate(&self) -> bool {
        self.transitions
            .iter()
            .any(|t| matches!(t.timing, Timing::Immediate { .. }))
    }

    /// Whether any immediate transition is enabled in `m` (i.e. `m` is
    /// a vanishing marking).
    pub(crate) fn any_immediate_enabled(&self, m: &Marking) -> bool {
        self.transitions
            .iter()
            .enumerate()
            .any(|(t, tr)| matches!(tr.timing, Timing::Immediate { .. }) && self.enabled(t, m))
    }

    /// Evaluates the rate of timed transition `idx` in marking `m`.
    pub(crate) fn rate_of(&self, idx: usize, m: &Marking) -> Result<f64> {
        match &self.transitions[idx].timing {
            Timing::Timed(RateSpec::Constant(r)) => Ok(*r),
            Timing::Timed(RateSpec::MarkingDependent(f)) => {
                let r = f(m);
                if !r.is_finite() || r <= 0.0 {
                    return Err(Error::model(format!(
                        "marking-dependent rate of '{}' evaluated to {r} in marking {m:?}",
                        self.transitions[idx].name
                    )));
                }
                Ok(r)
            }
            Timing::Immediate { .. } => Err(Error::model(format!(
                "transition '{}' is immediate, not timed",
                self.transitions[idx].name
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validation() {
        assert!(SpnBuilder::new().build().is_err());
        let mut b = SpnBuilder::new();
        b.place("p", 1);
        assert!(b.build().is_err()); // no transitions

        let mut b = SpnBuilder::new();
        b.place("p", 1);
        b.timed("t", 0.0);
        assert!(b.build().is_err()); // bad rate

        let mut b = SpnBuilder::new();
        let p = b.place("p", 1);
        let t = b.timed("t", 1.0);
        b.input_arc(t, p, 0);
        assert!(b.build().is_err()); // zero multiplicity
    }

    #[test]
    fn enabling_semantics() {
        let mut b = SpnBuilder::new();
        let p = b.place("p", 2);
        let q = b.place("q", 0);
        let t = b.timed("t", 1.0);
        b.input_arc(t, p, 2);
        b.inhibitor_arc(t, q, 1);
        let spn = b.build().unwrap();
        assert!(spn.enabled(0, &vec![2, 0]));
        assert!(!spn.enabled(0, &vec![1, 0])); // not enough tokens
        assert!(!spn.enabled(0, &vec![2, 1])); // inhibited
        let next = spn.fire(0, &vec![2, 0]);
        assert_eq!(next, vec![0, 0]);
    }

    #[test]
    fn guards_and_marking_dependent_rates() {
        let mut b = SpnBuilder::new();
        let p = b.place("p", 3);
        let t = b.timed_fn("serve", |m: &Marking| 2.0 * m[0] as f64);
        b.input_arc(t, p, 1);
        b.guard(t, |m: &Marking| m[0] > 1);
        let spn = b.build().unwrap();
        assert!(spn.enabled(0, &vec![2]));
        assert!(!spn.enabled(0, &vec![1])); // guard blocks
        assert_eq!(spn.rate_of(0, &vec![3]).unwrap(), 6.0);
        // Rate must be positive when queried.
        assert!(spn.rate_of(0, &vec![0]).is_err());
    }

    #[test]
    fn names_and_counters() {
        let mut b = SpnBuilder::new();
        let p = b.place("buffer", 1);
        let t = b.timed("serve", 1.0);
        b.input_arc(t, p, 1);
        let spn = b.build().unwrap();
        assert_eq!(spn.num_places(), 1);
        assert_eq!(spn.num_transitions(), 1);
        assert_eq!(spn.place_name(p), "buffer");
        assert_eq!(spn.transition_name(t), "serve");
        assert_eq!(spn.initial_marking(), &[1]);
    }
}
