//! Minimal self-contained JSON value, parser, and serializer.
//!
//! The build environment has no network access to a crates registry, so
//! the spec layer carries its own JSON support instead of depending on
//! `serde_json`. The subset implemented is full RFC 8259 JSON on the
//! parsing side (including `\uXXXX` escapes and surrogate pairs); on
//! the output side non-finite numbers serialize as `null`.

use std::fmt::Write as _;

/// A parsed JSON document.
///
/// Objects preserve key order (insertion order of the document), which
/// keeps serialization deterministic — important because canonical spec
/// JSON doubles as a memo-cache key in the batch engine.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in document order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one
    /// exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            JsonValue::Number(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as usize)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    #[must_use]
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(x) => write_number(out, *x),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            JsonValue::Object(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Number(x)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::String(s.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::String(s)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's shortest round-trip Display is valid JSON syntax.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document, requiring it to be fully consumed.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the first
/// syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!(
            "trailing characters after JSON document at byte {}",
            p.pos
        ));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("unpaired surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("unpaired surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            s.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk =
                        std::str::from_utf8(&rest[..len]).map_err(|_| "invalid UTF-8 in string")?;
                    s.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid number")?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Convenience: builds an object from `(key, value)` pairs.
#[must_use]
pub fn object(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

/// Convenience: builds an array of strings.
#[must_use]
pub fn string_array<S: AsRef<str>>(items: &[S]) -> JsonValue {
    JsonValue::Array(
        items
            .iter()
            .map(|s| JsonValue::String(s.as_ref().to_owned()))
            .collect(),
    )
}

/// Looks up a dotted path (`"ctmc.transitions.0.rate"`) where each
/// segment is an object key or an array index.
#[must_use]
pub fn get_path<'a>(root: &'a JsonValue, path: &str) -> Option<&'a JsonValue> {
    let mut cur = root;
    for seg in path.split('.') {
        cur = match cur {
            JsonValue::Object(entries) => &entries.iter().find(|(k, _)| k == seg)?.1,
            JsonValue::Array(items) => items.get(seg.parse::<usize>().ok()?)?,
            _ => return None,
        };
    }
    Some(cur)
}

/// Replaces the number at a dotted path, erroring (with the path in the
/// message) if the path does not resolve or does not hold a number.
pub fn set_number_at_path(root: &mut JsonValue, path: &str, value: f64) -> Result<(), String> {
    let mut cur = root;
    for seg in path.split('.') {
        cur = match cur {
            JsonValue::Object(entries) => match entries.iter_mut().find(|(k, _)| k == seg) {
                Some((_, v)) => v,
                None => return Err(format!("path '{path}': no field '{seg}'")),
            },
            JsonValue::Array(items) => {
                let idx = seg
                    .parse::<usize>()
                    .map_err(|_| format!("path '{path}': '{seg}' is not an array index"))?;
                match items.get_mut(idx) {
                    Some(v) => v,
                    None => return Err(format!("path '{path}': index {idx} out of range")),
                }
            }
            _ => {
                return Err(format!(
                    "path '{path}': segment '{seg}' descends into a non-container"
                ))
            }
        };
    }
    match cur {
        JsonValue::Number(n) => {
            *n = value;
            Ok(())
        }
        _ => Err(format!("path '{path}' does not resolve to a number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("3.25").unwrap(), JsonValue::Number(3.25));
        assert_eq!(parse("-1e-3").unwrap(), JsonValue::Number(-1e-3));
        assert_eq!(parse(r#""hi""#).unwrap(), JsonValue::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, true], "d": null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&JsonValue::Null));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" \\ \u{1F600} é";
        let v = JsonValue::String(original.into());
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap().as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        // Surrogate pair for U+1F600.
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "\"abc", "{} extra"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_round_trip() {
        for &x in &[0.0, 1.0, -2.5, 0.1, 1e-10, 1234567890.0, 1.0 / 3.0] {
            let text = JsonValue::Number(x).to_json();
            assert_eq!(parse(&text).unwrap().as_f64(), Some(x), "{x}");
        }
        assert_eq!(JsonValue::Number(f64::NAN).to_json(), "null");
    }

    #[test]
    fn pretty_output_is_reparsable() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": true}, "empty": []}"#).unwrap();
        let pretty = v.to_json_pretty();
        assert!(pretty.contains("\n  \"a\": ["));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_json(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn usize_extraction_is_exact() {
        assert_eq!(parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_usize(), None);
        assert_eq!(parse("-1").unwrap().as_usize(), None);
    }
}
