//! Wire schema shared by the `reliab-serve` daemon and the CLI's
//! client mode: request/response documents discriminated by a `"kind"`
//! field, plus the structured error object both front ends emit.
//!
//! Every document is plain JSON built on [`crate::json::JsonValue`]:
//!
//! ```text
//! request:  {"kind": "solve", "model": { ...model document... },
//!            "deadline_ms": 2000, "stats": false}
//!           {"kind": "solve", "spec": "two_component"}
//! response: {"kind": "result", "spec": "two_component",
//!            "measures": {...}, "stats": {...}}
//!           {"kind": "error",
//!            "error": {"kind": "deadline_exceeded",
//!                      "message": "...", "path": "..."}}
//! ```
//!
//! The error `kind` is machine-dispatchable: it maps one-to-one onto
//! an HTTP status for the daemon ([`WireError::http_status`]) and onto
//! a process exit code for the CLI ([`WireError::exit_code`]), and a
//! test locks the two tables against each other so the front ends can
//! never disagree about severity.

use crate::json::{self, JsonValue};
use reliab_core::Error;

/// Machine-readable failure category carried by every structured
/// error, on the wire as a snake_case string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ErrorKind {
    /// Malformed JSON or a document violating the model schema
    /// ([`Error::InvalidParameter`]).
    InvalidParameter,
    /// Numerical breakdown during the solve ([`Error::Numerical`]).
    Numerical,
    /// Iteration budget exhausted ([`Error::Convergence`]).
    Convergence,
    /// Structurally defective model ([`Error::Model`]).
    Model,
    /// Operation not supported for the model class
    /// ([`Error::Unsupported`]).
    Unsupported,
    /// A file could not be read (CLI inputs, spec library).
    Io,
    /// The referenced library spec or route does not exist.
    NotFound,
    /// The wire request document itself is malformed.
    BadRequest,
    /// The request body exceeded the daemon's size cap.
    TooLarge,
    /// The request's deadline elapsed before the solve started.
    DeadlineExceeded,
    /// The admission queue was full and the request was shed.
    Overloaded,
    /// The client failed to deliver its request within the read
    /// timeout (slow-loris protection).
    SlowClient,
    /// The daemon is draining and no longer admits work.
    ShuttingDown,
    /// Any other server-side failure.
    Internal,
}

impl ErrorKind {
    /// The wire representation of the kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::InvalidParameter => "invalid_parameter",
            ErrorKind::Numerical => "numerical",
            ErrorKind::Convergence => "convergence",
            ErrorKind::Model => "model",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Io => "io",
            ErrorKind::NotFound => "not_found",
            ErrorKind::BadRequest => "bad_request",
            ErrorKind::TooLarge => "too_large",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::SlowClient => "slow_client",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::Internal => "internal",
        }
    }

    /// Parses the wire representation back into a kind.
    #[must_use]
    pub fn parse(s: &str) -> Option<ErrorKind> {
        Some(match s {
            "invalid_parameter" => ErrorKind::InvalidParameter,
            "numerical" => ErrorKind::Numerical,
            "convergence" => ErrorKind::Convergence,
            "model" => ErrorKind::Model,
            "unsupported" => ErrorKind::Unsupported,
            "io" => ErrorKind::Io,
            "not_found" => ErrorKind::NotFound,
            "bad_request" => ErrorKind::BadRequest,
            "too_large" => ErrorKind::TooLarge,
            "deadline_exceeded" => ErrorKind::DeadlineExceeded,
            "overloaded" => ErrorKind::Overloaded,
            "slow_client" => ErrorKind::SlowClient,
            "shutting_down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            _ => return None,
        })
    }

    /// Every kind, for exhaustive table tests.
    #[must_use]
    pub fn all() -> &'static [ErrorKind] {
        &[
            ErrorKind::InvalidParameter,
            ErrorKind::Numerical,
            ErrorKind::Convergence,
            ErrorKind::Model,
            ErrorKind::Unsupported,
            ErrorKind::Io,
            ErrorKind::NotFound,
            ErrorKind::BadRequest,
            ErrorKind::TooLarge,
            ErrorKind::DeadlineExceeded,
            ErrorKind::Overloaded,
            ErrorKind::SlowClient,
            ErrorKind::ShuttingDown,
            ErrorKind::Internal,
        ]
    }
}

/// The structured error document shared by the CLI (`"error"` entries
/// in `--json` batches, exit codes) and the daemon (error response
/// bodies, HTTP statuses).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Failure category.
    pub kind: ErrorKind,
    /// Human-readable description.
    pub message: String,
    /// The input the error is about — a file path for CLI batches, a
    /// library spec name or request field for the daemon.
    pub path: Option<String>,
}

impl WireError {
    /// Builds an error with no path context.
    #[must_use]
    pub fn new(kind: ErrorKind, message: impl Into<String>) -> Self {
        WireError {
            kind,
            message: message.into(),
            path: None,
        }
    }

    /// Attaches the input path/name the error refers to.
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.path = Some(path.into());
        self
    }

    /// Classifies a solver [`Error`] into its wire form. The message is
    /// the error's display form minus the categorizing prefix — the
    /// category travels in `kind` instead of being re-parsed from
    /// prose.
    #[must_use]
    pub fn from_error(e: &Error) -> Self {
        let (kind, message) = match e {
            Error::InvalidParameter(m) => (ErrorKind::InvalidParameter, m.clone()),
            Error::Numerical(m) => (ErrorKind::Numerical, m.clone()),
            Error::Convergence {
                what,
                iterations,
                residual,
            } => (
                ErrorKind::Convergence,
                format!(
                    "{what} did not converge after {iterations} iterations (residual {residual:e})"
                ),
            ),
            Error::Model(m) => (ErrorKind::Model, m.clone()),
            Error::Unsupported(m) => (ErrorKind::Unsupported, m.clone()),
            other => (ErrorKind::Internal, other.to_string()),
        };
        WireError::new(kind, message)
    }

    /// The HTTP status the daemon answers this error with.
    #[must_use]
    pub fn http_status(&self) -> u16 {
        match self.kind {
            ErrorKind::InvalidParameter | ErrorKind::Model | ErrorKind::BadRequest => 400,
            ErrorKind::NotFound => 404,
            ErrorKind::SlowClient => 408,
            ErrorKind::TooLarge => 413,
            ErrorKind::Numerical | ErrorKind::Convergence | ErrorKind::Unsupported => 422,
            ErrorKind::Overloaded => 429,
            ErrorKind::Io | ErrorKind::Internal => 500,
            ErrorKind::ShuttingDown => 503,
            ErrorKind::DeadlineExceeded => 504,
        }
    }

    /// The exit status the CLI reports when a batch slot fails with
    /// this error: `2` for usage-level mistakes (the request itself was
    /// unintelligible), `1` for everything that failed while being
    /// processed — the same severity split the daemon expresses as
    /// 4xx-at-admission vs. failed-while-solving.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self.kind {
            ErrorKind::BadRequest => 2,
            _ => 1,
        }
    }

    /// Serializes to the wire object
    /// `{"kind": ..., "message": ..., "path"?: ...}`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![
            ("kind", JsonValue::from(self.kind.as_str())),
            ("message", JsonValue::from(self.message.as_str())),
        ];
        if let Some(path) = &self.path {
            fields.push(("path", JsonValue::from(path.as_str())));
        }
        json::object(fields)
    }

    /// Parses the wire object produced by [`WireError::to_json`].
    #[must_use]
    pub fn from_json(v: &JsonValue) -> Option<WireError> {
        let kind = ErrorKind::parse(v.get("kind")?.as_str()?)?;
        let message = v.get("message")?.as_str()?.to_owned();
        let path = v.get("path").and_then(|p| p.as_str()).map(str::to_owned);
        Some(WireError {
            kind,
            message,
            path,
        })
    }
}

/// What a solve request asks the daemon to run.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestSource {
    /// A model document shipped inline, as JSON text.
    Inline(String),
    /// A named entry in the daemon's hot-reloadable spec library.
    Library(String),
}

/// A parsed `/solve` request.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveRequest {
    /// The model to solve.
    pub source: RequestSource,
    /// Per-request deadline in milliseconds, measured from admission
    /// (`None` = the daemon's default).
    pub deadline_ms: Option<u64>,
    /// Whether to include solver telemetry in the response.
    pub stats: bool,
}

impl SolveRequest {
    /// Parses a request body. Two forms are accepted: an envelope
    /// `{"kind": "solve", ...}` with either an inline `"model"` or a
    /// library `"spec"` name, or — for curl-friendliness — a bare
    /// model document, treated as an inline solve with defaults.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] of kind `bad_request` describing the
    /// offending field.
    pub fn parse(body: &str) -> Result<SolveRequest, WireError> {
        let Ok(v) = json::parse(body) else {
            // Not JSON at all: hand the raw body to the solver so the
            // failure is the *solver's* malformed-document error — the
            // same kind and message a local CLI run would report.
            return Ok(SolveRequest {
                source: RequestSource::Inline(body.to_owned()),
                deadline_ms: None,
                stats: false,
            });
        };
        let Some(kind) = v.get("kind") else {
            // A bare model document: hand the raw body to the solver
            // untouched so error byte offsets refer to what was sent.
            return Ok(SolveRequest {
                source: RequestSource::Inline(body.to_owned()),
                deadline_ms: None,
                stats: false,
            });
        };
        if kind.as_str() != Some("solve") {
            return Err(WireError::new(
                ErrorKind::BadRequest,
                format!("unknown request kind {}", kind.to_json()),
            )
            .with_path("kind"));
        }
        for (key, _) in v.as_object().into_iter().flatten() {
            if !matches!(
                key.as_str(),
                "kind" | "model" | "spec" | "deadline_ms" | "stats"
            ) {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    format!("unknown request field '{key}'"),
                )
                .with_path(key.clone()));
            }
        }
        let source = match (v.get("model"), v.get("spec")) {
            (Some(model), None) => RequestSource::Inline(model.to_json()),
            (None, Some(spec)) => match spec.as_str() {
                Some(name) => RequestSource::Library(name.to_owned()),
                None => {
                    return Err(WireError::new(
                        ErrorKind::BadRequest,
                        "'spec' must be a library spec name",
                    )
                    .with_path("spec"))
                }
            },
            (Some(_), Some(_)) => {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "request carries both 'model' and 'spec'; pick one",
                ))
            }
            (None, None) => {
                return Err(WireError::new(
                    ErrorKind::BadRequest,
                    "request needs a 'model' document or a 'spec' name",
                ))
            }
        };
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(d) => match d.as_usize() {
                Some(ms) => Some(ms as u64),
                None => {
                    return Err(WireError::new(
                        ErrorKind::BadRequest,
                        "'deadline_ms' must be a non-negative integer",
                    )
                    .with_path("deadline_ms"))
                }
            },
        };
        let stats = match v.get("stats") {
            None => false,
            Some(s) => match s.as_bool() {
                Some(b) => b,
                None => {
                    return Err(
                        WireError::new(ErrorKind::BadRequest, "'stats' must be a boolean")
                            .with_path("stats"),
                    )
                }
            },
        };
        Ok(SolveRequest {
            source,
            deadline_ms,
            stats,
        })
    }

    /// Serializes to the envelope form (the CLI client mode uses this).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![("kind", JsonValue::from("solve"))];
        match &self.source {
            RequestSource::Inline(text) => {
                let model = json::parse(text).unwrap_or_else(|_| JsonValue::String(text.clone()));
                fields.push(("model", model));
            }
            RequestSource::Library(name) => fields.push(("spec", JsonValue::from(name.as_str()))),
        }
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms", JsonValue::Number(ms as f64)));
        }
        if self.stats {
            fields.push(("stats", JsonValue::Bool(true)));
        }
        json::object(fields)
    }
}

/// Builds a successful solve response document.
#[must_use]
pub fn result_response(
    spec: Option<&str>,
    measures: JsonValue,
    stats: Option<JsonValue>,
) -> JsonValue {
    let mut fields = vec![("kind", JsonValue::from("result"))];
    if let Some(name) = spec {
        fields.push(("spec", JsonValue::from(name)));
    }
    fields.push(("measures", measures));
    if let Some(stats) = stats {
        fields.push(("stats", stats));
    }
    json::object(fields)
}

/// Builds an error response document.
#[must_use]
pub fn error_response(err: &WireError) -> JsonValue {
    json::object(vec![
        ("kind", JsonValue::from("error")),
        ("error", err.to_json()),
    ])
}

/// A parsed daemon response: the solved measures (and optional stats),
/// or the structured error.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveResponse {
    /// `{"kind": "result", ...}`.
    Result {
        /// Library spec name, when the request referenced one.
        spec: Option<String>,
        /// The solved measures document.
        measures: JsonValue,
        /// Solver telemetry, when requested.
        stats: Option<JsonValue>,
    },
    /// `{"kind": "error", ...}`.
    Error(WireError),
}

impl SolveResponse {
    /// Parses a response body produced by [`result_response`] /
    /// [`error_response`].
    ///
    /// # Errors
    ///
    /// Returns a `bad_request` [`WireError`] when the body is not a
    /// recognizable response document.
    pub fn parse(body: &str) -> Result<SolveResponse, WireError> {
        let v = json::parse(body).map_err(|e| {
            WireError::new(ErrorKind::BadRequest, format!("response is not JSON: {e}"))
        })?;
        match v.get("kind").and_then(JsonValue::as_str) {
            Some("result") => Ok(SolveResponse::Result {
                spec: v.get("spec").and_then(JsonValue::as_str).map(str::to_owned),
                measures: v.get("measures").cloned().ok_or_else(|| {
                    WireError::new(ErrorKind::BadRequest, "result lacks measures")
                })?,
                stats: v.get("stats").cloned(),
            }),
            Some("error") => {
                let err = v
                    .get("error")
                    .and_then(WireError::from_json)
                    .ok_or_else(|| {
                        WireError::new(ErrorKind::BadRequest, "error response lacks a valid error")
                    })?;
                Ok(SolveResponse::Error(err))
            }
            other => Err(WireError::new(
                ErrorKind::BadRequest,
                format!("unknown response kind {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_kinds_round_trip_the_wire() {
        for &kind in ErrorKind::all() {
            assert_eq!(ErrorKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ErrorKind::parse("no_such_kind"), None);
    }

    #[test]
    fn wire_error_json_round_trips() {
        let e = WireError::new(ErrorKind::DeadlineExceeded, "too slow").with_path("specs/x.json");
        let parsed = WireError::from_json(&e.to_json()).unwrap();
        assert_eq!(parsed, e);
        let bare = WireError::new(ErrorKind::Model, "empty tree");
        assert_eq!(WireError::from_json(&bare.to_json()).unwrap(), bare);
    }

    #[test]
    fn solver_errors_classify_by_variant() {
        let e = WireError::from_error(&Error::invalid("bad rate"));
        assert_eq!(e.kind, ErrorKind::InvalidParameter);
        assert_eq!(e.message, "bad rate");
        let e = WireError::from_error(&Error::Convergence {
            what: "SOR".into(),
            iterations: 9,
            residual: 0.5,
        });
        assert_eq!(e.kind, ErrorKind::Convergence);
        assert!(e.message.contains("9 iterations"));
    }

    #[test]
    fn severity_tables_agree_across_front_ends() {
        for &kind in ErrorKind::all() {
            let e = WireError::new(kind, "x");
            let status = e.http_status();
            assert!((400..=599).contains(&status), "{kind:?} -> {status}");
            // Usage-level on one front end means usage-level on the
            // other: exit 2 iff the daemon would 400 the raw request.
            if e.exit_code() == 2 {
                assert_eq!(status, 400, "{kind:?}");
            }
        }
    }

    #[test]
    fn bare_model_documents_are_inline_requests() {
        let body = r#"{"rbd": {"components": [], "structure": "x"}}"#;
        let req = SolveRequest::parse(body).unwrap();
        assert_eq!(req.source, RequestSource::Inline(body.to_owned()));
        assert_eq!(req.deadline_ms, None);
        assert!(!req.stats);
    }

    #[test]
    fn envelope_requests_parse_and_reject_junk() {
        let req = SolveRequest::parse(
            r#"{"kind": "solve", "spec": "two_component", "deadline_ms": 250, "stats": true}"#,
        )
        .unwrap();
        assert_eq!(req.source, RequestSource::Library("two_component".into()));
        assert_eq!(req.deadline_ms, Some(250));
        assert!(req.stats);

        for bad in [
            r#"{"kind": "solve"}"#,
            r#"{"kind": "solve", "spec": 3}"#,
            r#"{"kind": "solve", "spec": "a", "model": {}}"#,
            r#"{"kind": "solve", "spec": "a", "bogus": 1}"#,
            r#"{"kind": "solve", "spec": "a", "deadline_ms": -2}"#,
            r#"{"kind": "nonsense"}"#,
        ] {
            let err = SolveRequest::parse(bad).unwrap_err();
            assert_eq!(err.kind, ErrorKind::BadRequest, "{bad}");
        }

        // Non-JSON text is NOT rejected at the HTTP layer: it flows to
        // the solver verbatim so the error matches a local CLI run
        // (invalid_parameter, same message) instead of bad_request.
        let req = SolveRequest::parse("not json at all").unwrap();
        assert_eq!(
            req.source,
            RequestSource::Inline("not json at all".to_owned())
        );
    }

    #[test]
    fn responses_round_trip() {
        let measures = json::object(vec![("kind", "rbd".into()), ("availability", 0.99.into())]);
        let body = result_response(Some("two_component"), measures.clone(), None).to_json();
        match SolveResponse::parse(&body).unwrap() {
            SolveResponse::Result {
                spec,
                measures: m,
                stats,
            } => {
                assert_eq!(spec.as_deref(), Some("two_component"));
                assert_eq!(m, measures);
                assert!(stats.is_none());
            }
            SolveResponse::Error(e) => panic!("unexpected error {e:?}"),
        }
        let err = WireError::new(ErrorKind::Overloaded, "queue full");
        let body = error_response(&err).to_json();
        assert_eq!(
            SolveResponse::parse(&body).unwrap(),
            SolveResponse::Error(err)
        );
    }
}
