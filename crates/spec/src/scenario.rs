//! Solvers for the scenario-layer model classes: hierarchical
//! compositions, semi-Markov processes, parametric uncertainty, and
//! cut/path-set bounds.
//!
//! These classes wrap or post-process the component solvers in
//! [`crate::convert`]: a hierarchy re-solves its submodels inside a
//! damped fixed-point sweep, an uncertainty wrapper re-solves its inner
//! model once per Monte-Carlo sample, and the bounds class reuses the
//! fault-tree solver (and its BDD) for exact probabilities and dual
//! path sets. Both parallel sweeps (hierarchy submodels, uncertainty
//! samples) are bitwise deterministic at any worker count: hierarchy
//! workers write disjoint result slots, and uncertainty sampling is a
//! pure function of `(seed, sample index)` via counter-based RNG
//! streams.

use crate::convert::{
    event_probability, lifetime_from, solve_fault_tree, solve_with, SolvedMeasures,
};
use crate::json::{self, JsonValue};
use crate::report::{SolveOptions, SolveStats};
use crate::schema::{
    BoundsSpec, FaultTreeSpec, GateSpec, HierarchySpec, KOfNGateSpec, ModelSpec, PriorSpec,
    ScenarioMeasure, SemiMarkovSpec, UncertaintySpec,
};
use reliab_core::{downtime_minutes_per_year, Error, Result};
use reliab_dist::Lifetime;
use reliab_hier::{fixed_point_observed, FixedPointOptions};
use reliab_obs as obs;
use reliab_semimarkov::{SemiMarkovBuilder, SmpStateId};
use reliab_uncert::{propagate, rate_posterior, PropagationOptions, SamplingScheme};

/// Extracts the scalar a scenario layer consumes from a solved result.
fn extract_measure(m: &SolvedMeasures, which: ScenarioMeasure, ctx: &str) -> Result<f64> {
    let v = match which {
        ScenarioMeasure::Availability => m.availability(),
        ScenarioMeasure::Unreliability => m.unreliability(),
        ScenarioMeasure::Mttf => m.mttf(),
        ScenarioMeasure::Primary => m.primary_value(),
    };
    v.ok_or_else(|| {
        Error::model(format!(
            "{ctx}: solved '{}' measures carry no {}",
            m.kind(),
            which.as_str()
        ))
    })
}

fn resolve_workers(jobs: usize, work_items: usize) -> usize {
    let j = if jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        jobs
    };
    j.min(work_items).max(1)
}

// ---------------------------------------------------------------------
// Hierarchy

/// Evaluates one hierarchy submodel at the current export vector.
fn eval_submodel(
    spec: &HierarchySpec,
    base_docs: &[JsonValue],
    index_of: &dyn Fn(&str) -> usize,
    i: usize,
    x: &[f64],
    opts: &SolveOptions,
) -> Result<f64> {
    let sub = &spec.submodels[i];
    let ctx = format!("hierarchy submodel '{}'", sub.name);
    let mut doc = base_docs[i].clone();
    for imp in &sub.imports {
        json::set_number_at_path(&mut doc, &imp.path, x[index_of(&imp.from)])
            .map_err(|e| Error::model(format!("{ctx} import from '{}': {e}", imp.from)))?;
    }
    let inner = ModelSpec::from_json(&doc)
        .map_err(|e| Error::model(format!("{ctx} became invalid after imports: {e}")))?;
    let report = solve_with(&inner, opts)?;
    extract_measure(&report.measures, sub.measure, &ctx)
}

/// Solves a hierarchical composition by damped fixed-point iteration
/// over the submodel export vector.
pub(crate) fn solve_hierarchy(
    spec: &HierarchySpec,
    opts: &SolveOptions,
) -> Result<(SolvedMeasures, SolveStats)> {
    let _span = obs::span("spec.solve.hierarchy");
    let n = spec.submodels.len();
    let names: Vec<&str> = spec.submodels.iter().map(|s| s.name.as_str()).collect();
    let index_of = |name: &str| -> usize {
        names
            .iter()
            .position(|n| *n == name)
            .expect("import target validated at parse time")
    };
    let base_docs: Vec<JsonValue> = spec.submodels.iter().map(|s| s.model.to_json()).collect();

    let fp_opts = FixedPointOptions::default()
        .with_tolerance(opts.fixed_point_tol.or(spec.tolerance).unwrap_or(1e-10))
        .with_max_iterations(spec.max_iterations.unwrap_or(10_000))
        .with_damping(spec.damping.unwrap_or(1.0));
    let jobs = if opts.hier_jobs != 1 {
        opts.hier_jobs
    } else {
        spec.jobs.unwrap_or(1)
    };
    // Import-free submodels export a constant: solve them once up
    // front instead of once per sweep.
    let dynamic: Vec<usize> = (0..n)
        .filter(|&i| !spec.submodels[i].imports.is_empty())
        .collect();
    let workers = resolve_workers(jobs, dynamic.len().max(1));

    let mut fixed: Vec<Option<f64>> = vec![None; n];
    for (i, slot) in fixed.iter_mut().enumerate() {
        if spec.submodels[i].imports.is_empty() {
            *slot = Some(eval_submodel(spec, &base_docs, &index_of, i, &[], opts)?);
        }
    }

    let sweep = |x: &[f64]| -> Result<Vec<f64>> {
        let mut out: Vec<f64> = (0..n).map(|i| fixed[i].unwrap_or(0.0)).collect();
        if workers <= 1 || dynamic.len() <= 1 {
            for &i in &dynamic {
                out[i] = eval_submodel(spec, &base_docs, &index_of, i, x, opts)?;
            }
        } else {
            // Strided partition: worker w owns dynamic[w], dynamic[w +
            // workers], ... Disjoint slots, so merge order — and thus
            // the result — is independent of scheduling.
            let trace = obs::current_trace_id();
            let partial: Vec<Result<Vec<(usize, f64)>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let dynamic = &dynamic;
                        let base_docs = &base_docs;
                        let index_of = &index_of;
                        scope.spawn(move || {
                            let _trace = obs::set_trace_id(trace);
                            let mut mine = Vec::new();
                            for &i in dynamic.iter().skip(w).step_by(workers) {
                                mine.push((
                                    i,
                                    eval_submodel(spec, base_docs, index_of, i, x, opts)?,
                                ));
                            }
                            Ok(mine)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("hierarchy worker panicked"))
                    .collect()
            });
            let mut slots: Vec<Option<Result<f64>>> = (0..n).map(|_| None).collect();
            for r in partial {
                match r {
                    Ok(pairs) => {
                        for (i, v) in pairs {
                            slots[i] = Some(Ok(v));
                        }
                    }
                    Err(e) => {
                        // Attribute the error to the first unfilled
                        // dynamic slot so the failing index is
                        // deterministic.
                        for &i in &dynamic {
                            if slots[i].is_none() {
                                slots[i] = Some(Err(e));
                                break;
                            }
                        }
                    }
                }
            }
            for &i in &dynamic {
                match slots[i].take() {
                    Some(Ok(v)) => out[i] = v,
                    Some(Err(e)) => return Err(e),
                    None => return Err(Error::model("hierarchy sweep lost a submodel result")),
                }
            }
        }
        Ok(out)
    };

    let x0: Vec<f64> = spec
        .submodels
        .iter()
        .map(|s| s.initial.unwrap_or(1.0))
        .collect();
    let fp = fixed_point_observed(sweep, x0, &fp_opts, &mut |iter, residual| {
        if obs::trace_enabled() {
            obs::event(
                "hier.iteration",
                &[
                    ("iter", iter.into()),
                    ("residual", residual.into()),
                    ("submodels", n.into()),
                ],
            );
        }
    })?;

    let output = spec
        .output
        .clone()
        .unwrap_or_else(|| names[n - 1].to_owned());
    let out_idx = index_of(&output);
    let residual = fp.residuals.last().copied().unwrap_or(0.0);
    let measures = SolvedMeasures::Hierarchy {
        submodels: names
            .iter()
            .zip(&fp.values)
            .map(|(n, v)| ((*n).to_owned(), *v))
            .collect(),
        output,
        value: fp.values[out_idx],
        iterations: fp.iterations,
        residual,
    };
    let stats = SolveStats {
        iterations: fp.iterations,
        hier_iterations: Some(fp.iterations),
        hier_residual: Some(residual),
        hier_workers: Some(workers),
        ..SolveStats::default()
    };
    Ok((measures, stats))
}

// ---------------------------------------------------------------------
// Semi-Markov

/// Solves a semi-Markov specification: steady state on the embedded
/// chain, first passage, and interval availability on the phase-type
/// expansion.
pub(crate) fn solve_semi_markov(
    spec: &SemiMarkovSpec,
    opts: &SolveOptions,
) -> Result<(SolvedMeasures, SolveStats)> {
    let _span = obs::span("spec.solve.semi_markov");
    let mut builder = SemiMarkovBuilder::new();
    let mut ids: Vec<SmpStateId> = Vec::with_capacity(spec.states.len());
    for s in &spec.states {
        ids.push(builder.state(&s.name, lifetime_from(&s.sojourn)?));
    }
    let id_of = |name: &str| -> SmpStateId {
        let i = spec
            .states
            .iter()
            .position(|s| s.name == name)
            .expect("state reference validated at parse time");
        ids[i]
    };
    for t in &spec.transitions {
        builder.transition(id_of(&t.from), id_of(&t.to), t.probability)?;
    }
    let smp = builder.build()?;

    let pi = smp.steady_state()?;
    let steady_state: Vec<(String, f64)> = spec
        .states
        .iter()
        .zip(&pi)
        .map(|(s, p)| (s.name.clone(), *p))
        .collect();

    let (availability, downtime) = match &spec.up_states {
        Some(ups) => {
            let a: f64 = ups.iter().map(|u| pi[id_of(u).index()]).sum();
            (Some(a), Some(downtime_minutes_per_year(a)?))
        }
        None => (None, None),
    };

    let initial = spec.initial.as_deref().map_or(ids[0], &id_of);
    let mean_first_passage = match &spec.targets {
        Some(ts) => {
            let targets: Vec<SmpStateId> = ts.iter().map(|t| id_of(t)).collect();
            Some(smp.mean_first_passage(initial, &targets)?)
        }
        None => None,
    };

    let mut stats = SolveStats::default();
    let interval_availability = match &spec.interval_times {
        Some(times) => {
            let Some(ups) = &spec.up_states else {
                return Err(Error::model(
                    "semi_markov 'interval_times' requires 'up_states'",
                ));
            };
            let up_ids: Vec<SmpStateId> = ups.iter().map(|u| id_of(u)).collect();
            let expanded = smp.expand_to_ctmc(initial)?;
            stats.smp_expanded_states = Some(expanded.ctmc.num_states());
            let mut rows = Vec::with_capacity(times.len());
            for &t in times {
                let a = expanded.interval_availability(initial, &up_ids, t, opts.tolerance)?;
                rows.push((t, a));
            }
            Some(rows)
        }
        None => None,
    };

    let measures = SolvedMeasures::SemiMarkov {
        steady_state,
        availability,
        downtime_minutes_per_year: downtime,
        mean_first_passage,
        interval_availability,
    };
    Ok((measures, stats))
}

// ---------------------------------------------------------------------
// Uncertainty

/// Solves an uncertainty wrapper: samples the priors and propagates
/// each parameter vector through a full inner-model solve.
pub(crate) fn solve_uncertainty(
    spec: &UncertaintySpec,
    opts: &SolveOptions,
) -> Result<(SolvedMeasures, SolveStats)> {
    let _span = obs::span("spec.solve.uncertainty");
    let mut params: Vec<Box<dyn Lifetime>> = Vec::with_capacity(spec.parameters.len());
    for p in &spec.parameters {
        params.push(match &p.prior {
            PriorSpec::Dist(d) => lifetime_from(d)?,
            PriorSpec::Posterior {
                failures,
                total_time,
            } => Box::new(rate_posterior(*failures, *total_time)?),
        });
    }
    let base_doc = spec.model.to_json();
    let paths: Vec<&str> = spec.parameters.iter().map(|p| p.path.as_str()).collect();
    let measure = spec.measure;

    // The closure runs on the sampler's worker threads; re-apply the
    // ambient trace id there so inner solves stay correlated.
    let trace = obs::current_trace_id();
    let model = |values: &[f64]| -> Result<f64> {
        let _trace = obs::set_trace_id(trace);
        let mut doc = base_doc.clone();
        for (path, v) in paths.iter().zip(values) {
            json::set_number_at_path(&mut doc, path, *v)
                .map_err(|e| Error::model(format!("uncertainty parameter {e}")))?;
        }
        let inner = ModelSpec::from_json(&doc).map_err(|e| {
            Error::model(format!(
                "uncertainty inner model became invalid after sampling: {e}"
            ))
        })?;
        let report = solve_with(&inner, opts)?;
        extract_measure(&report.measures, measure, "uncertainty inner model")
    };

    let prop_opts = PropagationOptions {
        samples: opts.uncert_samples.or(spec.samples).unwrap_or(1000),
        level: spec.level.unwrap_or(0.95),
        seed: spec.seed.unwrap_or(0x5EED),
        threads: spec.jobs.unwrap_or(0),
        sampling: if spec.latin_hypercube {
            SamplingScheme::LatinHypercube
        } else {
            SamplingScheme::Random
        },
    };
    let r = propagate(&params, model, &prop_opts)?;

    let samples = r.samples.len();
    let measures = SolvedMeasures::Uncertainty {
        measure: spec.measure.as_str().to_owned(),
        mean: r.mean,
        std_dev: r.std_dev,
        ci_lower: r.interval.lower,
        ci_upper: r.interval.upper,
        level: r.interval.level,
        samples,
    };
    let stats = SolveStats {
        iterations: samples,
        uncert_samples: Some(samples),
        uncert_workers: Some(resolve_workers(prop_opts.threads, samples)),
        ..SolveStats::default()
    };
    Ok((measures, stats))
}

// ---------------------------------------------------------------------
// Bounds

/// The dual of a fault-tree gate: swapping AND/OR (and complementing
/// voting thresholds) turns minimal cut sets into minimal path sets.
fn dual_gate(g: &GateSpec) -> GateSpec {
    match g {
        GateSpec::Event(name) => GateSpec::Event(name.clone()),
        GateSpec::And { and } => GateSpec::Or {
            or: and.iter().map(dual_gate).collect(),
        },
        GateSpec::Or { or } => GateSpec::And {
            and: or.iter().map(dual_gate).collect(),
        },
        GateSpec::KOfN { k_of_n } => GateSpec::KOfN {
            k_of_n: KOfNGateSpec {
                k: k_of_n.of.len() - k_of_n.k + 1,
                of: k_of_n.of.iter().map(dual_gate).collect(),
            },
        },
    }
}

/// Event names, failure probabilities, cut/path index sets, and the
/// exact top probability — the common currency of both bounds forms.
type ResolvedSets = (
    Vec<String>,
    Vec<f64>,
    Vec<Vec<usize>>,
    Vec<Vec<usize>>,
    Option<f64>,
);

/// Maps each named set onto event indices in `names`' order. Set
/// members are validated against the declared events at parse time
/// (explicit form) or emitted by the solver itself (fault-tree form).
fn set_indices(names: &[String], sets: &[Vec<String>]) -> Vec<Vec<usize>> {
    sets.iter()
        .map(|s| {
            s.iter()
                .map(|n| {
                    names
                        .iter()
                        .position(|x| x == n)
                        .expect("set members resolve to declared events")
                })
                .collect()
        })
        .collect()
}

/// Solves a bounds specification: exact SDP/BDD probability plus
/// Esary–Proschan and truncated-enumeration brackets.
pub(crate) fn solve_bounds(
    spec: &BoundsSpec,
    opts: &SolveOptions,
) -> Result<(SolvedMeasures, SolveStats)> {
    let _span = obs::span("spec.solve.bounds");
    let order = opts.truncation_order.or(spec.truncation_order).unwrap_or(2);

    // Resolve the event list, failure probabilities, cut/path sets
    // (as index sets), and the exact top probability, from either the
    // explicit form or the inline fault tree.
    let mut stats = SolveStats::default();
    let (names, q, cuts, paths, exact): ResolvedSets;
    match &spec.fault_tree {
        Some(ft) => {
            if ft.sim.is_some() {
                return Err(Error::model(
                    "bounds 'fault_tree' cannot carry a 'sim' block",
                ));
            }
            let mut analytic = opts.clone();
            analytic.simulate = false;
            let (m, ft_stats) = solve_fault_tree(ft, &analytic)?;
            stats = ft_stats;
            let SolvedMeasures::FaultTree {
                top_event_probability,
                minimal_cut_sets,
                ..
            } = m
            else {
                return Err(Error::model(
                    "fault-tree solve returned unexpected measures",
                ));
            };
            let dual = FaultTreeSpec {
                events: ft.events.clone(),
                top: dual_gate(&ft.top),
                max_cut_sets: ft.max_cut_sets,
                var_order: ft.var_order,
                sim: None,
            };
            let (dm, _) = solve_fault_tree(&dual, &analytic)?;
            let SolvedMeasures::FaultTree {
                minimal_cut_sets: minimal_path_sets,
                ..
            } = dm
            else {
                return Err(Error::model("dual-tree solve returned unexpected measures"));
            };
            names = ft.events.iter().map(|e| e.name.clone()).collect();
            q = ft
                .events
                .iter()
                .map(event_probability)
                .collect::<Result<_>>()?;
            cuts = set_indices(&names, &minimal_cut_sets);
            paths = set_indices(&names, &minimal_path_sets);
            exact = Some(top_event_probability);
        }
        None => {
            names = spec.events.iter().map(|e| e.name.clone()).collect();
            q = spec.events.iter().map(|e| e.probability).collect();
            cuts = set_indices(&names, &spec.cut_sets);
            paths = spec
                .path_sets
                .as_deref()
                .map(|sets| set_indices(&names, sets))
                .unwrap_or_default();
            exact = Some(reliab_bounds::union_probability(&cuts, &q, names.len())?);
        }
    }

    // Esary–Proschan brackets system *reliability*; complement to the
    // unreliability this class reports.
    let (ep_lower, ep_upper) = if paths.is_empty() {
        (None, None)
    } else {
        let p_up: Vec<f64> = q.iter().map(|qi| 1.0 - qi).collect();
        let ep = reliab_bounds::ep_reliability_bounds(&paths, &cuts, &p_up)?.complement();
        (Some(ep.lower), Some(ep.upper))
    };

    // Truncated enumeration: pretend only cut sets up to `order` are
    // known and bound the unenumerated tail.
    let known: Vec<Vec<usize>> = cuts.iter().filter(|c| c.len() <= order).cloned().collect();
    let truncated = reliab_bounds::truncated_unreliability_bounds(&known, &q, order)?;

    let measures = SolvedMeasures::Bounds {
        exact,
        ep_lower,
        ep_upper,
        truncated_lower: truncated.lower,
        truncated_upper: truncated.upper,
        truncation_order: order,
        num_cut_sets: cuts.len(),
        num_path_sets: paths.len(),
    };
    stats.bounds_cut_sets = Some(cuts.len());
    stats.bounds_truncation_order = Some(order);
    Ok((measures, stats))
}

#[cfg(test)]
mod tests {
    use crate::convert::{solve_str_with, SolvedMeasures};
    use crate::report::SolveOptions;

    fn run(text: &str) -> crate::convert::SolvedMeasures {
        solve_str_with(text, &SolveOptions::default())
            .expect("spec solves")
            .measures
    }

    #[test]
    fn hierarchy_imports_reach_a_fixed_point() {
        // "disk" exports a constant availability; "sys" is a series RBD
        // whose second component's availability is imported from it.
        // Acyclic, so the fixed point is exact: 0.9 * 0.98.
        let m = run(r#"{"hierarchy": {"submodels": [
                 {"name": "disk",
                  "model": {"rbd": {"components": [{"name": "d", "availability": 0.98}],
                                    "structure": "d"}},
                  "measure": "availability"},
                 {"name": "sys",
                  "model": {"rbd": {"components": [
                              {"name": "front", "availability": 0.9},
                              {"name": "store", "availability": 1.0}],
                            "structure": {"series": ["front", "store"]}}},
                  "measure": "availability",
                  "imports": [{"from": "disk", "path": "rbd.components.1.availability"}]}
               ]}}"#);
        let SolvedMeasures::Hierarchy {
            value,
            output,
            iterations,
            ..
        } = &m
        else {
            panic!("expected hierarchy, got {}", m.kind());
        };
        assert_eq!(output, "sys");
        assert!((value - 0.9 * 0.98).abs() < 1e-12, "value = {value}");
        assert!(*iterations >= 1);
        assert_eq!(m.primary_value(), Some(*value));
    }

    #[test]
    fn hierarchy_is_bitwise_identical_across_worker_counts() {
        let spec = r#"{"hierarchy": {"submodels": [
             {"name": "a",
              "model": {"rbd": {"components": [{"name": "x", "availability": 0.95}],
                                "structure": "x"}},
              "measure": "availability"},
             {"name": "b",
              "model": {"rbd": {"components": [{"name": "y", "availability": 0.5}],
                                "structure": "y"}},
              "measure": "availability",
              "imports": [{"from": "a", "path": "rbd.components.0.availability"}]},
             {"name": "c",
              "model": {"rbd": {"components": [{"name": "z", "availability": 0.5}],
                                "structure": "z"}},
              "measure": "availability",
              "imports": [{"from": "a", "path": "rbd.components.0.availability"}]}
           ]}}"#;
        let base = solve_str_with(spec, &SolveOptions::default().with_hier_jobs(1))
            .unwrap()
            .measures
            .to_json()
            .to_json();
        for jobs in [2, 4, 8] {
            let other = solve_str_with(spec, &SolveOptions::default().with_hier_jobs(jobs))
                .unwrap()
                .measures
                .to_json()
                .to_json();
            assert_eq!(base, other, "jobs = {jobs}");
        }
    }

    #[test]
    fn semi_markov_alternating_renewal() {
        // Exponential up (mean 100) / down (mean 1): availability is
        // 100/101 and the first passage into "down" is the up sojourn.
        let m = run(r#"{"semi_markov": {
                 "states": [
                   {"name": "up", "sojourn": {"exponential": {"mean": 100.0}}},
                   {"name": "down", "sojourn": {"exponential": {"mean": 1.0}}}],
                 "transitions": [
                   {"from": "up", "to": "down", "probability": 1.0},
                   {"from": "down", "to": "up", "probability": 1.0}],
                 "initial": "up",
                 "up_states": ["up"],
                 "targets": ["down"],
                 "interval_times": [100000.0]}}"#);
        let SolvedMeasures::SemiMarkov {
            availability,
            mean_first_passage,
            interval_availability,
            ..
        } = &m
        else {
            panic!("expected semi_markov, got {}", m.kind());
        };
        let a = availability.unwrap();
        assert!((a - 100.0 / 101.0).abs() < 1e-12, "availability = {a}");
        assert!((mean_first_passage.unwrap() - 100.0).abs() < 1e-9);
        let (_, ia) = interval_availability.as_ref().unwrap()[0];
        // Over a long horizon interval availability approaches steady.
        assert!((ia - a).abs() < 1e-2, "interval = {ia}, steady = {a}");
    }

    #[test]
    fn uncertainty_with_degenerate_prior_recovers_the_point_solve() {
        // A deterministic prior pins the parameter, so every sample
        // solves the same model: mean = the point solve, std_dev = 0.
        let m = run(r#"{"uncertainty": {
                 "model": {"rbd": {"components": [{"name": "a", "availability": 0.5}],
                                   "structure": "a"}},
                 "parameters": [
                   {"path": "rbd.components.0.availability",
                    "prior": {"deterministic": {"value": 0.25}}}],
                 "measure": "availability",
                 "samples": 16}}"#);
        let SolvedMeasures::Uncertainty {
            mean,
            std_dev,
            samples,
            ..
        } = &m
        else {
            panic!("expected uncertainty, got {}", m.kind());
        };
        assert!((mean - 0.25).abs() < 1e-12, "mean = {mean}");
        assert_eq!(*std_dev, 0.0);
        assert_eq!(*samples, 16);
    }

    #[test]
    fn bounds_bracket_the_exact_probability_in_both_forms() {
        // Explicit cut/path sets for a 2-component series system
        // (fails when either fails): cuts {a},{b}; single path {a,b}.
        let m = run(r#"{"bounds": {
                 "events": [{"name": "a", "probability": 0.1},
                            {"name": "b", "probability": 0.2}],
                 "cut_sets": [["a"], ["b"]],
                 "path_sets": [["a", "b"]],
                 "truncation_order": 1}}"#);
        let SolvedMeasures::Bounds {
            exact,
            ep_lower,
            ep_upper,
            truncated_lower,
            truncated_upper,
            ..
        } = &m
        else {
            panic!("expected bounds, got {}", m.kind());
        };
        let q = exact.unwrap();
        assert!((q - (1.0 - 0.9 * 0.8)).abs() < 1e-12, "exact = {q}");
        assert!(ep_lower.unwrap() <= q + 1e-12 && q <= ep_upper.unwrap() + 1e-12);
        assert!(*truncated_lower <= q + 1e-12 && q <= truncated_upper + 1e-12);

        // Fault-tree form: the same system as an OR gate.
        let m = run(r#"{"bounds": {
                 "fault_tree": {
                   "events": [{"name": "a", "probability": 0.1},
                              {"name": "b", "probability": 0.2}],
                   "top": {"or": ["a", "b"]}}}}"#);
        let SolvedMeasures::Bounds {
            exact,
            ep_lower,
            ep_upper,
            num_cut_sets,
            num_path_sets,
            ..
        } = &m
        else {
            panic!("expected bounds, got {}", m.kind());
        };
        let q = exact.unwrap();
        assert!((q - (1.0 - 0.9 * 0.8)).abs() < 1e-12, "exact = {q}");
        assert_eq!(*num_cut_sets, 2);
        assert_eq!(*num_path_sets, 1);
        assert!(ep_lower.unwrap() <= q + 1e-12 && q <= ep_upper.unwrap() + 1e-12);
    }

    #[test]
    fn solve_options_knobs_override_the_spec() {
        // truncation_order 1 drops the order-2 cut set from the
        // enumerated part, loosening the upper bound.
        let spec = r#"{"bounds": {
             "events": [{"name": "a", "probability": 0.1},
                        {"name": "b", "probability": 0.2}],
             "cut_sets": [["a", "b"]],
             "truncation_order": 2}}"#;
        let tight = solve_str_with(spec, &SolveOptions::default()).unwrap();
        let loose =
            solve_str_with(spec, &SolveOptions::default().with_truncation_order(1)).unwrap();
        let SolvedMeasures::Bounds {
            truncated_lower: tl,
            ..
        } = tight.measures
        else {
            panic!("expected bounds");
        };
        let SolvedMeasures::Bounds {
            truncated_lower: ll,
            truncation_order,
            ..
        } = loose.measures
        else {
            panic!("expected bounds");
        };
        assert!(tl > 0.0);
        assert_eq!(ll, 0.0);
        assert_eq!(truncation_order, 1);
        assert_eq!(loose.stats.bounds_truncation_order, Some(1));
    }
}
