//! Data model for specification documents, with hand-rolled JSON
//! binding (see [`crate::json`] for why no serde).
//!
//! Parsing is strict: unknown object keys are rejected everywhere, and
//! structure/gate nodes accept either a bare string (a leaf reference)
//! or a single-key object selecting the combinator — the same grammar
//! the original serde data model (externally tagged top level, untagged
//! recursive nodes, `deny_unknown_fields`) accepted.

use crate::json::{self, JsonValue};
use reliab_core::{Error, Result};

/// A top-level model document: exactly one model class.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A reliability block diagram.
    Rbd(RbdSpec),
    /// A fault tree.
    FaultTree(FaultTreeSpec),
    /// A continuous-time Markov chain.
    Ctmc(CtmcSpec),
    /// An s-t reliability graph.
    RelGraph(RelGraphSpec),
    /// A stochastic Petri net.
    Spn(SpnSpec),
    /// A hierarchical composition of submodels with fixed-point import
    /// bindings.
    Hierarchy(HierarchySpec),
    /// A semi-Markov process with general sojourn distributions.
    SemiMarkov(SemiMarkovSpec),
    /// Parametric uncertainty propagated over an inner model.
    Uncertainty(UncertaintySpec),
    /// Esary–Proschan / truncated-SDP bounds from cut and path sets.
    Bounds(BoundsSpec),
}

/// Stochastic-Petri-net specification.
///
/// Timed transitions carry a `rate`; immediate transitions a `weight`
/// (and optional `priority`). The reachability knobs mirror
/// `reliab-spn`'s `ReachabilityOptions` and may be overridden from
/// `SolveOptions` / the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct SpnSpec {
    /// Place declarations.
    pub places: Vec<PlaceSpec>,
    /// Transition declarations.
    pub transitions: Vec<SpnTransitionSpec>,
    /// Cap on tangible markings (default 1 000 000).
    pub max_markings: Option<usize>,
    /// Worker threads for state-space generation (`0` = one per CPU;
    /// default 1, the sequential reference). Overridden by a
    /// non-default `SolveOptions::reach_jobs`.
    pub reach_jobs: Option<usize>,
    /// log2 intern-table shards for the parallel generator.
    pub shard_bits: Option<u32>,
    /// Places to report steady-state expected token counts for
    /// (default: every place).
    pub expected_tokens: Option<Vec<String>>,
    /// Timed transitions to report steady-state throughput for
    /// (default: none).
    pub throughput: Option<Vec<String>>,
    /// Solver tier hint: `"stream"` routes the solve through the
    /// streaming large-model tier (rows regenerated from the marking
    /// arena, no materialized generator); `"materialized"` is the
    /// historical CSR path. Absent means materialized unless a memory
    /// budget forces escalation. Overridden by `SolveOptions::stream`.
    pub solver: Option<SpnSolver>,
}

/// SPN solver-tier selection (the spec's `"solver"` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SpnSolver {
    /// Generate the state space and materialize the CTMC in CSR (the
    /// historical path).
    #[default]
    Materialized,
    /// Stream generator rows from the marking arena on demand.
    Stream,
}

impl SpnSolver {
    /// Parses the JSON / CLI spelling (`"materialized"`, `"stream"`).
    pub fn parse(s: &str) -> Option<SpnSolver> {
        match s {
            "materialized" | "csr" => Some(SpnSolver::Materialized),
            "stream" => Some(SpnSolver::Stream),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`SpnSolver::parse`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SpnSolver::Materialized => "materialized",
            SpnSolver::Stream => "stream",
        }
    }
}

/// One SPN place.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceSpec {
    /// Place name.
    pub name: String,
    /// Initial token count.
    pub tokens: u32,
}

/// One SPN transition (timed or immediate).
#[derive(Debug, Clone, PartialEq)]
pub struct SpnTransitionSpec {
    /// Transition name.
    pub name: String,
    /// Timed rate or immediate weight/priority.
    pub timing: SpnTimingSpec,
    /// Input arcs (tokens consumed; enablement condition).
    pub inputs: Vec<ArcSpec>,
    /// Output arcs (tokens produced).
    pub outputs: Vec<ArcSpec>,
    /// Inhibitor arcs (disabled at or above the threshold).
    pub inhibitors: Vec<ArcSpec>,
}

/// Timing of an SPN transition.
#[derive(Debug, Clone, PartialEq)]
pub enum SpnTimingSpec {
    /// Exponential transition with a constant rate.
    Timed {
        /// Firing rate (per time unit).
        rate: f64,
    },
    /// Immediate transition.
    Immediate {
        /// Branching weight among equal-priority immediates.
        weight: f64,
        /// Priority (higher fires first; default 0).
        priority: u32,
    },
}

/// One arc of an SPN transition.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcSpec {
    /// Place name.
    pub place: String,
    /// Multiplicity / inhibitor threshold (default 1).
    pub count: u32,
}

/// Reliability-graph specification.
#[derive(Debug, Clone, PartialEq)]
pub struct RelGraphSpec {
    /// Node names.
    pub nodes: Vec<String>,
    /// Edge declarations.
    pub edges: Vec<EdgeSpec>,
    /// Source terminal.
    pub source: String,
    /// Sink terminal.
    pub sink: String,
    /// Also compute all-terminal reliability (undirected graphs only).
    pub all_terminal: bool,
}

/// One graph edge (a failure-prone component).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpec {
    /// Edge name.
    pub name: String,
    /// Tail node.
    pub from: String,
    /// Head node.
    pub to: String,
    /// Probability the edge works.
    pub reliability: f64,
    /// Directed edge (default: undirected).
    pub directed: bool,
}

/// RBD specification.
#[derive(Debug, Clone, PartialEq)]
pub struct RbdSpec {
    /// Component declarations.
    pub components: Vec<RbdComponentSpec>,
    /// The block structure.
    pub structure: StructureSpec,
    /// Discrete-event simulation request: when present, the model is
    /// solved by simulation (components then need lifetime
    /// distributions) instead of the exact BDD evaluation.
    pub sim: Option<SimSpec>,
}

/// One RBD component.
///
/// Either a point `availability` or a `ttf_dist` (plus `ttr_dist` for
/// repairable components) must be given. Analytic solves use
/// `availability` directly, deriving it from the distribution means
/// (`E[ttf] / (E[ttf] + E[ttr])`) when absent; simulation requires the
/// distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct RbdComponentSpec {
    /// Component name (referenced from the structure).
    pub name: String,
    /// Steady-state availability (or any point probability of being
    /// up).
    pub availability: Option<f64>,
    /// Time-to-failure distribution (required for simulation).
    pub ttf_dist: Option<DistSpec>,
    /// Time-to-repair distribution; absent means the component is
    /// never repaired once failed.
    pub ttr_dist: Option<DistSpec>,
}

/// A lifetime/repair distribution: a single-key object selecting the
/// family, e.g. `{"exponential": {"rate": 0.001}}`.
///
/// Exponential also accepts `{"mean": m}` (normalized to `rate = 1/m`)
/// and lognormal accepts `{"mean": m, "cv2": c}` (normalized to
/// `mu`/`sigma`); [`DistSpec`] always stores — and `to_json` always
/// emits — the canonical parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistSpec {
    /// Exponential with the given rate.
    Exponential {
        /// Failure/repair rate (1 / mean).
        rate: f64,
    },
    /// Weibull.
    Weibull {
        /// Shape parameter (k > 1 = wear-out).
        shape: f64,
        /// Scale parameter (characteristic life).
        scale: f64,
    },
    /// Lognormal.
    LogNormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal.
        sigma: f64,
    },
    /// Pareto (Lomax): heavy-tailed, mean `scale/(shape-1)` for
    /// `shape > 1`.
    Pareto {
        /// Tail index.
        shape: f64,
        /// Scale parameter.
        scale: f64,
    },
    /// Gamma.
    Gamma {
        /// Shape parameter.
        shape: f64,
        /// Rate parameter (1 / scale).
        rate: f64,
    },
    /// Uniform on `[low, high]`.
    Uniform {
        /// Lower endpoint.
        low: f64,
        /// Upper endpoint.
        high: f64,
    },
    /// A deterministic (constant) duration.
    Deterministic {
        /// The constant value.
        value: f64,
    },
}

/// What a `sim` block estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMeasure {
    /// Steady-state availability (requires `horizon`).
    Availability,
    /// Mission reliability (requires `mission_time`).
    Reliability,
    /// Mean time to first system failure (requires `time_cap`).
    Mttf,
}

impl SimMeasure {
    /// Parses the JSON spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<SimMeasure> {
        match s {
            "availability" => Some(SimMeasure::Availability),
            "reliability" => Some(SimMeasure::Reliability),
            "mttf" => Some(SimMeasure::Mttf),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`SimMeasure::parse`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimMeasure::Availability => "availability",
            SimMeasure::Reliability => "reliability",
            SimMeasure::Mttf => "mttf",
        }
    }
}

/// Discrete-event simulation request attached to an RBD or fault tree.
///
/// Only `measure` and its matching time parameter are required; every
/// other knob inherits the `reliab-sim` driver default and may be
/// overridden from `SolveOptions` / the CLI (`--sim-seed` etc.), which
/// win over the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// The estimated measure.
    pub measure: SimMeasure,
    /// Trajectory length per replication (availability).
    pub horizon: Option<f64>,
    /// Mission end time (reliability).
    pub mission_time: Option<f64>,
    /// Censoring guard for non-failing replications (mttf).
    pub time_cap: Option<f64>,
    /// Master RNG seed.
    pub seed: Option<u64>,
    /// Worker threads (0 = one per CPU). Never affects results.
    pub jobs: Option<usize>,
    /// Hard replication budget.
    pub max_replications: Option<usize>,
    /// Replications to run before adaptive stopping may trigger.
    pub min_replications: Option<usize>,
    /// Relative CI half-width stopping target (0 disables adaptive
    /// stopping: exactly `max_replications` run).
    pub rel_precision: Option<f64>,
    /// Confidence level of the reported interval.
    pub confidence: Option<f64>,
    /// Batch windows per trajectory (availability variance).
    pub batches: Option<usize>,
    /// Fraction of the horizon discarded as warmup (availability).
    pub warmup_fraction: Option<f64>,
}

/// Recursive RBD structure.
#[derive(Debug, Clone, PartialEq)]
pub enum StructureSpec {
    /// Reference to a component by name.
    Component(String),
    /// Series group.
    Series {
        /// The members, all required.
        series: Vec<StructureSpec>,
    },
    /// Parallel group.
    Parallel {
        /// The members, any one suffices.
        parallel: Vec<StructureSpec>,
    },
    /// k-of-n group.
    KOfN {
        /// The `{ "k": ..., "of": [...] }` payload.
        k_of_n: KOfNSpec,
    },
}

/// Payload of a k-of-n group.
#[derive(Debug, Clone, PartialEq)]
pub struct KOfNSpec {
    /// Members required to work (RBD) / fail (fault tree).
    pub k: usize,
    /// The members.
    pub of: Vec<StructureSpec>,
}

/// Fault-tree specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTreeSpec {
    /// Basic-event declarations.
    pub events: Vec<EventSpec>,
    /// The top gate.
    pub top: GateSpec,
    /// Cap on intermediate cut sets during enumeration (default
    /// 100 000; the BDD probability itself has no such cap).
    pub max_cut_sets: Option<usize>,
    /// BDD variable-ordering hint: `"auto"`, `"input"`, `"dfs"`,
    /// `"weighted"`, or `"sift"`. Overridden by a non-`Auto`
    /// `SolveOptions::var_order`; absent means `"auto"`.
    pub var_order: Option<crate::report::VarOrder>,
    /// Discrete-event simulation request: when present, the model is
    /// solved by simulating event lifetimes (which then need
    /// distributions) instead of the exact BDD evaluation.
    pub sim: Option<SimSpec>,
}

/// One basic event.
///
/// Either a point `probability` or a `ttf_dist` (plus `ttr_dist` for
/// repairable events) must be given; the same rules as
/// [`RbdComponentSpec`] apply, with the derived analytic value being
/// the *unavailability* `E[ttr] / (E[ttf] + E[ttr])`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Event name.
    pub name: String,
    /// Failure probability.
    pub probability: Option<f64>,
    /// Time-to-failure distribution (required for simulation).
    pub ttf_dist: Option<DistSpec>,
    /// Time-to-repair distribution; absent means no repair.
    pub ttr_dist: Option<DistSpec>,
}

/// Recursive gate structure.
#[derive(Debug, Clone, PartialEq)]
pub enum GateSpec {
    /// Reference to a basic event.
    Event(String),
    /// AND gate.
    And {
        /// Inputs; fails when all fail.
        and: Vec<GateSpec>,
    },
    /// OR gate.
    Or {
        /// Inputs; fails when any fails.
        or: Vec<GateSpec>,
    },
    /// k-of-n voting gate.
    KOfN {
        /// The `{ "k": ..., "of": [...] }` payload.
        k_of_n: KOfNGateSpec,
    },
}

/// Payload of a voting gate.
#[derive(Debug, Clone, PartialEq)]
pub struct KOfNGateSpec {
    /// Failures required to trip the gate.
    pub k: usize,
    /// Gate inputs.
    pub of: Vec<GateSpec>,
}

/// CTMC specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CtmcSpec {
    /// State names.
    pub states: Vec<String>,
    /// Transition list.
    pub transitions: Vec<TransitionSpec>,
    /// Initial state (for MTTF / transient measures). Defaults to the
    /// first state.
    pub initial: Option<String>,
    /// Operational states (availability is their steady-state mass).
    pub up_states: Option<Vec<String>>,
    /// Failure states for MTTF.
    pub absorbing: Option<Vec<String>>,
    /// Time points for transient state probabilities.
    pub at_times: Option<Vec<f64>>,
}

/// One CTMC transition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionSpec {
    /// Source state name.
    pub from: String,
    /// Destination state name.
    pub to: String,
    /// Transition rate (per time unit).
    pub rate: f64,
}

/// Which scalar a scenario layer extracts from a solved submodel (the
/// hierarchy import/export measure and the uncertainty output measure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScenarioMeasure {
    /// System availability ([`crate::SolvedMeasures::availability`]).
    Availability,
    /// Failure probability ([`crate::SolvedMeasures::unreliability`]).
    Unreliability,
    /// Mean time to failure ([`crate::SolvedMeasures::mttf`]).
    Mttf,
    /// The model class's headline scalar
    /// ([`crate::SolvedMeasures::primary_value`]).
    #[default]
    Primary,
}

impl ScenarioMeasure {
    /// Parses the JSON spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<ScenarioMeasure> {
        match s {
            "availability" => Some(ScenarioMeasure::Availability),
            "unreliability" => Some(ScenarioMeasure::Unreliability),
            "mttf" => Some(ScenarioMeasure::Mttf),
            "primary" => Some(ScenarioMeasure::Primary),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`ScenarioMeasure::parse`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ScenarioMeasure::Availability => "availability",
            ScenarioMeasure::Unreliability => "unreliability",
            ScenarioMeasure::Mttf => "mttf",
            ScenarioMeasure::Primary => "primary",
        }
    }
}

/// Hierarchical-composition specification: a set of named submodels
/// (each a complete model document) exchanging scalar measures through
/// import bindings, closed by damped fixed-point iteration.
///
/// An acyclic composition converges in as many sweeps as its depth; a
/// cyclic one (the SIP/WebSphere pattern) iterates to the `tolerance`.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchySpec {
    /// The submodels, evaluated in declaration order each sweep.
    pub submodels: Vec<SubmodelSpec>,
    /// The submodel whose exported measure is the hierarchy's headline
    /// value. Defaults to the last submodel.
    pub output: Option<String>,
    /// Fixed-point convergence tolerance (default `1e-10`). Overridden
    /// by a non-default `SolveOptions::fixed_point_tol`.
    pub tolerance: Option<f64>,
    /// Fixed-point sweep budget (default 10 000).
    pub max_iterations: Option<usize>,
    /// Damping factor in `(0, 1]` (default 1.0, undamped).
    pub damping: Option<f64>,
    /// Worker threads for the per-sweep submodel solve (`0` = one per
    /// CPU; default 1). Results are bitwise identical at any setting.
    /// Overridden by a non-default `SolveOptions::hier_jobs`.
    pub jobs: Option<usize>,
}

/// One hierarchy submodel: a complete inner model document plus the
/// measure it exports and the parameters it imports.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmodelSpec {
    /// Submodel name (referenced by imports and `output`).
    pub name: String,
    /// The inner model (any model class, including nested scenarios).
    pub model: Box<ModelSpec>,
    /// The scalar this submodel exports (default `primary`).
    pub measure: ScenarioMeasure,
    /// Starting value of the exported measure for the fixed-point
    /// iteration (default 1.0 — availability-like).
    pub initial: Option<f64>,
    /// Parameters bound from other submodels' exports before each
    /// solve.
    pub imports: Vec<ImportSpec>,
}

/// One hierarchy import binding: before each solve of the importing
/// submodel, the numeric field at `path` (a dotted JSON path into the
/// submodel's own document, e.g. `"rbd.components.0.availability"`) is
/// replaced by the current export of submodel `from`.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportSpec {
    /// Exporting submodel name.
    pub from: String,
    /// Dotted JSON path to the imported numeric field, relative to the
    /// importing submodel's document.
    pub path: String,
}

/// Semi-Markov-process specification: states with general sojourn-time
/// distributions and an embedded transition-probability matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SemiMarkovSpec {
    /// State declarations.
    pub states: Vec<SmpStateSpec>,
    /// Embedded DTMC transitions (per-state probabilities sum to 1).
    pub transitions: Vec<SmpTransitionSpec>,
    /// Initial state for first-passage and interval measures. Defaults
    /// to the first state.
    pub initial: Option<String>,
    /// Operational states (steady availability is their long-run time
    /// fraction).
    pub up_states: Option<Vec<String>>,
    /// Target states for the mean first-passage time from `initial`.
    pub targets: Option<Vec<String>>,
    /// Time points for interval availability `(1/t)∫₀ᵗ A(u) du`,
    /// computed on the phase-type expansion (requires `up_states`).
    pub interval_times: Option<Vec<f64>>,
}

/// One semi-Markov state.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpStateSpec {
    /// State name.
    pub name: String,
    /// Sojourn-time distribution (any [`DistSpec`] family).
    pub sojourn: DistSpec,
}

/// One embedded-chain transition.
#[derive(Debug, Clone, PartialEq)]
pub struct SmpTransitionSpec {
    /// Source state name.
    pub from: String,
    /// Destination state name (self-loops are rejected: fold them into
    /// the sojourn distribution).
    pub to: String,
    /// Embedded jump probability.
    pub probability: f64,
}

/// Parametric-uncertainty specification: a wrapper class that samples
/// priors over numeric fields of an inner model document and propagates
/// them through repeated solves (Monte Carlo over the parameter
/// vector).
#[derive(Debug, Clone, PartialEq)]
pub struct UncertaintySpec {
    /// The inner model (any model class).
    pub model: Box<ModelSpec>,
    /// The uncertain parameters.
    pub parameters: Vec<UncertainParamSpec>,
    /// The output measure extracted from each inner solve (default
    /// `primary`).
    pub measure: ScenarioMeasure,
    /// Monte-Carlo samples (default 1000). Overridden by
    /// `SolveOptions::uncert_samples`.
    pub samples: Option<usize>,
    /// Confidence level of the percentile interval (default 0.95).
    pub level: Option<f64>,
    /// RNG seed (default `0x5EED`). Sampling is a pure function of
    /// `(seed, sample index)` — bitwise identical at any worker count.
    pub seed: Option<u64>,
    /// Worker threads (`0` = one per CPU; default 0). Never affects
    /// results.
    pub jobs: Option<usize>,
    /// Use Latin-hypercube instead of independent random sampling.
    pub latin_hypercube: bool,
}

/// One uncertain parameter: a dotted JSON path into the inner model
/// document plus its prior distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainParamSpec {
    /// Dotted JSON path to the numeric field, relative to the inner
    /// model document (e.g. `"ctmc.transitions.0.rate"`).
    pub path: String,
    /// The prior.
    pub prior: PriorSpec,
}

/// A prior over an uncertain parameter: an explicit distribution, or
/// the Bayesian exponential-rate posterior `Gamma(failures + 1,
/// total_time)` from observed test data.
#[derive(Debug, Clone, PartialEq)]
pub enum PriorSpec {
    /// An explicit distribution (any [`DistSpec`] family).
    Dist(DistSpec),
    /// `rate_posterior`: the conjugate posterior of an exponential
    /// rate after `failures` events in `total_time` cumulative
    /// exposure.
    Posterior {
        /// Observed failure count.
        failures: u32,
        /// Cumulative exposure time.
        total_time: f64,
    },
}

/// Cut/path-set bounds specification: Esary–Proschan and
/// truncated-SDP bounds from explicit minimal cut sets (the Boeing-787
/// workflow) or from an inline fault tree.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsSpec {
    /// Basic-event declarations with failure probabilities. Required
    /// with explicit `cut_sets`; forbidden with `fault_tree`.
    pub events: Vec<BoundsEventSpec>,
    /// Minimal cut sets as lists of event names. Required unless
    /// `fault_tree` is given.
    pub cut_sets: Vec<Vec<String>>,
    /// Minimal path sets (enables the Esary–Proschan bounds; derived
    /// from the tree's dual when `fault_tree` is given).
    pub path_sets: Option<Vec<Vec<String>>>,
    /// An inline fault tree supplying events, exact probability, and
    /// minimal cut/path sets. Mutually exclusive with
    /// `events`/`cut_sets`/`path_sets`.
    pub fault_tree: Option<Box<FaultTreeSpec>>,
    /// Cut-set order above which enumeration is considered truncated
    /// (default 2; must be ≥ 1). Overridden by
    /// `SolveOptions::truncation_order`.
    pub truncation_order: Option<usize>,
}

/// One bounds basic event.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsEventSpec {
    /// Event name (referenced from the cut/path sets).
    pub name: String,
    /// Failure probability.
    pub probability: f64,
}

// ---------------------------------------------------------------------
// Parsing

fn schema_err(msg: impl std::fmt::Display) -> Error {
    Error::invalid(format!("specification does not match schema: {msg}"))
}

fn as_obj<'a>(v: &'a JsonValue, what: &str) -> Result<&'a [(String, JsonValue)]> {
    v.as_object()
        .ok_or_else(|| schema_err(format!("{what} must be an object")))
}

fn check_keys(entries: &[(String, JsonValue)], allowed: &[&str], what: &str) -> Result<()> {
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(schema_err(format!("unknown field '{k}' in {what}")));
        }
    }
    Ok(())
}

fn req<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<&'a JsonValue> {
    v.get(key)
        .ok_or_else(|| schema_err(format!("{what} is missing required field '{key}'")))
}

fn str_field(v: &JsonValue, key: &str, what: &str) -> Result<String> {
    req(v, key, what)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| schema_err(format!("field '{key}' of {what} must be a string")))
}

fn f64_field(v: &JsonValue, key: &str, what: &str) -> Result<f64> {
    req(v, key, what)?
        .as_f64()
        .ok_or_else(|| schema_err(format!("field '{key}' of {what} must be a number")))
}

fn string_list(v: &JsonValue, what: &str) -> Result<Vec<String>> {
    v.as_array()
        .ok_or_else(|| schema_err(format!("{what} must be an array")))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_owned)
                .ok_or_else(|| schema_err(format!("{what} entries must be strings")))
        })
        .collect()
}

impl ModelSpec {
    /// Parses a specification from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for malformed JSON or a
    /// document that does not match the schema.
    pub fn from_json_str(text: &str) -> Result<ModelSpec> {
        let v = json::parse(text).map_err(schema_err)?;
        ModelSpec::from_json(&v)
    }

    /// Parses a specification from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// See [`ModelSpec::from_json_str`].
    pub fn from_json(v: &JsonValue) -> Result<ModelSpec> {
        let entries = as_obj(v, "model document")?;
        if entries.len() != 1 {
            return Err(schema_err(
                "model document must have exactly one top-level key \
                 (one of 'rbd', 'fault_tree', 'ctmc', 'rel_graph', 'spn', \
                 'hierarchy', 'semi_markov', 'uncertainty', 'bounds')",
            ));
        }
        let (key, payload) = &entries[0];
        match key.as_str() {
            "rbd" => Ok(ModelSpec::Rbd(RbdSpec::from_json(payload)?)),
            "fault_tree" => Ok(ModelSpec::FaultTree(FaultTreeSpec::from_json(payload)?)),
            "ctmc" => Ok(ModelSpec::Ctmc(CtmcSpec::from_json(payload)?)),
            "rel_graph" => Ok(ModelSpec::RelGraph(RelGraphSpec::from_json(payload)?)),
            "spn" => Ok(ModelSpec::Spn(SpnSpec::from_json(payload)?)),
            "hierarchy" => Ok(ModelSpec::Hierarchy(HierarchySpec::from_json(payload)?)),
            "semi_markov" => Ok(ModelSpec::SemiMarkov(SemiMarkovSpec::from_json(payload)?)),
            "uncertainty" => Ok(ModelSpec::Uncertainty(UncertaintySpec::from_json(payload)?)),
            "bounds" => Ok(ModelSpec::Bounds(BoundsSpec::from_json(payload)?)),
            other => Err(schema_err(format!("unknown model class '{other}'"))),
        }
    }

    /// Serializes back to the JSON data model (the inverse of
    /// [`ModelSpec::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        match self {
            ModelSpec::Rbd(r) => json::object(vec![("rbd", r.to_json())]),
            ModelSpec::FaultTree(f) => json::object(vec![("fault_tree", f.to_json())]),
            ModelSpec::Ctmc(c) => json::object(vec![("ctmc", c.to_json())]),
            ModelSpec::RelGraph(g) => json::object(vec![("rel_graph", g.to_json())]),
            ModelSpec::Spn(s) => json::object(vec![("spn", s.to_json())]),
            ModelSpec::Hierarchy(h) => json::object(vec![("hierarchy", h.to_json())]),
            ModelSpec::SemiMarkov(s) => json::object(vec![("semi_markov", s.to_json())]),
            ModelSpec::Uncertainty(u) => json::object(vec![("uncertainty", u.to_json())]),
            ModelSpec::Bounds(b) => json::object(vec![("bounds", b.to_json())]),
        }
    }

    /// Deterministic single-line serialization. Two structurally equal
    /// specs produce equal strings, making this usable as a cache key
    /// (the batch engine's memo map is keyed on it).
    #[must_use]
    pub fn canonical_string(&self) -> String {
        self.to_json().to_json()
    }
}

impl RbdSpec {
    fn from_json(v: &JsonValue) -> Result<RbdSpec> {
        check_keys(
            as_obj(v, "rbd")?,
            &["components", "structure", "sim"],
            "rbd",
        )?;
        let components = req(v, "components", "rbd")?
            .as_array()
            .ok_or_else(|| schema_err("rbd 'components' must be an array"))?
            .iter()
            .map(RbdComponentSpec::from_json)
            .collect::<Result<_>>()?;
        let structure = StructureSpec::from_json(req(v, "structure", "rbd")?)?;
        Ok(RbdSpec {
            components,
            structure,
            sim: SimSpec::from_json_opt(v.get("sim"))?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "components",
                JsonValue::Array(
                    self.components
                        .iter()
                        .map(RbdComponentSpec::to_json)
                        .collect(),
                ),
            ),
            ("structure", self.structure.to_json()),
        ];
        if let Some(sim) = &self.sim {
            entries.push(("sim", sim.to_json()));
        }
        json::object(entries)
    }
}

impl RbdComponentSpec {
    fn from_json(v: &JsonValue) -> Result<RbdComponentSpec> {
        check_keys(
            as_obj(v, "component")?,
            &["name", "availability", "ttf_dist", "ttr_dist"],
            "component",
        )?;
        let name = str_field(v, "name", "component")?;
        let availability = match v.get("availability") {
            None | Some(JsonValue::Null) => None,
            Some(a) => Some(
                a.as_f64()
                    .ok_or_else(|| schema_err("'availability' must be a number"))?,
            ),
        };
        let ttf_dist = DistSpec::from_json_opt(v.get("ttf_dist"))?;
        let ttr_dist = DistSpec::from_json_opt(v.get("ttr_dist"))?;
        if availability.is_none() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "component '{name}' needs an 'availability' or a 'ttf_dist'"
            )));
        }
        if ttr_dist.is_some() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "component '{name}' has a 'ttr_dist' but no 'ttf_dist'"
            )));
        }
        Ok(RbdComponentSpec {
            name,
            availability,
            ttf_dist,
            ttr_dist,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("name", JsonValue::from(self.name.as_str()))];
        if let Some(a) = self.availability {
            entries.push(("availability", a.into()));
        }
        if let Some(d) = &self.ttf_dist {
            entries.push(("ttf_dist", d.to_json()));
        }
        if let Some(d) = &self.ttr_dist {
            entries.push(("ttr_dist", d.to_json()));
        }
        json::object(entries)
    }
}

impl DistSpec {
    fn from_json_opt(v: Option<&JsonValue>) -> Result<Option<DistSpec>> {
        match v {
            None | Some(JsonValue::Null) => Ok(None),
            Some(d) => DistSpec::from_json(d).map(Some),
        }
    }

    fn from_json(v: &JsonValue) -> Result<DistSpec> {
        let entries = as_obj(v, "distribution")?;
        if entries.len() != 1 {
            return Err(schema_err(
                "distribution must be an object with exactly one key (the family, \
                 one of 'exponential', 'weibull', 'lognormal', 'pareto', 'gamma', \
                 'uniform', 'deterministic')",
            ));
        }
        let (key, p) = &entries[0];
        let what = key.as_str();
        match what {
            "exponential" => {
                check_keys(as_obj(p, what)?, &["rate", "mean"], what)?;
                let rate = match (p.get("rate"), p.get("mean")) {
                    (Some(r), None) => r
                        .as_f64()
                        .ok_or_else(|| schema_err("'rate' must be a number"))?,
                    (None, Some(m)) => {
                        let m = m
                            .as_f64()
                            .ok_or_else(|| schema_err("'mean' must be a number"))?;
                        if !(m > 0.0 && m.is_finite()) {
                            return Err(schema_err(format!(
                                "exponential 'mean' must be positive and finite, got {m}"
                            )));
                        }
                        1.0 / m
                    }
                    _ => {
                        return Err(schema_err(
                            "exponential needs exactly one of 'rate' or 'mean'",
                        ))
                    }
                };
                Ok(DistSpec::Exponential { rate })
            }
            "weibull" => {
                check_keys(as_obj(p, what)?, &["shape", "scale"], what)?;
                Ok(DistSpec::Weibull {
                    shape: f64_field(p, "shape", what)?,
                    scale: f64_field(p, "scale", what)?,
                })
            }
            "lognormal" => {
                check_keys(as_obj(p, what)?, &["mu", "sigma", "mean", "cv2"], what)?;
                match (p.get("mu"), p.get("sigma"), p.get("mean"), p.get("cv2")) {
                    (Some(_), Some(_), None, None) => Ok(DistSpec::LogNormal {
                        mu: f64_field(p, "mu", what)?,
                        sigma: f64_field(p, "sigma", what)?,
                    }),
                    (None, None, Some(_), Some(_)) => {
                        let mean = f64_field(p, "mean", what)?;
                        let cv2 = f64_field(p, "cv2", what)?;
                        if !(mean > 0.0 && mean.is_finite() && cv2 > 0.0 && cv2.is_finite()) {
                            return Err(schema_err(format!(
                                "lognormal 'mean' and 'cv2' must be positive and finite, \
                                 got mean {mean}, cv2 {cv2}"
                            )));
                        }
                        let sigma2 = (1.0 + cv2).ln();
                        Ok(DistSpec::LogNormal {
                            mu: mean.ln() - sigma2 / 2.0,
                            sigma: sigma2.sqrt(),
                        })
                    }
                    _ => Err(schema_err(
                        "lognormal needs either 'mu' and 'sigma' or 'mean' and 'cv2'",
                    )),
                }
            }
            "pareto" => {
                check_keys(as_obj(p, what)?, &["shape", "scale"], what)?;
                Ok(DistSpec::Pareto {
                    shape: f64_field(p, "shape", what)?,
                    scale: f64_field(p, "scale", what)?,
                })
            }
            "gamma" => {
                check_keys(as_obj(p, what)?, &["shape", "rate"], what)?;
                Ok(DistSpec::Gamma {
                    shape: f64_field(p, "shape", what)?,
                    rate: f64_field(p, "rate", what)?,
                })
            }
            "uniform" => {
                check_keys(as_obj(p, what)?, &["low", "high"], what)?;
                Ok(DistSpec::Uniform {
                    low: f64_field(p, "low", what)?,
                    high: f64_field(p, "high", what)?,
                })
            }
            "deterministic" => {
                check_keys(as_obj(p, what)?, &["value"], what)?;
                Ok(DistSpec::Deterministic {
                    value: f64_field(p, "value", what)?,
                })
            }
            other => Err(schema_err(format!("unknown distribution family '{other}'"))),
        }
    }

    /// Serializes back to the single-key JSON grammar (always the
    /// canonical parameters).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let (family, fields) = match self {
            DistSpec::Exponential { rate } => ("exponential", vec![("rate", (*rate).into())]),
            DistSpec::Weibull { shape, scale } => (
                "weibull",
                vec![("shape", (*shape).into()), ("scale", (*scale).into())],
            ),
            DistSpec::LogNormal { mu, sigma } => (
                "lognormal",
                vec![("mu", (*mu).into()), ("sigma", (*sigma).into())],
            ),
            DistSpec::Pareto { shape, scale } => (
                "pareto",
                vec![("shape", (*shape).into()), ("scale", (*scale).into())],
            ),
            DistSpec::Gamma { shape, rate } => (
                "gamma",
                vec![("shape", (*shape).into()), ("rate", (*rate).into())],
            ),
            DistSpec::Uniform { low, high } => (
                "uniform",
                vec![("low", (*low).into()), ("high", (*high).into())],
            ),
            DistSpec::Deterministic { value } => {
                ("deterministic", vec![("value", (*value).into())])
            }
        };
        json::object(vec![(family, json::object(fields))])
    }
}

impl SimSpec {
    fn from_json_opt(v: Option<&JsonValue>) -> Result<Option<SimSpec>> {
        match v {
            None | Some(JsonValue::Null) => Ok(None),
            Some(s) => SimSpec::from_json(s).map(Some),
        }
    }

    fn from_json(v: &JsonValue) -> Result<SimSpec> {
        check_keys(
            as_obj(v, "sim")?,
            &[
                "measure",
                "horizon",
                "mission_time",
                "time_cap",
                "seed",
                "jobs",
                "max_replications",
                "min_replications",
                "rel_precision",
                "confidence",
                "batches",
                "warmup_fraction",
            ],
            "sim",
        )?;
        let measure_str = str_field(v, "measure", "sim")?;
        let measure = SimMeasure::parse(&measure_str).ok_or_else(|| {
            schema_err(format!(
                "sim 'measure' must be one of availability, reliability, mttf \
                 (got '{measure_str}')"
            ))
        })?;
        let opt_f64 = |key: &str| -> Result<Option<f64>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => {
                    Ok(Some(x.as_f64().ok_or_else(|| {
                        schema_err(format!("sim '{key}' must be a number"))
                    })?))
                }
            }
        };
        let opt_usize = |key: &str| -> Result<Option<usize>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => Ok(Some(x.as_usize().ok_or_else(|| {
                    schema_err(format!("sim '{key}' must be a non-negative integer"))
                })?)),
            }
        };
        let spec = SimSpec {
            measure,
            horizon: opt_f64("horizon")?,
            mission_time: opt_f64("mission_time")?,
            time_cap: opt_f64("time_cap")?,
            seed: opt_usize("seed")?.map(|s| s as u64),
            jobs: opt_usize("jobs")?,
            max_replications: opt_usize("max_replications")?,
            min_replications: opt_usize("min_replications")?,
            rel_precision: opt_f64("rel_precision")?,
            confidence: opt_f64("confidence")?,
            batches: opt_usize("batches")?,
            warmup_fraction: opt_f64("warmup_fraction")?,
        };
        let (required, present) = match spec.measure {
            SimMeasure::Availability => ("horizon", spec.horizon.is_some()),
            SimMeasure::Reliability => ("mission_time", spec.mission_time.is_some()),
            SimMeasure::Mttf => ("time_cap", spec.time_cap.is_some()),
        };
        if !present {
            return Err(schema_err(format!(
                "sim measure '{}' requires '{required}'",
                spec.measure.as_str()
            )));
        }
        Ok(spec)
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("measure", JsonValue::from(self.measure.as_str()))];
        let mut num = |key: &'static str, x: Option<f64>| {
            if let Some(x) = x {
                entries.push((key, x.into()));
            }
        };
        num("horizon", self.horizon);
        num("mission_time", self.mission_time);
        num("time_cap", self.time_cap);
        num("seed", self.seed.map(|s| s as f64));
        num("jobs", self.jobs.map(|j| j as f64));
        num("max_replications", self.max_replications.map(|m| m as f64));
        num("min_replications", self.min_replications.map(|m| m as f64));
        num("rel_precision", self.rel_precision);
        num("confidence", self.confidence);
        num("batches", self.batches.map(|b| b as f64));
        num("warmup_fraction", self.warmup_fraction);
        json::object(entries)
    }
}

impl StructureSpec {
    fn from_json(v: &JsonValue) -> Result<StructureSpec> {
        if let Some(name) = v.as_str() {
            return Ok(StructureSpec::Component(name.to_owned()));
        }
        let entries = v
            .as_object()
            .ok_or_else(|| schema_err("structure must be a name or a combinator object"))?;
        if entries.len() != 1 {
            return Err(schema_err(
                "structure object must have exactly one key ('series', 'parallel', or 'k_of_n')",
            ));
        }
        let (key, payload) = &entries[0];
        let members = |p: &JsonValue, what: &str| -> Result<Vec<StructureSpec>> {
            p.as_array()
                .ok_or_else(|| schema_err(format!("'{what}' must be an array")))?
                .iter()
                .map(StructureSpec::from_json)
                .collect()
        };
        match key.as_str() {
            "series" => Ok(StructureSpec::Series {
                series: members(payload, "series")?,
            }),
            "parallel" => Ok(StructureSpec::Parallel {
                parallel: members(payload, "parallel")?,
            }),
            "k_of_n" => {
                check_keys(as_obj(payload, "k_of_n")?, &["k", "of"], "k_of_n")?;
                let k = req(payload, "k", "k_of_n")?
                    .as_usize()
                    .ok_or_else(|| schema_err("'k' must be a non-negative integer"))?;
                Ok(StructureSpec::KOfN {
                    k_of_n: KOfNSpec {
                        k,
                        of: members(req(payload, "of", "k_of_n")?, "of")?,
                    },
                })
            }
            other => Err(schema_err(format!(
                "unknown structure combinator '{other}'"
            ))),
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            StructureSpec::Component(name) => name.as_str().into(),
            StructureSpec::Series { series } => json::object(vec![(
                "series",
                JsonValue::Array(series.iter().map(StructureSpec::to_json).collect()),
            )]),
            StructureSpec::Parallel { parallel } => json::object(vec![(
                "parallel",
                JsonValue::Array(parallel.iter().map(StructureSpec::to_json).collect()),
            )]),
            StructureSpec::KOfN { k_of_n } => json::object(vec![(
                "k_of_n",
                json::object(vec![
                    ("k", JsonValue::Number(k_of_n.k as f64)),
                    (
                        "of",
                        JsonValue::Array(k_of_n.of.iter().map(StructureSpec::to_json).collect()),
                    ),
                ]),
            )]),
        }
    }
}

impl FaultTreeSpec {
    fn from_json(v: &JsonValue) -> Result<FaultTreeSpec> {
        check_keys(
            as_obj(v, "fault_tree")?,
            &["events", "top", "max_cut_sets", "var_order", "sim"],
            "fault_tree",
        )?;
        let events = req(v, "events", "fault_tree")?
            .as_array()
            .ok_or_else(|| schema_err("fault_tree 'events' must be an array"))?
            .iter()
            .map(EventSpec::from_json)
            .collect::<Result<_>>()?;
        let top = GateSpec::from_json(req(v, "top", "fault_tree")?)?;
        let max_cut_sets = match v.get("max_cut_sets") {
            None | Some(JsonValue::Null) => None,
            Some(m) => Some(
                m.as_usize()
                    .ok_or_else(|| schema_err("'max_cut_sets' must be a non-negative integer"))?,
            ),
        };
        let var_order = match v.get("var_order") {
            None | Some(JsonValue::Null) => None,
            Some(o) => {
                let s = o
                    .as_str()
                    .ok_or_else(|| schema_err("'var_order' must be a string"))?;
                Some(crate::report::VarOrder::parse(s).ok_or_else(|| {
                    schema_err(format!(
                        "'var_order' must be one of auto, input, dfs, weighted, sift (got '{s}')"
                    ))
                })?)
            }
        };
        Ok(FaultTreeSpec {
            events,
            top,
            max_cut_sets,
            var_order,
            sim: SimSpec::from_json_opt(v.get("sim"))?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "events",
                JsonValue::Array(self.events.iter().map(EventSpec::to_json).collect()),
            ),
            ("top", self.top.to_json()),
        ];
        if let Some(m) = self.max_cut_sets {
            entries.push(("max_cut_sets", JsonValue::Number(m as f64)));
        }
        if let Some(o) = self.var_order {
            entries.push(("var_order", JsonValue::from(o.as_str())));
        }
        if let Some(sim) = &self.sim {
            entries.push(("sim", sim.to_json()));
        }
        json::object(entries)
    }
}

impl EventSpec {
    fn from_json(v: &JsonValue) -> Result<EventSpec> {
        check_keys(
            as_obj(v, "event")?,
            &["name", "probability", "ttf_dist", "ttr_dist"],
            "event",
        )?;
        let name = str_field(v, "name", "event")?;
        let probability = match v.get("probability") {
            None | Some(JsonValue::Null) => None,
            Some(p) => Some(
                p.as_f64()
                    .ok_or_else(|| schema_err("'probability' must be a number"))?,
            ),
        };
        let ttf_dist = DistSpec::from_json_opt(v.get("ttf_dist"))?;
        let ttr_dist = DistSpec::from_json_opt(v.get("ttr_dist"))?;
        if probability.is_none() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "event '{name}' needs a 'probability' or a 'ttf_dist'"
            )));
        }
        if ttr_dist.is_some() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "event '{name}' has a 'ttr_dist' but no 'ttf_dist'"
            )));
        }
        Ok(EventSpec {
            name,
            probability,
            ttf_dist,
            ttr_dist,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("name", JsonValue::from(self.name.as_str()))];
        if let Some(p) = self.probability {
            entries.push(("probability", p.into()));
        }
        if let Some(d) = &self.ttf_dist {
            entries.push(("ttf_dist", d.to_json()));
        }
        if let Some(d) = &self.ttr_dist {
            entries.push(("ttr_dist", d.to_json()));
        }
        json::object(entries)
    }
}

impl GateSpec {
    fn from_json(v: &JsonValue) -> Result<GateSpec> {
        if let Some(name) = v.as_str() {
            return Ok(GateSpec::Event(name.to_owned()));
        }
        let entries = v
            .as_object()
            .ok_or_else(|| schema_err("gate must be an event name or a gate object"))?;
        if entries.len() != 1 {
            return Err(schema_err(
                "gate object must have exactly one key ('and', 'or', or 'k_of_n')",
            ));
        }
        let (key, payload) = &entries[0];
        let inputs = |p: &JsonValue, what: &str| -> Result<Vec<GateSpec>> {
            p.as_array()
                .ok_or_else(|| schema_err(format!("'{what}' must be an array")))?
                .iter()
                .map(GateSpec::from_json)
                .collect()
        };
        match key.as_str() {
            "and" => Ok(GateSpec::And {
                and: inputs(payload, "and")?,
            }),
            "or" => Ok(GateSpec::Or {
                or: inputs(payload, "or")?,
            }),
            "k_of_n" => {
                check_keys(as_obj(payload, "k_of_n")?, &["k", "of"], "k_of_n")?;
                let k = req(payload, "k", "k_of_n")?
                    .as_usize()
                    .ok_or_else(|| schema_err("'k' must be a non-negative integer"))?;
                Ok(GateSpec::KOfN {
                    k_of_n: KOfNGateSpec {
                        k,
                        of: inputs(req(payload, "of", "k_of_n")?, "of")?,
                    },
                })
            }
            other => Err(schema_err(format!("unknown gate type '{other}'"))),
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            GateSpec::Event(name) => name.as_str().into(),
            GateSpec::And { and } => json::object(vec![(
                "and",
                JsonValue::Array(and.iter().map(GateSpec::to_json).collect()),
            )]),
            GateSpec::Or { or } => json::object(vec![(
                "or",
                JsonValue::Array(or.iter().map(GateSpec::to_json).collect()),
            )]),
            GateSpec::KOfN { k_of_n } => json::object(vec![(
                "k_of_n",
                json::object(vec![
                    ("k", JsonValue::Number(k_of_n.k as f64)),
                    (
                        "of",
                        JsonValue::Array(k_of_n.of.iter().map(GateSpec::to_json).collect()),
                    ),
                ]),
            )]),
        }
    }
}

impl CtmcSpec {
    fn from_json(v: &JsonValue) -> Result<CtmcSpec> {
        check_keys(
            as_obj(v, "ctmc")?,
            &[
                "states",
                "transitions",
                "initial",
                "up_states",
                "absorbing",
                "at_times",
            ],
            "ctmc",
        )?;
        let states = string_list(req(v, "states", "ctmc")?, "ctmc 'states'")?;
        let transitions = req(v, "transitions", "ctmc")?
            .as_array()
            .ok_or_else(|| schema_err("ctmc 'transitions' must be an array"))?
            .iter()
            .map(TransitionSpec::from_json)
            .collect::<Result<_>>()?;
        let initial = match v.get("initial") {
            None | Some(JsonValue::Null) => None,
            Some(i) => Some(
                i.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| schema_err("'initial' must be a state name"))?,
            ),
        };
        let optional_names = |key: &str| -> Result<Option<Vec<String>>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(list) => Ok(Some(string_list(list, key)?)),
            }
        };
        let at_times = match v.get("at_times") {
            None | Some(JsonValue::Null) => None,
            Some(list) => Some(
                list.as_array()
                    .ok_or_else(|| schema_err("'at_times' must be an array"))?
                    .iter()
                    .map(|t| {
                        t.as_f64()
                            .ok_or_else(|| schema_err("'at_times' entries must be numbers"))
                    })
                    .collect::<Result<Vec<f64>>>()?,
            ),
        };
        Ok(CtmcSpec {
            states,
            transitions,
            initial,
            up_states: optional_names("up_states")?,
            absorbing: optional_names("absorbing")?,
            at_times,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            ("states", json::string_array(&self.states)),
            (
                "transitions",
                JsonValue::Array(
                    self.transitions
                        .iter()
                        .map(TransitionSpec::to_json)
                        .collect(),
                ),
            ),
        ];
        if let Some(i) = &self.initial {
            entries.push(("initial", i.as_str().into()));
        }
        if let Some(up) = &self.up_states {
            entries.push(("up_states", json::string_array(up)));
        }
        if let Some(a) = &self.absorbing {
            entries.push(("absorbing", json::string_array(a)));
        }
        if let Some(times) = &self.at_times {
            entries.push((
                "at_times",
                JsonValue::Array(times.iter().map(|&t| t.into()).collect()),
            ));
        }
        json::object(entries)
    }
}

impl TransitionSpec {
    fn from_json(v: &JsonValue) -> Result<TransitionSpec> {
        check_keys(
            as_obj(v, "transition")?,
            &["from", "to", "rate"],
            "transition",
        )?;
        Ok(TransitionSpec {
            from: str_field(v, "from", "transition")?,
            to: str_field(v, "to", "transition")?,
            rate: f64_field(v, "rate", "transition")?,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("from", self.from.as_str().into()),
            ("to", self.to.as_str().into()),
            ("rate", self.rate.into()),
        ])
    }
}

impl RelGraphSpec {
    fn from_json(v: &JsonValue) -> Result<RelGraphSpec> {
        check_keys(
            as_obj(v, "rel_graph")?,
            &["nodes", "edges", "source", "sink", "all_terminal"],
            "rel_graph",
        )?;
        let edges = req(v, "edges", "rel_graph")?
            .as_array()
            .ok_or_else(|| schema_err("rel_graph 'edges' must be an array"))?
            .iter()
            .map(EdgeSpec::from_json)
            .collect::<Result<_>>()?;
        let all_terminal = match v.get("all_terminal") {
            None | Some(JsonValue::Null) => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| schema_err("'all_terminal' must be a boolean"))?,
        };
        Ok(RelGraphSpec {
            nodes: string_list(req(v, "nodes", "rel_graph")?, "rel_graph 'nodes'")?,
            edges,
            source: str_field(v, "source", "rel_graph")?,
            sink: str_field(v, "sink", "rel_graph")?,
            all_terminal,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("nodes", json::string_array(&self.nodes)),
            (
                "edges",
                JsonValue::Array(self.edges.iter().map(EdgeSpec::to_json).collect()),
            ),
            ("source", self.source.as_str().into()),
            ("sink", self.sink.as_str().into()),
            ("all_terminal", self.all_terminal.into()),
        ])
    }
}

impl EdgeSpec {
    fn from_json(v: &JsonValue) -> Result<EdgeSpec> {
        check_keys(
            as_obj(v, "edge")?,
            &["name", "from", "to", "reliability", "directed"],
            "edge",
        )?;
        let directed = match v.get("directed") {
            None | Some(JsonValue::Null) => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| schema_err("'directed' must be a boolean"))?,
        };
        Ok(EdgeSpec {
            name: str_field(v, "name", "edge")?,
            from: str_field(v, "from", "edge")?,
            to: str_field(v, "to", "edge")?,
            reliability: f64_field(v, "reliability", "edge")?,
            directed,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("name", self.name.as_str().into()),
            ("from", self.from.as_str().into()),
            ("to", self.to.as_str().into()),
            ("reliability", self.reliability.into()),
            ("directed", self.directed.into()),
        ])
    }
}

impl SpnSpec {
    fn from_json(v: &JsonValue) -> Result<SpnSpec> {
        check_keys(
            as_obj(v, "spn")?,
            &[
                "places",
                "transitions",
                "max_markings",
                "reach_jobs",
                "shard_bits",
                "expected_tokens",
                "throughput",
                "solver",
            ],
            "spn",
        )?;
        let places = req(v, "places", "spn")?
            .as_array()
            .ok_or_else(|| schema_err("spn 'places' must be an array"))?
            .iter()
            .map(PlaceSpec::from_json)
            .collect::<Result<_>>()?;
        let transitions = req(v, "transitions", "spn")?
            .as_array()
            .ok_or_else(|| schema_err("spn 'transitions' must be an array"))?
            .iter()
            .map(SpnTransitionSpec::from_json)
            .collect::<Result<_>>()?;
        let opt_usize = |key: &str| -> Result<Option<usize>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(m) => Ok(Some(m.as_usize().ok_or_else(|| {
                    schema_err(format!("'{key}' must be a non-negative integer"))
                })?)),
            }
        };
        let shard_bits = match opt_usize("shard_bits")? {
            None => None,
            Some(b) if b <= 16 => Some(b as u32),
            Some(b) => {
                return Err(schema_err(format!("'shard_bits' must be <= 16 (got {b})")));
            }
        };
        let optional_names = |key: &str| -> Result<Option<Vec<String>>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(list) => Ok(Some(string_list(list, key)?)),
            }
        };
        let solver = match v.get("solver") {
            None | Some(JsonValue::Null) => None,
            Some(s) => {
                let s = s
                    .as_str()
                    .ok_or_else(|| schema_err("'solver' must be a string"))?;
                Some(SpnSolver::parse(s).ok_or_else(|| {
                    schema_err(format!(
                        "'solver' must be one of materialized, stream (got '{s}')"
                    ))
                })?)
            }
        };
        Ok(SpnSpec {
            places,
            transitions,
            max_markings: opt_usize("max_markings")?,
            reach_jobs: opt_usize("reach_jobs")?,
            shard_bits,
            expected_tokens: optional_names("expected_tokens")?,
            throughput: optional_names("throughput")?,
            solver,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "places",
                JsonValue::Array(self.places.iter().map(PlaceSpec::to_json).collect()),
            ),
            (
                "transitions",
                JsonValue::Array(
                    self.transitions
                        .iter()
                        .map(SpnTransitionSpec::to_json)
                        .collect(),
                ),
            ),
        ];
        if let Some(m) = self.max_markings {
            entries.push(("max_markings", JsonValue::Number(m as f64)));
        }
        if let Some(j) = self.reach_jobs {
            entries.push(("reach_jobs", JsonValue::Number(j as f64)));
        }
        if let Some(b) = self.shard_bits {
            entries.push(("shard_bits", JsonValue::Number(f64::from(b))));
        }
        if let Some(p) = &self.expected_tokens {
            entries.push(("expected_tokens", json::string_array(p)));
        }
        if let Some(t) = &self.throughput {
            entries.push(("throughput", json::string_array(t)));
        }
        if let Some(s) = self.solver {
            entries.push(("solver", JsonValue::from(s.as_str())));
        }
        json::object(entries)
    }
}

impl PlaceSpec {
    fn from_json(v: &JsonValue) -> Result<PlaceSpec> {
        check_keys(as_obj(v, "place")?, &["name", "tokens"], "place")?;
        let tokens = match v.get("tokens") {
            None | Some(JsonValue::Null) => 0,
            Some(t) => u32::try_from(
                t.as_usize()
                    .ok_or_else(|| schema_err("'tokens' must be a non-negative integer"))?,
            )
            .map_err(|_| schema_err("'tokens' exceeds u32 range"))?,
        };
        Ok(PlaceSpec {
            name: str_field(v, "name", "place")?,
            tokens,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("name", self.name.as_str().into()),
            ("tokens", JsonValue::Number(f64::from(self.tokens))),
        ])
    }
}

impl SpnTransitionSpec {
    fn from_json(v: &JsonValue) -> Result<SpnTransitionSpec> {
        check_keys(
            as_obj(v, "spn transition")?,
            &[
                "name",
                "rate",
                "weight",
                "priority",
                "inputs",
                "outputs",
                "inhibitors",
            ],
            "spn transition",
        )?;
        let name = str_field(v, "name", "spn transition")?;
        let timing = match (v.get("rate"), v.get("weight")) {
            (Some(r), None) => {
                if v.get("priority").is_some() {
                    return Err(schema_err(format!(
                        "timed transition '{name}' cannot have a 'priority'"
                    )));
                }
                SpnTimingSpec::Timed {
                    rate: r
                        .as_f64()
                        .ok_or_else(|| schema_err("'rate' must be a number"))?,
                }
            }
            (None, Some(w)) => {
                let priority =
                    match v.get("priority") {
                        None | Some(JsonValue::Null) => 0,
                        Some(p) => u32::try_from(p.as_usize().ok_or_else(|| {
                            schema_err("'priority' must be a non-negative integer")
                        })?)
                        .map_err(|_| schema_err("'priority' exceeds u32 range"))?,
                    };
                SpnTimingSpec::Immediate {
                    weight: w
                        .as_f64()
                        .ok_or_else(|| schema_err("'weight' must be a number"))?,
                    priority,
                }
            }
            _ => {
                return Err(schema_err(format!(
                    "transition '{name}' must have exactly one of 'rate' (timed) or \
                     'weight' (immediate)"
                )));
            }
        };
        let arcs = |key: &str| -> Result<Vec<ArcSpec>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(Vec::new()),
                Some(list) => list
                    .as_array()
                    .ok_or_else(|| schema_err(format!("'{key}' must be an array")))?
                    .iter()
                    .map(ArcSpec::from_json)
                    .collect(),
            }
        };
        Ok(SpnTransitionSpec {
            name,
            timing,
            inputs: arcs("inputs")?,
            outputs: arcs("outputs")?,
            inhibitors: arcs("inhibitors")?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("name", JsonValue::from(self.name.as_str()))];
        match &self.timing {
            SpnTimingSpec::Timed { rate } => entries.push(("rate", (*rate).into())),
            SpnTimingSpec::Immediate { weight, priority } => {
                entries.push(("weight", (*weight).into()));
                entries.push(("priority", JsonValue::Number(f64::from(*priority))));
            }
        }
        for (key, arcs) in [
            ("inputs", &self.inputs),
            ("outputs", &self.outputs),
            ("inhibitors", &self.inhibitors),
        ] {
            if !arcs.is_empty() {
                entries.push((
                    key,
                    JsonValue::Array(arcs.iter().map(ArcSpec::to_json).collect()),
                ));
            }
        }
        json::object(entries)
    }
}

impl ArcSpec {
    fn from_json(v: &JsonValue) -> Result<ArcSpec> {
        check_keys(as_obj(v, "arc")?, &["place", "count"], "arc")?;
        let count = match v.get("count") {
            None | Some(JsonValue::Null) => 1,
            Some(c) => u32::try_from(
                c.as_usize()
                    .ok_or_else(|| schema_err("'count' must be a non-negative integer"))?,
            )
            .map_err(|_| schema_err("'count' exceeds u32 range"))?,
        };
        Ok(ArcSpec {
            place: str_field(v, "place", "arc")?,
            count,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("place", self.place.as_str().into()),
            ("count", JsonValue::Number(f64::from(self.count))),
        ])
    }
}

/// Parses a distribution nested inside a scenario document, qualifying
/// any schema error with the dotted JSON path of the offending field so
/// a bad sojourn or prior is locatable in a large document.
fn dist_at(v: &JsonValue, path: &str) -> Result<DistSpec> {
    DistSpec::from_json(v).map_err(|e| match e {
        Error::InvalidParameter(msg) => {
            let tail = msg
                .strip_prefix("specification does not match schema: ")
                .unwrap_or(&msg)
                .to_owned();
            schema_err(format!("{path}: {tail}"))
        }
        other => other,
    })
}

fn scenario_measure(v: &JsonValue, what: &str) -> Result<ScenarioMeasure> {
    match v.get("measure") {
        None | Some(JsonValue::Null) => Ok(ScenarioMeasure::Primary),
        Some(m) => {
            let s = m
                .as_str()
                .ok_or_else(|| schema_err(format!("{what} 'measure' must be a string")))?;
            ScenarioMeasure::parse(s).ok_or_else(|| {
                schema_err(format!(
                    "{what} 'measure' must be one of availability, unreliability, \
                     mttf, primary (got '{s}')"
                ))
            })
        }
    }
}

/// Checks that `path` resolves to a number inside `doc` (the canonical
/// serialization of the model it is relative to).
fn check_numeric_path(doc: &JsonValue, path: &str, what: &str) -> Result<()> {
    match json::get_path(doc, path) {
        Some(JsonValue::Number(_)) => Ok(()),
        Some(_) => Err(schema_err(format!(
            "{what} path '{path}' does not resolve to a number \
             (note: paths are relative to the canonical document, \
             e.g. a normalized 'mean' becomes 'rate')"
        ))),
        None => Err(schema_err(format!(
            "{what} path '{path}' does not resolve in the model document"
        ))),
    }
}

impl HierarchySpec {
    fn from_json(v: &JsonValue) -> Result<HierarchySpec> {
        check_keys(
            as_obj(v, "hierarchy")?,
            &[
                "submodels",
                "output",
                "tolerance",
                "max_iterations",
                "damping",
                "jobs",
            ],
            "hierarchy",
        )?;
        let submodels: Vec<SubmodelSpec> = req(v, "submodels", "hierarchy")?
            .as_array()
            .ok_or_else(|| schema_err("hierarchy 'submodels' must be an array"))?
            .iter()
            .map(SubmodelSpec::from_json)
            .collect::<Result<_>>()?;
        if submodels.is_empty() {
            return Err(schema_err("hierarchy needs at least one submodel"));
        }
        let mut names: Vec<&str> = Vec::with_capacity(submodels.len());
        for sub in &submodels {
            if names.contains(&sub.name.as_str()) {
                return Err(schema_err(format!(
                    "duplicate submodel name '{}'",
                    sub.name
                )));
            }
            names.push(&sub.name);
        }
        for sub in &submodels {
            let doc = sub.model.to_json();
            for imp in &sub.imports {
                if !names.contains(&imp.from.as_str()) {
                    return Err(schema_err(format!(
                        "submodel '{}' imports from unknown submodel '{}'",
                        sub.name, imp.from
                    )));
                }
                check_numeric_path(&doc, &imp.path, &format!("submodel '{}' import", sub.name))?;
            }
        }
        let output = match v.get("output") {
            None | Some(JsonValue::Null) => None,
            Some(o) => {
                let o = o
                    .as_str()
                    .ok_or_else(|| schema_err("hierarchy 'output' must be a submodel name"))?;
                if !names.contains(&o) {
                    return Err(schema_err(format!(
                        "hierarchy 'output' references unknown submodel '{o}'"
                    )));
                }
                Some(o.to_owned())
            }
        };
        let opt_f64 = |key: &str| -> Result<Option<f64>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => Ok(Some(x.as_f64().ok_or_else(|| {
                    schema_err(format!("hierarchy '{key}' must be a number"))
                })?)),
            }
        };
        let opt_usize = |key: &str| -> Result<Option<usize>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => Ok(Some(x.as_usize().ok_or_else(|| {
                    schema_err(format!("hierarchy '{key}' must be a non-negative integer"))
                })?)),
            }
        };
        let tolerance = opt_f64("tolerance")?;
        if let Some(t) = tolerance {
            if !(t > 0.0 && t.is_finite()) {
                return Err(schema_err(format!(
                    "hierarchy 'tolerance' must be positive and finite, got {t}"
                )));
            }
        }
        let damping = opt_f64("damping")?;
        if let Some(d) = damping {
            if !(d > 0.0 && d <= 1.0) {
                return Err(schema_err(format!(
                    "hierarchy 'damping' must be in (0, 1], got {d}"
                )));
            }
        }
        let max_iterations = opt_usize("max_iterations")?;
        if max_iterations == Some(0) {
            return Err(schema_err("hierarchy 'max_iterations' must be at least 1"));
        }
        Ok(HierarchySpec {
            submodels,
            output,
            tolerance,
            max_iterations,
            damping,
            jobs: opt_usize("jobs")?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![(
            "submodels",
            JsonValue::Array(self.submodels.iter().map(SubmodelSpec::to_json).collect()),
        )];
        if let Some(o) = &self.output {
            entries.push(("output", o.as_str().into()));
        }
        if let Some(t) = self.tolerance {
            entries.push(("tolerance", t.into()));
        }
        if let Some(m) = self.max_iterations {
            entries.push(("max_iterations", (m as f64).into()));
        }
        if let Some(d) = self.damping {
            entries.push(("damping", d.into()));
        }
        if let Some(j) = self.jobs {
            entries.push(("jobs", (j as f64).into()));
        }
        json::object(entries)
    }
}

impl SubmodelSpec {
    fn from_json(v: &JsonValue) -> Result<SubmodelSpec> {
        check_keys(
            as_obj(v, "submodel")?,
            &["name", "model", "measure", "initial", "imports"],
            "submodel",
        )?;
        let name = str_field(v, "name", "submodel")?;
        let model = ModelSpec::from_json(req(v, "model", "submodel")?)?;
        let initial = match v.get("initial") {
            None | Some(JsonValue::Null) => None,
            Some(x) => Some(
                x.as_f64()
                    .ok_or_else(|| schema_err("submodel 'initial' must be a number"))?,
            ),
        };
        let imports = match v.get("imports") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(list) => list
                .as_array()
                .ok_or_else(|| schema_err("submodel 'imports' must be an array"))?
                .iter()
                .map(ImportSpec::from_json)
                .collect::<Result<_>>()?,
        };
        Ok(SubmodelSpec {
            name,
            model: Box::new(model),
            measure: scenario_measure(v, "submodel")?,
            initial,
            imports,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            ("name", self.name.as_str().into()),
            ("model", self.model.to_json()),
        ];
        if self.measure != ScenarioMeasure::Primary {
            entries.push(("measure", self.measure.as_str().into()));
        }
        if let Some(i) = self.initial {
            entries.push(("initial", i.into()));
        }
        if !self.imports.is_empty() {
            entries.push((
                "imports",
                JsonValue::Array(self.imports.iter().map(ImportSpec::to_json).collect()),
            ));
        }
        json::object(entries)
    }
}

impl ImportSpec {
    fn from_json(v: &JsonValue) -> Result<ImportSpec> {
        check_keys(as_obj(v, "import")?, &["from", "path"], "import")?;
        Ok(ImportSpec {
            from: str_field(v, "from", "import")?,
            path: str_field(v, "path", "import")?,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("from", self.from.as_str().into()),
            ("path", self.path.as_str().into()),
        ])
    }
}

impl SemiMarkovSpec {
    fn from_json(v: &JsonValue) -> Result<SemiMarkovSpec> {
        check_keys(
            as_obj(v, "semi_markov")?,
            &[
                "states",
                "transitions",
                "initial",
                "up_states",
                "targets",
                "interval_times",
            ],
            "semi_markov",
        )?;
        let states: Vec<SmpStateSpec> = req(v, "states", "semi_markov")?
            .as_array()
            .ok_or_else(|| schema_err("semi_markov 'states' must be an array"))?
            .iter()
            .enumerate()
            .map(|(i, s)| SmpStateSpec::from_json(s, i))
            .collect::<Result<_>>()?;
        if states.is_empty() {
            return Err(schema_err("semi_markov needs at least one state"));
        }
        let mut names: Vec<String> = Vec::with_capacity(states.len());
        for s in &states {
            if names.contains(&s.name) {
                return Err(schema_err(format!(
                    "duplicate semi_markov state '{}'",
                    s.name
                )));
            }
            names.push(s.name.clone());
        }
        let known = |n: &str, what: &str| -> Result<()> {
            if names.iter().any(|x| x == n) {
                Ok(())
            } else {
                Err(schema_err(format!("{what} references unknown state '{n}'")))
            }
        };
        let transitions: Vec<SmpTransitionSpec> = req(v, "transitions", "semi_markov")?
            .as_array()
            .ok_or_else(|| schema_err("semi_markov 'transitions' must be an array"))?
            .iter()
            .map(SmpTransitionSpec::from_json)
            .collect::<Result<_>>()?;
        for t in &transitions {
            known(&t.from, "semi_markov transition")?;
            known(&t.to, "semi_markov transition")?;
            if t.from == t.to {
                return Err(schema_err(format!(
                    "semi_markov self-loop on '{}': fold it into the sojourn \
                     distribution instead",
                    t.from
                )));
            }
        }
        let initial = match v.get("initial") {
            None | Some(JsonValue::Null) => None,
            Some(i) => {
                let i = i
                    .as_str()
                    .ok_or_else(|| schema_err("semi_markov 'initial' must be a state name"))?;
                known(i, "semi_markov 'initial'")?;
                Some(i.to_owned())
            }
        };
        let optional_names = |key: &str| -> Result<Option<Vec<String>>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(list) => {
                    let list = string_list(list, key)?;
                    for n in &list {
                        known(n, &format!("semi_markov '{key}'"))?;
                    }
                    Ok(Some(list))
                }
            }
        };
        let interval_times = match v.get("interval_times") {
            None | Some(JsonValue::Null) => None,
            Some(list) => Some(
                list.as_array()
                    .ok_or_else(|| schema_err("'interval_times' must be an array"))?
                    .iter()
                    .map(|t| {
                        t.as_f64()
                            .filter(|&t| t > 0.0 && t.is_finite())
                            .ok_or_else(|| {
                                schema_err("'interval_times' entries must be positive numbers")
                            })
                    })
                    .collect::<Result<Vec<f64>>>()?,
            ),
        };
        Ok(SemiMarkovSpec {
            states,
            transitions,
            initial,
            up_states: optional_names("up_states")?,
            targets: optional_names("targets")?,
            interval_times,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "states",
                JsonValue::Array(self.states.iter().map(SmpStateSpec::to_json).collect()),
            ),
            (
                "transitions",
                JsonValue::Array(
                    self.transitions
                        .iter()
                        .map(SmpTransitionSpec::to_json)
                        .collect(),
                ),
            ),
        ];
        if let Some(i) = &self.initial {
            entries.push(("initial", i.as_str().into()));
        }
        if let Some(up) = &self.up_states {
            entries.push(("up_states", json::string_array(up)));
        }
        if let Some(t) = &self.targets {
            entries.push(("targets", json::string_array(t)));
        }
        if let Some(times) = &self.interval_times {
            entries.push((
                "interval_times",
                JsonValue::Array(times.iter().map(|&t| t.into()).collect()),
            ));
        }
        json::object(entries)
    }
}

impl SmpStateSpec {
    fn from_json(v: &JsonValue, index: usize) -> Result<SmpStateSpec> {
        check_keys(as_obj(v, "state")?, &["name", "sojourn"], "state")?;
        Ok(SmpStateSpec {
            name: str_field(v, "name", "state")?,
            sojourn: dist_at(
                req(v, "sojourn", "state")?,
                &format!("semi_markov.states.{index}.sojourn"),
            )?,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("name", self.name.as_str().into()),
            ("sojourn", self.sojourn.to_json()),
        ])
    }
}

impl SmpTransitionSpec {
    fn from_json(v: &JsonValue) -> Result<SmpTransitionSpec> {
        check_keys(
            as_obj(v, "transition")?,
            &["from", "to", "probability"],
            "transition",
        )?;
        let probability = f64_field(v, "probability", "transition")?;
        if !(probability > 0.0 && probability <= 1.0) {
            return Err(schema_err(format!(
                "transition 'probability' must be in (0, 1], got {probability}"
            )));
        }
        Ok(SmpTransitionSpec {
            from: str_field(v, "from", "transition")?,
            to: str_field(v, "to", "transition")?,
            probability,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("from", self.from.as_str().into()),
            ("to", self.to.as_str().into()),
            ("probability", self.probability.into()),
        ])
    }
}

impl UncertaintySpec {
    fn from_json(v: &JsonValue) -> Result<UncertaintySpec> {
        check_keys(
            as_obj(v, "uncertainty")?,
            &[
                "model",
                "parameters",
                "measure",
                "samples",
                "level",
                "seed",
                "jobs",
                "latin_hypercube",
            ],
            "uncertainty",
        )?;
        let model = ModelSpec::from_json(req(v, "model", "uncertainty")?)?;
        let parameters: Vec<UncertainParamSpec> = req(v, "parameters", "uncertainty")?
            .as_array()
            .ok_or_else(|| schema_err("uncertainty 'parameters' must be an array"))?
            .iter()
            .enumerate()
            .map(|(i, p)| UncertainParamSpec::from_json(p, i))
            .collect::<Result<_>>()?;
        if parameters.is_empty() {
            return Err(schema_err("uncertainty needs at least one parameter"));
        }
        let doc = model.to_json();
        for p in &parameters {
            check_numeric_path(&doc, &p.path, "uncertainty parameter")?;
        }
        let opt_usize = |key: &str| -> Result<Option<usize>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => Ok(Some(x.as_usize().ok_or_else(|| {
                    schema_err(format!(
                        "uncertainty '{key}' must be a non-negative integer"
                    ))
                })?)),
            }
        };
        let samples = opt_usize("samples")?;
        if samples == Some(0) {
            return Err(schema_err("uncertainty 'samples' must be at least 1"));
        }
        let level = match v.get("level") {
            None | Some(JsonValue::Null) => None,
            Some(x) => {
                let l = x
                    .as_f64()
                    .ok_or_else(|| schema_err("uncertainty 'level' must be a number"))?;
                if !(l > 0.0 && l < 1.0) {
                    return Err(schema_err(format!(
                        "uncertainty 'level' must be in (0, 1), got {l}"
                    )));
                }
                Some(l)
            }
        };
        let latin_hypercube = match v.get("latin_hypercube") {
            None | Some(JsonValue::Null) => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| schema_err("uncertainty 'latin_hypercube' must be a boolean"))?,
        };
        Ok(UncertaintySpec {
            model: Box::new(model),
            parameters,
            measure: scenario_measure(v, "uncertainty")?,
            samples,
            level,
            seed: opt_usize("seed")?.map(|s| s as u64),
            jobs: opt_usize("jobs")?,
            latin_hypercube,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            ("model", self.model.to_json()),
            (
                "parameters",
                JsonValue::Array(
                    self.parameters
                        .iter()
                        .map(UncertainParamSpec::to_json)
                        .collect(),
                ),
            ),
        ];
        if self.measure != ScenarioMeasure::Primary {
            entries.push(("measure", self.measure.as_str().into()));
        }
        if let Some(s) = self.samples {
            entries.push(("samples", (s as f64).into()));
        }
        if let Some(l) = self.level {
            entries.push(("level", l.into()));
        }
        if let Some(s) = self.seed {
            entries.push(("seed", (s as f64).into()));
        }
        if let Some(j) = self.jobs {
            entries.push(("jobs", (j as f64).into()));
        }
        if self.latin_hypercube {
            entries.push(("latin_hypercube", true.into()));
        }
        json::object(entries)
    }
}

impl UncertainParamSpec {
    fn from_json(v: &JsonValue, index: usize) -> Result<UncertainParamSpec> {
        check_keys(as_obj(v, "parameter")?, &["path", "prior"], "parameter")?;
        let path = str_field(v, "path", "parameter")?;
        let prior_json = req(v, "prior", "parameter")?;
        let prior =
            PriorSpec::from_json(prior_json, &format!("uncertainty.parameters.{index}.prior"))?;
        Ok(UncertainParamSpec { path, prior })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("path", self.path.as_str().into()),
            ("prior", self.prior.to_json()),
        ])
    }
}

impl PriorSpec {
    fn from_json(v: &JsonValue, path: &str) -> Result<PriorSpec> {
        let entries = as_obj(v, "prior")?;
        if entries.len() == 1 && entries[0].0 == "rate_posterior" {
            let p = &entries[0].1;
            check_keys(
                as_obj(p, "rate_posterior")?,
                &["failures", "total_time"],
                "rate_posterior",
            )?;
            let failures = req(p, "failures", "rate_posterior")?
                .as_usize()
                .and_then(|f| u32::try_from(f).ok())
                .ok_or_else(|| {
                    schema_err(format!(
                        "{path}: rate_posterior 'failures' must be a non-negative integer"
                    ))
                })?;
            let total_time = f64_field(p, "total_time", "rate_posterior")?;
            if !(total_time > 0.0 && total_time.is_finite()) {
                return Err(schema_err(format!(
                    "{path}: rate_posterior 'total_time' must be positive and \
                     finite, got {total_time}"
                )));
            }
            return Ok(PriorSpec::Posterior {
                failures,
                total_time,
            });
        }
        dist_at(v, path).map(PriorSpec::Dist)
    }

    fn to_json(&self) -> JsonValue {
        match self {
            PriorSpec::Dist(d) => d.to_json(),
            PriorSpec::Posterior {
                failures,
                total_time,
            } => json::object(vec![(
                "rate_posterior",
                json::object(vec![
                    ("failures", f64::from(*failures).into()),
                    ("total_time", (*total_time).into()),
                ]),
            )]),
        }
    }
}

impl BoundsSpec {
    fn from_json(v: &JsonValue) -> Result<BoundsSpec> {
        check_keys(
            as_obj(v, "bounds")?,
            &[
                "events",
                "cut_sets",
                "path_sets",
                "fault_tree",
                "truncation_order",
            ],
            "bounds",
        )?;
        let name_sets = |key: &str| -> Result<Option<Vec<Vec<String>>>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(list) => {
                    let sets = list
                        .as_array()
                        .ok_or_else(|| {
                            schema_err(format!("bounds '{key}' must be an array of arrays"))
                        })?
                        .iter()
                        .map(|set| string_list(set, &format!("bounds '{key}' entry")))
                        .collect::<Result<Vec<Vec<String>>>>()?;
                    for set in &sets {
                        if set.is_empty() {
                            return Err(schema_err(format!(
                                "bounds '{key}' entries must be non-empty"
                            )));
                        }
                    }
                    Ok(Some(sets))
                }
            }
        };
        let fault_tree = match v.get("fault_tree") {
            None | Some(JsonValue::Null) => None,
            Some(ft) => Some(Box::new(FaultTreeSpec::from_json(ft)?)),
        };
        let events: Vec<BoundsEventSpec> = match v.get("events") {
            None | Some(JsonValue::Null) => Vec::new(),
            Some(list) => list
                .as_array()
                .ok_or_else(|| schema_err("bounds 'events' must be an array"))?
                .iter()
                .map(BoundsEventSpec::from_json)
                .collect::<Result<_>>()?,
        };
        let cut_sets = name_sets("cut_sets")?.unwrap_or_default();
        let path_sets = name_sets("path_sets")?;
        if fault_tree.is_some() {
            if !events.is_empty() || !cut_sets.is_empty() || path_sets.is_some() {
                return Err(schema_err(
                    "bounds 'fault_tree' is mutually exclusive with \
                     'events'/'cut_sets'/'path_sets'",
                ));
            }
        } else {
            if events.is_empty() {
                return Err(schema_err(
                    "bounds needs 'events' and 'cut_sets' (or a 'fault_tree')",
                ));
            }
            if cut_sets.is_empty() {
                return Err(schema_err("bounds needs at least one cut set"));
            }
            let mut names: Vec<&str> = Vec::with_capacity(events.len());
            for e in &events {
                if names.contains(&e.name.as_str()) {
                    return Err(schema_err(format!("duplicate bounds event '{}'", e.name)));
                }
                names.push(&e.name);
            }
            let check_sets = |sets: &[Vec<String>], key: &str| -> Result<()> {
                for set in sets {
                    for n in set {
                        if !names.contains(&n.as_str()) {
                            return Err(schema_err(format!(
                                "bounds '{key}' references unknown event '{n}'"
                            )));
                        }
                    }
                }
                Ok(())
            };
            check_sets(&cut_sets, "cut_sets")?;
            if let Some(ps) = &path_sets {
                check_sets(ps, "path_sets")?;
            }
        }
        let truncation_order = match v.get("truncation_order") {
            None | Some(JsonValue::Null) => None,
            Some(x) => {
                let o = x.as_usize().ok_or_else(|| {
                    schema_err("bounds 'truncation_order' must be a non-negative integer")
                })?;
                if o == 0 {
                    return Err(schema_err("bounds 'truncation_order' must be at least 1"));
                }
                Some(o)
            }
        };
        Ok(BoundsSpec {
            events,
            cut_sets,
            path_sets,
            fault_tree,
            truncation_order,
        })
    }

    fn to_json(&self) -> JsonValue {
        let sets_json = |sets: &[Vec<String>]| {
            JsonValue::Array(sets.iter().map(|s| json::string_array(s)).collect())
        };
        let mut entries = Vec::new();
        if !self.events.is_empty() {
            entries.push((
                "events",
                JsonValue::Array(self.events.iter().map(BoundsEventSpec::to_json).collect()),
            ));
        }
        if !self.cut_sets.is_empty() {
            entries.push(("cut_sets", sets_json(&self.cut_sets)));
        }
        if let Some(ps) = &self.path_sets {
            entries.push(("path_sets", sets_json(ps)));
        }
        if let Some(ft) = &self.fault_tree {
            entries.push(("fault_tree", ft.to_json()));
        }
        if let Some(o) = self.truncation_order {
            entries.push(("truncation_order", (o as f64).into()));
        }
        json::object(entries)
    }
}

impl BoundsEventSpec {
    fn from_json(v: &JsonValue) -> Result<BoundsEventSpec> {
        check_keys(as_obj(v, "event")?, &["name", "probability"], "event")?;
        let probability = f64_field(v, "probability", "event")?;
        if !(0.0..=1.0).contains(&probability) {
            return Err(schema_err(format!(
                "event 'probability' must be in [0, 1], got {probability}"
            )));
        }
        Ok(BoundsEventSpec {
            name: str_field(v, "name", "event")?,
            probability,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("name", self.name.as_str().into()),
            ("probability", self.probability.into()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbd_round_trip() {
        let json = r#"{
          "rbd": {
            "components": [{"name": "a", "availability": 0.9}],
            "structure": {"series": ["a", {"parallel": ["a", "a"]}]}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let back = spec.to_json().to_json();
        let again = ModelSpec::from_json_str(&back).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn fault_tree_round_trip() {
        let json = r#"{
          "fault_tree": {
            "events": [{"name": "e", "probability": 0.01}],
            "top": {"k_of_n": {"k": 2, "of": ["e", "e", "e"]}}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        assert!(matches!(spec, ModelSpec::FaultTree(_)));
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn rbd_with_dists_and_sim_round_trips() {
        let json = r#"{
          "rbd": {
            "components": [
              {"name": "a",
               "ttf_dist": {"weibull": {"shape": 1.5, "scale": 1000.0}},
               "ttr_dist": {"lognormal": {"mu": 0.5, "sigma": 1.2}}},
              {"name": "b", "availability": 0.99},
              {"name": "c",
               "ttf_dist": {"exponential": {"rate": 0.001}},
               "ttr_dist": {"pareto": {"shape": 2.5, "scale": 3.0}}}
            ],
            "structure": {"series": [{"parallel": ["a", "c"]}, "b"]},
            "sim": {
              "measure": "availability",
              "horizon": 40000.0,
              "seed": 42,
              "jobs": 2,
              "max_replications": 256,
              "rel_precision": 0.001,
              "confidence": 0.99
            }
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        match &spec {
            ModelSpec::Rbd(r) => {
                let sim = r.sim.as_ref().unwrap();
                assert_eq!(sim.measure, SimMeasure::Availability);
                assert_eq!(sim.horizon, Some(40000.0));
                assert_eq!(sim.seed, Some(42));
                assert_eq!(sim.max_replications, Some(256));
                assert_eq!(r.components[0].availability, None);
                assert!(matches!(
                    r.components[0].ttf_dist,
                    Some(DistSpec::Weibull { .. })
                ));
            }
            _ => panic!("expected RBD"),
        }
    }

    #[test]
    fn fault_tree_with_dists_and_sim_round_trips() {
        let json = r#"{
          "fault_tree": {
            "events": [
              {"name": "e",
               "ttf_dist": {"gamma": {"shape": 2.0, "rate": 0.01}},
               "ttr_dist": {"uniform": {"low": 1.0, "high": 9.0}}},
              {"name": "f", "probability": 0.05}
            ],
            "top": {"or": ["e", "f"]},
            "sim": {"measure": "reliability", "mission_time": 5000.0}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn dist_spec_mean_forms_normalize() {
        // {"mean": m} is sugar for rate = 1/m.
        let json = r#"{
          "rbd": {
            "components": [
              {"name": "a",
               "ttf_dist": {"exponential": {"mean": 500.0}},
               "ttr_dist": {"lognormal": {"mean": 4.0, "cv2": 4.0}}}
            ],
            "structure": "a",
            "sim": {"measure": "availability", "horizon": 1000.0}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let ModelSpec::Rbd(r) = &spec else {
            panic!("expected RBD");
        };
        match r.components[0].ttf_dist.as_ref().unwrap() {
            DistSpec::Exponential { rate } => assert!((rate - 1.0 / 500.0).abs() < 1e-15),
            other => panic!("expected exponential, got {other:?}"),
        }
        match r.components[0].ttr_dist.as_ref().unwrap() {
            DistSpec::LogNormal { mu, sigma } => {
                // mean = exp(mu + sigma^2/2), cv2 = exp(sigma^2) - 1.
                let mean = (mu + sigma * sigma / 2.0).exp();
                let cv2 = (sigma * sigma).exp() - 1.0;
                assert!((mean - 4.0).abs() < 1e-12, "mean {mean}");
                assert!((cv2 - 4.0).abs() < 1e-12, "cv2 {cv2}");
            }
            other => panic!("expected lognormal, got {other:?}"),
        }
        // Normalized parameters survive a serialization round trip.
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn sim_and_dist_specs_reject_malformed_input() {
        let base =
            |body: &str| format!(r#"{{"rbd": {{"components": [{body}], "structure": "a"}}}}"#);
        // Neither availability nor ttf_dist.
        assert!(ModelSpec::from_json_str(&base(r#"{"name": "a"}"#)).is_err());
        // ttr without ttf.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttr_dist": {"exponential": {"rate": 1.0}}}"#
        ))
        .is_err());
        // Unknown distribution family.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"zipf": {"s": 1.0}}}"#
        ))
        .is_err());
        // Unknown key inside a family.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"exponential": {"rate": 1.0, "junk": 2}}}"#
        ))
        .is_err());
        // Both rate and mean.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"exponential": {"rate": 1.0, "mean": 1.0}}}"#
        ))
        .is_err());
        // Mixed lognormal parameterizations.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"lognormal": {"mu": 0.0, "cv2": 1.0}}}"#
        ))
        .is_err());

        let sim = |body: &str| {
            format!(
                r#"{{"rbd": {{"components": [{{"name": "a", "availability": 0.9}}],
                     "structure": "a", "sim": {body}}}}}"#
            )
        };
        // Unknown measure.
        assert!(
            ModelSpec::from_json_str(&sim(r#"{"measure": "throughput", "horizon": 1.0}"#)).is_err()
        );
        // Measure without its time field.
        assert!(ModelSpec::from_json_str(&sim(r#"{"measure": "availability"}"#)).is_err());
        assert!(ModelSpec::from_json_str(&sim(r#"{"measure": "reliability"}"#)).is_err());
        assert!(ModelSpec::from_json_str(&sim(r#"{"measure": "mttf"}"#)).is_err());
        // Unknown sim key.
        assert!(ModelSpec::from_json_str(&sim(
            r#"{"measure": "availability", "horizon": 1.0, "bogus": 3}"#
        ))
        .is_err());
    }

    #[test]
    fn spn_round_trip() {
        let json = r#"{
          "spn": {
            "places": [
              {"name": "idle", "tokens": 3},
              {"name": "busy", "tokens": 0}
            ],
            "transitions": [
              {"name": "start", "rate": 1.5,
               "inputs": [{"place": "idle"}],
               "outputs": [{"place": "busy", "count": 1}],
               "inhibitors": [{"place": "busy", "count": 2}]},
              {"name": "route", "weight": 0.7, "priority": 1,
               "inputs": [{"place": "busy"}],
               "outputs": [{"place": "idle"}]}
            ],
            "max_markings": 5000,
            "reach_jobs": 4,
            "shard_bits": 3,
            "expected_tokens": ["busy"],
            "throughput": ["start"]
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        match &spec {
            ModelSpec::Spn(s) => {
                assert_eq!(s.places.len(), 2);
                assert_eq!(s.places[0].tokens, 3);
                assert_eq!(s.transitions[0].inputs[0].count, 1); // default
                assert_eq!(s.transitions[0].inhibitors[0].count, 2);
                assert!(matches!(
                    s.transitions[1].timing,
                    SpnTimingSpec::Immediate { priority: 1, .. }
                ));
                assert_eq!(s.max_markings, Some(5000));
                assert_eq!(s.reach_jobs, Some(4));
                assert_eq!(s.shard_bits, Some(3));
            }
            _ => panic!("expected SPN spec"),
        }
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn spn_rejects_bad_transitions() {
        let base = |t: &str| {
            format!(
                r#"{{"spn": {{"places": [{{"name": "p", "tokens": 1}}],
                     "transitions": [{t}]}}}}"#
            )
        };
        // Both rate and weight.
        assert!(
            ModelSpec::from_json_str(&base(r#"{"name": "t", "rate": 1.0, "weight": 2.0}"#))
                .is_err()
        );
        // Neither.
        assert!(ModelSpec::from_json_str(&base(r#"{"name": "t"}"#)).is_err());
        // Priority on a timed transition.
        assert!(
            ModelSpec::from_json_str(&base(r#"{"name": "t", "rate": 1.0, "priority": 1}"#))
                .is_err()
        );
        // Unknown arc field.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "t", "rate": 1.0, "inputs": [{"place": "p", "weight": 2}]}"#
        ))
        .is_err());
        // Oversized shard_bits.
        assert!(ModelSpec::from_json_str(
            r#"{"spn": {"places": [{"name": "p", "tokens": 1}],
                 "transitions": [{"name": "t", "rate": 1.0}], "shard_bits": 40}}"#
        )
        .is_err());
    }

    #[test]
    fn ctmc_optional_fields_default() {
        let json = r#"{
          "ctmc": {
            "states": ["up", "down"],
            "transitions": [
              {"from": "up", "to": "down", "rate": 0.01},
              {"from": "down", "to": "up", "rate": 1.0}
            ]
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        if let ModelSpec::Ctmc(c) = spec {
            assert!(c.initial.is_none());
            assert!(c.up_states.is_none());
        } else {
            panic!("expected CTMC");
        }
    }

    #[test]
    fn ctmc_full_round_trip() {
        let json = r#"{
          "ctmc": {
            "states": ["up", "down"],
            "transitions": [{"from": "up", "to": "down", "rate": 0.5}],
            "initial": "up",
            "up_states": ["up"],
            "absorbing": ["down"],
            "at_times": [1.0, 10.0]
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn unknown_fields_rejected() {
        let json = r#"{
          "rbd": {
            "components": [{"name": "a", "availability": 0.9, "mttf": 5}],
            "structure": "a"
          }
        }"#;
        assert!(ModelSpec::from_json_str(json).is_err());
        assert!(ModelSpec::from_json_str(
            r#"{"ctmc": {"states": [], "transitions": [], "bogus": 1}}"#
        )
        .is_err());
        assert!(ModelSpec::from_json_str(r#"{"spn": {}}"#).is_err());
        assert!(ModelSpec::from_json_str(r#"{"rbd": {}, "ctmc": {}}"#).is_err());
    }

    #[test]
    fn canonical_string_is_stable() {
        let a = ModelSpec::from_json_str(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.9}],
                 "structure": "a"}}"#,
        )
        .unwrap();
        let b = ModelSpec::from_json_str(
            r#"{
              "rbd": {
                "components": [{ "availability": 0.9, "name": "a" }],
                "structure": "a"
              }
            }"#,
        )
        .unwrap();
        // Formatting and object key order in the source are irrelevant.
        assert_eq!(a.canonical_string(), b.canonical_string());
    }

    #[test]
    fn rel_graph_round_trip() {
        let json = r#"{
          "rel_graph": {
            "nodes": ["s", "t"],
            "edges": [{"name": "e", "from": "s", "to": "t",
                       "reliability": 0.99, "directed": true}],
            "source": "s",
            "sink": "t"
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        if let ModelSpec::RelGraph(g) = &spec {
            assert!(!g.all_terminal);
            assert!(g.edges[0].directed);
        } else {
            panic!("expected rel_graph");
        }
    }

    #[test]
    fn hierarchy_round_trip() {
        let json = r#"{
          "hierarchy": {
            "submodels": [
              {"name": "disk",
               "model": {"rbd": {"components": [{"name": "d", "availability": 0.99}],
                                 "structure": "d"}},
               "measure": "availability"},
              {"name": "sys",
               "model": {"rbd": {"components": [{"name": "front", "availability": 0.9}],
                                 "structure": "front"}},
               "measure": "availability",
               "initial": 0.5,
               "imports": [{"from": "disk", "path": "rbd.components.0.availability"}]}
            ],
            "output": "sys",
            "tolerance": 1e-9,
            "max_iterations": 500,
            "damping": 0.8,
            "jobs": 2
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        let ModelSpec::Hierarchy(h) = &spec else {
            panic!("expected hierarchy");
        };
        assert_eq!(h.submodels[1].imports[0].from, "disk");
        assert_eq!(h.submodels[0].measure, ScenarioMeasure::Availability);
    }

    #[test]
    fn hierarchy_rejects_bad_references() {
        // Unknown import source.
        let err = ModelSpec::from_json_str(
            r#"{"hierarchy": {"submodels": [
                 {"name": "a",
                  "model": {"rbd": {"components": [{"name": "x", "availability": 0.9}],
                                    "structure": "x"}},
                  "imports": [{"from": "ghost", "path": "rbd.components.0.availability"}]}
               ]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
        // Import path that does not resolve to a number.
        let err = ModelSpec::from_json_str(
            r#"{"hierarchy": {"submodels": [
                 {"name": "a",
                  "model": {"rbd": {"components": [{"name": "x", "availability": 0.9}],
                                    "structure": "x"}},
                  "imports": [{"from": "a", "path": "rbd.components.0.name"}]}
               ]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("rbd.components.0.name"), "{err}");
    }

    #[test]
    fn semi_markov_round_trip() {
        let json = r#"{
          "semi_markov": {
            "states": [
              {"name": "up", "sojourn": {"weibull": {"shape": 2.0, "scale": 1000.0}}},
              {"name": "down", "sojourn": {"lognormal": {"mean": 4.0, "cv2": 2.0}}}
            ],
            "transitions": [
              {"from": "up", "to": "down", "probability": 1.0},
              {"from": "down", "to": "up", "probability": 1.0}
            ],
            "initial": "up",
            "up_states": ["up"],
            "targets": ["down"],
            "interval_times": [100.0, 1000.0]
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        let ModelSpec::SemiMarkov(s) = &spec else {
            panic!("expected semi_markov");
        };
        // The mean/cv2 sugar normalized to (mu, sigma).
        assert!(matches!(s.states[1].sojourn, DistSpec::LogNormal { .. }));
    }

    #[test]
    fn semi_markov_rejections_are_path_qualified() {
        // Self-loops are rejected at parse time.
        let err = ModelSpec::from_json_str(
            r#"{"semi_markov": {
                 "states": [{"name": "up", "sojourn": {"exponential": {"rate": 1.0}}}],
                 "transitions": [{"from": "up", "to": "up", "probability": 1.0}]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("sojourn distribution"), "{err}");
        // Conflicting distribution forms name the offending JSON path.
        let err = ModelSpec::from_json_str(
            r#"{"semi_markov": {
                 "states": [
                   {"name": "up",
                    "sojourn": {"lognormal": {"mu": 1.0, "sigma": 0.5, "mean": 4.0}}}],
                 "transitions": []}}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("semi_markov.states.0.sojourn"),
            "{err}"
        );
    }

    #[test]
    fn uncertainty_round_trip() {
        let json = r#"{
          "uncertainty": {
            "model": {"ctmc": {
              "states": ["up", "down"],
              "transitions": [
                {"from": "up", "to": "down", "rate": 0.001},
                {"from": "down", "to": "up", "rate": 0.1}
              ],
              "up_states": ["up"]
            }},
            "parameters": [
              {"path": "ctmc.transitions.0.rate",
               "prior": {"rate_posterior": {"failures": 12, "total_time": 100000.0}}},
              {"path": "ctmc.transitions.1.rate",
               "prior": {"gamma": {"shape": 4.0, "rate": 40.0}}}
            ],
            "measure": "availability",
            "samples": 200,
            "level": 0.9,
            "seed": 7,
            "jobs": 2,
            "latin_hypercube": true
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        let ModelSpec::Uncertainty(u) = &spec else {
            panic!("expected uncertainty");
        };
        assert!(matches!(
            u.parameters[0].prior,
            PriorSpec::Posterior { failures: 12, .. }
        ));
        assert!(u.latin_hypercube);
    }

    #[test]
    fn uncertainty_rejections_are_path_qualified() {
        // A parameter path that is not numeric in the inner document.
        let err = ModelSpec::from_json_str(
            r#"{"uncertainty": {
                 "model": {"rbd": {"components": [{"name": "a", "availability": 0.9}],
                                   "structure": "a"}},
                 "parameters": [
                   {"path": "rbd.components.0.name",
                    "prior": {"uniform": {"low": 0.0, "high": 1.0}}}]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("rbd.components.0.name"), "{err}");
        // A bad prior names the parameter's JSON path.
        let err = ModelSpec::from_json_str(
            r#"{"uncertainty": {
                 "model": {"rbd": {"components": [{"name": "a", "availability": 0.9}],
                                   "structure": "a"}},
                 "parameters": [
                   {"path": "rbd.components.0.availability",
                    "prior": {"lognormal": {"mu": 1.0, "mean": 4.0}}}]}}"#,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("uncertainty.parameters.0.prior"),
            "{err}"
        );
    }

    #[test]
    fn bounds_round_trips_both_forms() {
        let explicit = r#"{
          "bounds": {
            "events": [
              {"name": "a", "probability": 0.01},
              {"name": "b", "probability": 0.02},
              {"name": "c", "probability": 0.03}
            ],
            "cut_sets": [["a", "b"], ["c"]],
            "path_sets": [["a", "c"], ["b", "c"]],
            "truncation_order": 2
          }
        }"#;
        let spec = ModelSpec::from_json_str(explicit).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);

        let via_tree = r#"{
          "bounds": {
            "fault_tree": {
              "events": [{"name": "e", "probability": 0.01},
                         {"name": "f", "probability": 0.02}],
              "top": {"and": ["e", "f"]}
            },
            "truncation_order": 3
          }
        }"#;
        let spec = ModelSpec::from_json_str(via_tree).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        let ModelSpec::Bounds(b) = &spec else {
            panic!("expected bounds");
        };
        assert!(b.fault_tree.is_some());
        assert_eq!(b.truncation_order, Some(3));
    }

    #[test]
    fn bounds_rejects_mixed_and_dangling_forms() {
        // fault_tree is mutually exclusive with explicit sets.
        let err = ModelSpec::from_json_str(
            r#"{"bounds": {
                 "fault_tree": {"events": [{"name": "e", "probability": 0.1}],
                                "top": "e"},
                 "cut_sets": [["e"]]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"), "{err}");
        // Cut sets must reference declared events.
        let err = ModelSpec::from_json_str(
            r#"{"bounds": {
                 "events": [{"name": "a", "probability": 0.1}],
                 "cut_sets": [["a", "ghost"]]}}"#,
        )
        .unwrap_err();
        assert!(err.to_string().contains("ghost"), "{err}");
    }
}
