//! Data model for specification documents, with hand-rolled JSON
//! binding (see [`crate::json`] for why no serde).
//!
//! Parsing is strict: unknown object keys are rejected everywhere, and
//! structure/gate nodes accept either a bare string (a leaf reference)
//! or a single-key object selecting the combinator — the same grammar
//! the original serde data model (externally tagged top level, untagged
//! recursive nodes, `deny_unknown_fields`) accepted.

use crate::json::{self, JsonValue};
use reliab_core::{Error, Result};

/// A top-level model document: exactly one model class.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelSpec {
    /// A reliability block diagram.
    Rbd(RbdSpec),
    /// A fault tree.
    FaultTree(FaultTreeSpec),
    /// A continuous-time Markov chain.
    Ctmc(CtmcSpec),
    /// An s-t reliability graph.
    RelGraph(RelGraphSpec),
    /// A stochastic Petri net.
    Spn(SpnSpec),
}

/// Stochastic-Petri-net specification.
///
/// Timed transitions carry a `rate`; immediate transitions a `weight`
/// (and optional `priority`). The reachability knobs mirror
/// `reliab-spn`'s `ReachabilityOptions` and may be overridden from
/// `SolveOptions` / the CLI.
#[derive(Debug, Clone, PartialEq)]
pub struct SpnSpec {
    /// Place declarations.
    pub places: Vec<PlaceSpec>,
    /// Transition declarations.
    pub transitions: Vec<SpnTransitionSpec>,
    /// Cap on tangible markings (default 1 000 000).
    pub max_markings: Option<usize>,
    /// Worker threads for state-space generation (`0` = one per CPU;
    /// default 1, the sequential reference). Overridden by a
    /// non-default `SolveOptions::reach_jobs`.
    pub reach_jobs: Option<usize>,
    /// log2 intern-table shards for the parallel generator.
    pub shard_bits: Option<u32>,
    /// Places to report steady-state expected token counts for
    /// (default: every place).
    pub expected_tokens: Option<Vec<String>>,
    /// Timed transitions to report steady-state throughput for
    /// (default: none).
    pub throughput: Option<Vec<String>>,
}

/// One SPN place.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaceSpec {
    /// Place name.
    pub name: String,
    /// Initial token count.
    pub tokens: u32,
}

/// One SPN transition (timed or immediate).
#[derive(Debug, Clone, PartialEq)]
pub struct SpnTransitionSpec {
    /// Transition name.
    pub name: String,
    /// Timed rate or immediate weight/priority.
    pub timing: SpnTimingSpec,
    /// Input arcs (tokens consumed; enablement condition).
    pub inputs: Vec<ArcSpec>,
    /// Output arcs (tokens produced).
    pub outputs: Vec<ArcSpec>,
    /// Inhibitor arcs (disabled at or above the threshold).
    pub inhibitors: Vec<ArcSpec>,
}

/// Timing of an SPN transition.
#[derive(Debug, Clone, PartialEq)]
pub enum SpnTimingSpec {
    /// Exponential transition with a constant rate.
    Timed {
        /// Firing rate (per time unit).
        rate: f64,
    },
    /// Immediate transition.
    Immediate {
        /// Branching weight among equal-priority immediates.
        weight: f64,
        /// Priority (higher fires first; default 0).
        priority: u32,
    },
}

/// One arc of an SPN transition.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcSpec {
    /// Place name.
    pub place: String,
    /// Multiplicity / inhibitor threshold (default 1).
    pub count: u32,
}

/// Reliability-graph specification.
#[derive(Debug, Clone, PartialEq)]
pub struct RelGraphSpec {
    /// Node names.
    pub nodes: Vec<String>,
    /// Edge declarations.
    pub edges: Vec<EdgeSpec>,
    /// Source terminal.
    pub source: String,
    /// Sink terminal.
    pub sink: String,
    /// Also compute all-terminal reliability (undirected graphs only).
    pub all_terminal: bool,
}

/// One graph edge (a failure-prone component).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSpec {
    /// Edge name.
    pub name: String,
    /// Tail node.
    pub from: String,
    /// Head node.
    pub to: String,
    /// Probability the edge works.
    pub reliability: f64,
    /// Directed edge (default: undirected).
    pub directed: bool,
}

/// RBD specification.
#[derive(Debug, Clone, PartialEq)]
pub struct RbdSpec {
    /// Component declarations.
    pub components: Vec<RbdComponentSpec>,
    /// The block structure.
    pub structure: StructureSpec,
    /// Discrete-event simulation request: when present, the model is
    /// solved by simulation (components then need lifetime
    /// distributions) instead of the exact BDD evaluation.
    pub sim: Option<SimSpec>,
}

/// One RBD component.
///
/// Either a point `availability` or a `ttf_dist` (plus `ttr_dist` for
/// repairable components) must be given. Analytic solves use
/// `availability` directly, deriving it from the distribution means
/// (`E[ttf] / (E[ttf] + E[ttr])`) when absent; simulation requires the
/// distributions.
#[derive(Debug, Clone, PartialEq)]
pub struct RbdComponentSpec {
    /// Component name (referenced from the structure).
    pub name: String,
    /// Steady-state availability (or any point probability of being
    /// up).
    pub availability: Option<f64>,
    /// Time-to-failure distribution (required for simulation).
    pub ttf_dist: Option<DistSpec>,
    /// Time-to-repair distribution; absent means the component is
    /// never repaired once failed.
    pub ttr_dist: Option<DistSpec>,
}

/// A lifetime/repair distribution: a single-key object selecting the
/// family, e.g. `{"exponential": {"rate": 0.001}}`.
///
/// Exponential also accepts `{"mean": m}` (normalized to `rate = 1/m`)
/// and lognormal accepts `{"mean": m, "cv2": c}` (normalized to
/// `mu`/`sigma`); [`DistSpec`] always stores — and `to_json` always
/// emits — the canonical parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum DistSpec {
    /// Exponential with the given rate.
    Exponential {
        /// Failure/repair rate (1 / mean).
        rate: f64,
    },
    /// Weibull.
    Weibull {
        /// Shape parameter (k > 1 = wear-out).
        shape: f64,
        /// Scale parameter (characteristic life).
        scale: f64,
    },
    /// Lognormal.
    LogNormal {
        /// Location of the underlying normal.
        mu: f64,
        /// Scale of the underlying normal.
        sigma: f64,
    },
    /// Pareto (Lomax): heavy-tailed, mean `scale/(shape-1)` for
    /// `shape > 1`.
    Pareto {
        /// Tail index.
        shape: f64,
        /// Scale parameter.
        scale: f64,
    },
    /// Gamma.
    Gamma {
        /// Shape parameter.
        shape: f64,
        /// Rate parameter (1 / scale).
        rate: f64,
    },
    /// Uniform on `[low, high]`.
    Uniform {
        /// Lower endpoint.
        low: f64,
        /// Upper endpoint.
        high: f64,
    },
    /// A deterministic (constant) duration.
    Deterministic {
        /// The constant value.
        value: f64,
    },
}

/// What a `sim` block estimates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimMeasure {
    /// Steady-state availability (requires `horizon`).
    Availability,
    /// Mission reliability (requires `mission_time`).
    Reliability,
    /// Mean time to first system failure (requires `time_cap`).
    Mttf,
}

impl SimMeasure {
    /// Parses the JSON spelling.
    #[must_use]
    pub fn parse(s: &str) -> Option<SimMeasure> {
        match s {
            "availability" => Some(SimMeasure::Availability),
            "reliability" => Some(SimMeasure::Reliability),
            "mttf" => Some(SimMeasure::Mttf),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`SimMeasure::parse`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SimMeasure::Availability => "availability",
            SimMeasure::Reliability => "reliability",
            SimMeasure::Mttf => "mttf",
        }
    }
}

/// Discrete-event simulation request attached to an RBD or fault tree.
///
/// Only `measure` and its matching time parameter are required; every
/// other knob inherits the `reliab-sim` driver default and may be
/// overridden from `SolveOptions` / the CLI (`--sim-seed` etc.), which
/// win over the spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SimSpec {
    /// The estimated measure.
    pub measure: SimMeasure,
    /// Trajectory length per replication (availability).
    pub horizon: Option<f64>,
    /// Mission end time (reliability).
    pub mission_time: Option<f64>,
    /// Censoring guard for non-failing replications (mttf).
    pub time_cap: Option<f64>,
    /// Master RNG seed.
    pub seed: Option<u64>,
    /// Worker threads (0 = one per CPU). Never affects results.
    pub jobs: Option<usize>,
    /// Hard replication budget.
    pub max_replications: Option<usize>,
    /// Replications to run before adaptive stopping may trigger.
    pub min_replications: Option<usize>,
    /// Relative CI half-width stopping target (0 disables adaptive
    /// stopping: exactly `max_replications` run).
    pub rel_precision: Option<f64>,
    /// Confidence level of the reported interval.
    pub confidence: Option<f64>,
    /// Batch windows per trajectory (availability variance).
    pub batches: Option<usize>,
    /// Fraction of the horizon discarded as warmup (availability).
    pub warmup_fraction: Option<f64>,
}

/// Recursive RBD structure.
#[derive(Debug, Clone, PartialEq)]
pub enum StructureSpec {
    /// Reference to a component by name.
    Component(String),
    /// Series group.
    Series {
        /// The members, all required.
        series: Vec<StructureSpec>,
    },
    /// Parallel group.
    Parallel {
        /// The members, any one suffices.
        parallel: Vec<StructureSpec>,
    },
    /// k-of-n group.
    KOfN {
        /// The `{ "k": ..., "of": [...] }` payload.
        k_of_n: KOfNSpec,
    },
}

/// Payload of a k-of-n group.
#[derive(Debug, Clone, PartialEq)]
pub struct KOfNSpec {
    /// Members required to work (RBD) / fail (fault tree).
    pub k: usize,
    /// The members.
    pub of: Vec<StructureSpec>,
}

/// Fault-tree specification.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTreeSpec {
    /// Basic-event declarations.
    pub events: Vec<EventSpec>,
    /// The top gate.
    pub top: GateSpec,
    /// Cap on intermediate cut sets during enumeration (default
    /// 100 000; the BDD probability itself has no such cap).
    pub max_cut_sets: Option<usize>,
    /// BDD variable-ordering hint: `"auto"`, `"input"`, `"dfs"`,
    /// `"weighted"`, or `"sift"`. Overridden by a non-`Auto`
    /// `SolveOptions::var_order`; absent means `"auto"`.
    pub var_order: Option<crate::report::VarOrder>,
    /// Discrete-event simulation request: when present, the model is
    /// solved by simulating event lifetimes (which then need
    /// distributions) instead of the exact BDD evaluation.
    pub sim: Option<SimSpec>,
}

/// One basic event.
///
/// Either a point `probability` or a `ttf_dist` (plus `ttr_dist` for
/// repairable events) must be given; the same rules as
/// [`RbdComponentSpec`] apply, with the derived analytic value being
/// the *unavailability* `E[ttr] / (E[ttf] + E[ttr])`.
#[derive(Debug, Clone, PartialEq)]
pub struct EventSpec {
    /// Event name.
    pub name: String,
    /// Failure probability.
    pub probability: Option<f64>,
    /// Time-to-failure distribution (required for simulation).
    pub ttf_dist: Option<DistSpec>,
    /// Time-to-repair distribution; absent means no repair.
    pub ttr_dist: Option<DistSpec>,
}

/// Recursive gate structure.
#[derive(Debug, Clone, PartialEq)]
pub enum GateSpec {
    /// Reference to a basic event.
    Event(String),
    /// AND gate.
    And {
        /// Inputs; fails when all fail.
        and: Vec<GateSpec>,
    },
    /// OR gate.
    Or {
        /// Inputs; fails when any fails.
        or: Vec<GateSpec>,
    },
    /// k-of-n voting gate.
    KOfN {
        /// The `{ "k": ..., "of": [...] }` payload.
        k_of_n: KOfNGateSpec,
    },
}

/// Payload of a voting gate.
#[derive(Debug, Clone, PartialEq)]
pub struct KOfNGateSpec {
    /// Failures required to trip the gate.
    pub k: usize,
    /// Gate inputs.
    pub of: Vec<GateSpec>,
}

/// CTMC specification.
#[derive(Debug, Clone, PartialEq)]
pub struct CtmcSpec {
    /// State names.
    pub states: Vec<String>,
    /// Transition list.
    pub transitions: Vec<TransitionSpec>,
    /// Initial state (for MTTF / transient measures). Defaults to the
    /// first state.
    pub initial: Option<String>,
    /// Operational states (availability is their steady-state mass).
    pub up_states: Option<Vec<String>>,
    /// Failure states for MTTF.
    pub absorbing: Option<Vec<String>>,
    /// Time points for transient state probabilities.
    pub at_times: Option<Vec<f64>>,
}

/// One CTMC transition.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionSpec {
    /// Source state name.
    pub from: String,
    /// Destination state name.
    pub to: String,
    /// Transition rate (per time unit).
    pub rate: f64,
}

// ---------------------------------------------------------------------
// Parsing

fn schema_err(msg: impl std::fmt::Display) -> Error {
    Error::invalid(format!("specification does not match schema: {msg}"))
}

fn as_obj<'a>(v: &'a JsonValue, what: &str) -> Result<&'a [(String, JsonValue)]> {
    v.as_object()
        .ok_or_else(|| schema_err(format!("{what} must be an object")))
}

fn check_keys(entries: &[(String, JsonValue)], allowed: &[&str], what: &str) -> Result<()> {
    for (k, _) in entries {
        if !allowed.contains(&k.as_str()) {
            return Err(schema_err(format!("unknown field '{k}' in {what}")));
        }
    }
    Ok(())
}

fn req<'a>(v: &'a JsonValue, key: &str, what: &str) -> Result<&'a JsonValue> {
    v.get(key)
        .ok_or_else(|| schema_err(format!("{what} is missing required field '{key}'")))
}

fn str_field(v: &JsonValue, key: &str, what: &str) -> Result<String> {
    req(v, key, what)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| schema_err(format!("field '{key}' of {what} must be a string")))
}

fn f64_field(v: &JsonValue, key: &str, what: &str) -> Result<f64> {
    req(v, key, what)?
        .as_f64()
        .ok_or_else(|| schema_err(format!("field '{key}' of {what} must be a number")))
}

fn string_list(v: &JsonValue, what: &str) -> Result<Vec<String>> {
    v.as_array()
        .ok_or_else(|| schema_err(format!("{what} must be an array")))?
        .iter()
        .map(|item| {
            item.as_str()
                .map(str::to_owned)
                .ok_or_else(|| schema_err(format!("{what} entries must be strings")))
        })
        .collect()
}

impl ModelSpec {
    /// Parses a specification from JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] for malformed JSON or a
    /// document that does not match the schema.
    pub fn from_json_str(text: &str) -> Result<ModelSpec> {
        let v = json::parse(text).map_err(schema_err)?;
        ModelSpec::from_json(&v)
    }

    /// Parses a specification from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// See [`ModelSpec::from_json_str`].
    pub fn from_json(v: &JsonValue) -> Result<ModelSpec> {
        let entries = as_obj(v, "model document")?;
        if entries.len() != 1 {
            return Err(schema_err(
                "model document must have exactly one top-level key \
                 (one of 'rbd', 'fault_tree', 'ctmc', 'rel_graph', 'spn')",
            ));
        }
        let (key, payload) = &entries[0];
        match key.as_str() {
            "rbd" => Ok(ModelSpec::Rbd(RbdSpec::from_json(payload)?)),
            "fault_tree" => Ok(ModelSpec::FaultTree(FaultTreeSpec::from_json(payload)?)),
            "ctmc" => Ok(ModelSpec::Ctmc(CtmcSpec::from_json(payload)?)),
            "rel_graph" => Ok(ModelSpec::RelGraph(RelGraphSpec::from_json(payload)?)),
            "spn" => Ok(ModelSpec::Spn(SpnSpec::from_json(payload)?)),
            other => Err(schema_err(format!("unknown model class '{other}'"))),
        }
    }

    /// Serializes back to the JSON data model (the inverse of
    /// [`ModelSpec::from_json`]).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        match self {
            ModelSpec::Rbd(r) => json::object(vec![("rbd", r.to_json())]),
            ModelSpec::FaultTree(f) => json::object(vec![("fault_tree", f.to_json())]),
            ModelSpec::Ctmc(c) => json::object(vec![("ctmc", c.to_json())]),
            ModelSpec::RelGraph(g) => json::object(vec![("rel_graph", g.to_json())]),
            ModelSpec::Spn(s) => json::object(vec![("spn", s.to_json())]),
        }
    }

    /// Deterministic single-line serialization. Two structurally equal
    /// specs produce equal strings, making this usable as a cache key
    /// (the batch engine's memo map is keyed on it).
    #[must_use]
    pub fn canonical_string(&self) -> String {
        self.to_json().to_json()
    }
}

impl RbdSpec {
    fn from_json(v: &JsonValue) -> Result<RbdSpec> {
        check_keys(
            as_obj(v, "rbd")?,
            &["components", "structure", "sim"],
            "rbd",
        )?;
        let components = req(v, "components", "rbd")?
            .as_array()
            .ok_or_else(|| schema_err("rbd 'components' must be an array"))?
            .iter()
            .map(RbdComponentSpec::from_json)
            .collect::<Result<_>>()?;
        let structure = StructureSpec::from_json(req(v, "structure", "rbd")?)?;
        Ok(RbdSpec {
            components,
            structure,
            sim: SimSpec::from_json_opt(v.get("sim"))?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "components",
                JsonValue::Array(
                    self.components
                        .iter()
                        .map(RbdComponentSpec::to_json)
                        .collect(),
                ),
            ),
            ("structure", self.structure.to_json()),
        ];
        if let Some(sim) = &self.sim {
            entries.push(("sim", sim.to_json()));
        }
        json::object(entries)
    }
}

impl RbdComponentSpec {
    fn from_json(v: &JsonValue) -> Result<RbdComponentSpec> {
        check_keys(
            as_obj(v, "component")?,
            &["name", "availability", "ttf_dist", "ttr_dist"],
            "component",
        )?;
        let name = str_field(v, "name", "component")?;
        let availability = match v.get("availability") {
            None | Some(JsonValue::Null) => None,
            Some(a) => Some(
                a.as_f64()
                    .ok_or_else(|| schema_err("'availability' must be a number"))?,
            ),
        };
        let ttf_dist = DistSpec::from_json_opt(v.get("ttf_dist"))?;
        let ttr_dist = DistSpec::from_json_opt(v.get("ttr_dist"))?;
        if availability.is_none() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "component '{name}' needs an 'availability' or a 'ttf_dist'"
            )));
        }
        if ttr_dist.is_some() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "component '{name}' has a 'ttr_dist' but no 'ttf_dist'"
            )));
        }
        Ok(RbdComponentSpec {
            name,
            availability,
            ttf_dist,
            ttr_dist,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("name", JsonValue::from(self.name.as_str()))];
        if let Some(a) = self.availability {
            entries.push(("availability", a.into()));
        }
        if let Some(d) = &self.ttf_dist {
            entries.push(("ttf_dist", d.to_json()));
        }
        if let Some(d) = &self.ttr_dist {
            entries.push(("ttr_dist", d.to_json()));
        }
        json::object(entries)
    }
}

impl DistSpec {
    fn from_json_opt(v: Option<&JsonValue>) -> Result<Option<DistSpec>> {
        match v {
            None | Some(JsonValue::Null) => Ok(None),
            Some(d) => DistSpec::from_json(d).map(Some),
        }
    }

    fn from_json(v: &JsonValue) -> Result<DistSpec> {
        let entries = as_obj(v, "distribution")?;
        if entries.len() != 1 {
            return Err(schema_err(
                "distribution must be an object with exactly one key (the family, \
                 one of 'exponential', 'weibull', 'lognormal', 'pareto', 'gamma', \
                 'uniform', 'deterministic')",
            ));
        }
        let (key, p) = &entries[0];
        let what = key.as_str();
        match what {
            "exponential" => {
                check_keys(as_obj(p, what)?, &["rate", "mean"], what)?;
                let rate = match (p.get("rate"), p.get("mean")) {
                    (Some(r), None) => r
                        .as_f64()
                        .ok_or_else(|| schema_err("'rate' must be a number"))?,
                    (None, Some(m)) => {
                        let m = m
                            .as_f64()
                            .ok_or_else(|| schema_err("'mean' must be a number"))?;
                        if !(m > 0.0 && m.is_finite()) {
                            return Err(schema_err(format!(
                                "exponential 'mean' must be positive and finite, got {m}"
                            )));
                        }
                        1.0 / m
                    }
                    _ => {
                        return Err(schema_err(
                            "exponential needs exactly one of 'rate' or 'mean'",
                        ))
                    }
                };
                Ok(DistSpec::Exponential { rate })
            }
            "weibull" => {
                check_keys(as_obj(p, what)?, &["shape", "scale"], what)?;
                Ok(DistSpec::Weibull {
                    shape: f64_field(p, "shape", what)?,
                    scale: f64_field(p, "scale", what)?,
                })
            }
            "lognormal" => {
                check_keys(as_obj(p, what)?, &["mu", "sigma", "mean", "cv2"], what)?;
                match (p.get("mu"), p.get("sigma"), p.get("mean"), p.get("cv2")) {
                    (Some(_), Some(_), None, None) => Ok(DistSpec::LogNormal {
                        mu: f64_field(p, "mu", what)?,
                        sigma: f64_field(p, "sigma", what)?,
                    }),
                    (None, None, Some(_), Some(_)) => {
                        let mean = f64_field(p, "mean", what)?;
                        let cv2 = f64_field(p, "cv2", what)?;
                        if !(mean > 0.0 && mean.is_finite() && cv2 > 0.0 && cv2.is_finite()) {
                            return Err(schema_err(format!(
                                "lognormal 'mean' and 'cv2' must be positive and finite, \
                                 got mean {mean}, cv2 {cv2}"
                            )));
                        }
                        let sigma2 = (1.0 + cv2).ln();
                        Ok(DistSpec::LogNormal {
                            mu: mean.ln() - sigma2 / 2.0,
                            sigma: sigma2.sqrt(),
                        })
                    }
                    _ => Err(schema_err(
                        "lognormal needs either 'mu' and 'sigma' or 'mean' and 'cv2'",
                    )),
                }
            }
            "pareto" => {
                check_keys(as_obj(p, what)?, &["shape", "scale"], what)?;
                Ok(DistSpec::Pareto {
                    shape: f64_field(p, "shape", what)?,
                    scale: f64_field(p, "scale", what)?,
                })
            }
            "gamma" => {
                check_keys(as_obj(p, what)?, &["shape", "rate"], what)?;
                Ok(DistSpec::Gamma {
                    shape: f64_field(p, "shape", what)?,
                    rate: f64_field(p, "rate", what)?,
                })
            }
            "uniform" => {
                check_keys(as_obj(p, what)?, &["low", "high"], what)?;
                Ok(DistSpec::Uniform {
                    low: f64_field(p, "low", what)?,
                    high: f64_field(p, "high", what)?,
                })
            }
            "deterministic" => {
                check_keys(as_obj(p, what)?, &["value"], what)?;
                Ok(DistSpec::Deterministic {
                    value: f64_field(p, "value", what)?,
                })
            }
            other => Err(schema_err(format!("unknown distribution family '{other}'"))),
        }
    }

    /// Serializes back to the single-key JSON grammar (always the
    /// canonical parameters).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let (family, fields) = match self {
            DistSpec::Exponential { rate } => ("exponential", vec![("rate", (*rate).into())]),
            DistSpec::Weibull { shape, scale } => (
                "weibull",
                vec![("shape", (*shape).into()), ("scale", (*scale).into())],
            ),
            DistSpec::LogNormal { mu, sigma } => (
                "lognormal",
                vec![("mu", (*mu).into()), ("sigma", (*sigma).into())],
            ),
            DistSpec::Pareto { shape, scale } => (
                "pareto",
                vec![("shape", (*shape).into()), ("scale", (*scale).into())],
            ),
            DistSpec::Gamma { shape, rate } => (
                "gamma",
                vec![("shape", (*shape).into()), ("rate", (*rate).into())],
            ),
            DistSpec::Uniform { low, high } => (
                "uniform",
                vec![("low", (*low).into()), ("high", (*high).into())],
            ),
            DistSpec::Deterministic { value } => {
                ("deterministic", vec![("value", (*value).into())])
            }
        };
        json::object(vec![(family, json::object(fields))])
    }
}

impl SimSpec {
    fn from_json_opt(v: Option<&JsonValue>) -> Result<Option<SimSpec>> {
        match v {
            None | Some(JsonValue::Null) => Ok(None),
            Some(s) => SimSpec::from_json(s).map(Some),
        }
    }

    fn from_json(v: &JsonValue) -> Result<SimSpec> {
        check_keys(
            as_obj(v, "sim")?,
            &[
                "measure",
                "horizon",
                "mission_time",
                "time_cap",
                "seed",
                "jobs",
                "max_replications",
                "min_replications",
                "rel_precision",
                "confidence",
                "batches",
                "warmup_fraction",
            ],
            "sim",
        )?;
        let measure_str = str_field(v, "measure", "sim")?;
        let measure = SimMeasure::parse(&measure_str).ok_or_else(|| {
            schema_err(format!(
                "sim 'measure' must be one of availability, reliability, mttf \
                 (got '{measure_str}')"
            ))
        })?;
        let opt_f64 = |key: &str| -> Result<Option<f64>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => {
                    Ok(Some(x.as_f64().ok_or_else(|| {
                        schema_err(format!("sim '{key}' must be a number"))
                    })?))
                }
            }
        };
        let opt_usize = |key: &str| -> Result<Option<usize>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(x) => Ok(Some(x.as_usize().ok_or_else(|| {
                    schema_err(format!("sim '{key}' must be a non-negative integer"))
                })?)),
            }
        };
        let spec = SimSpec {
            measure,
            horizon: opt_f64("horizon")?,
            mission_time: opt_f64("mission_time")?,
            time_cap: opt_f64("time_cap")?,
            seed: opt_usize("seed")?.map(|s| s as u64),
            jobs: opt_usize("jobs")?,
            max_replications: opt_usize("max_replications")?,
            min_replications: opt_usize("min_replications")?,
            rel_precision: opt_f64("rel_precision")?,
            confidence: opt_f64("confidence")?,
            batches: opt_usize("batches")?,
            warmup_fraction: opt_f64("warmup_fraction")?,
        };
        let (required, present) = match spec.measure {
            SimMeasure::Availability => ("horizon", spec.horizon.is_some()),
            SimMeasure::Reliability => ("mission_time", spec.mission_time.is_some()),
            SimMeasure::Mttf => ("time_cap", spec.time_cap.is_some()),
        };
        if !present {
            return Err(schema_err(format!(
                "sim measure '{}' requires '{required}'",
                spec.measure.as_str()
            )));
        }
        Ok(spec)
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("measure", JsonValue::from(self.measure.as_str()))];
        let mut num = |key: &'static str, x: Option<f64>| {
            if let Some(x) = x {
                entries.push((key, x.into()));
            }
        };
        num("horizon", self.horizon);
        num("mission_time", self.mission_time);
        num("time_cap", self.time_cap);
        num("seed", self.seed.map(|s| s as f64));
        num("jobs", self.jobs.map(|j| j as f64));
        num("max_replications", self.max_replications.map(|m| m as f64));
        num("min_replications", self.min_replications.map(|m| m as f64));
        num("rel_precision", self.rel_precision);
        num("confidence", self.confidence);
        num("batches", self.batches.map(|b| b as f64));
        num("warmup_fraction", self.warmup_fraction);
        json::object(entries)
    }
}

impl StructureSpec {
    fn from_json(v: &JsonValue) -> Result<StructureSpec> {
        if let Some(name) = v.as_str() {
            return Ok(StructureSpec::Component(name.to_owned()));
        }
        let entries = v
            .as_object()
            .ok_or_else(|| schema_err("structure must be a name or a combinator object"))?;
        if entries.len() != 1 {
            return Err(schema_err(
                "structure object must have exactly one key ('series', 'parallel', or 'k_of_n')",
            ));
        }
        let (key, payload) = &entries[0];
        let members = |p: &JsonValue, what: &str| -> Result<Vec<StructureSpec>> {
            p.as_array()
                .ok_or_else(|| schema_err(format!("'{what}' must be an array")))?
                .iter()
                .map(StructureSpec::from_json)
                .collect()
        };
        match key.as_str() {
            "series" => Ok(StructureSpec::Series {
                series: members(payload, "series")?,
            }),
            "parallel" => Ok(StructureSpec::Parallel {
                parallel: members(payload, "parallel")?,
            }),
            "k_of_n" => {
                check_keys(as_obj(payload, "k_of_n")?, &["k", "of"], "k_of_n")?;
                let k = req(payload, "k", "k_of_n")?
                    .as_usize()
                    .ok_or_else(|| schema_err("'k' must be a non-negative integer"))?;
                Ok(StructureSpec::KOfN {
                    k_of_n: KOfNSpec {
                        k,
                        of: members(req(payload, "of", "k_of_n")?, "of")?,
                    },
                })
            }
            other => Err(schema_err(format!(
                "unknown structure combinator '{other}'"
            ))),
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            StructureSpec::Component(name) => name.as_str().into(),
            StructureSpec::Series { series } => json::object(vec![(
                "series",
                JsonValue::Array(series.iter().map(StructureSpec::to_json).collect()),
            )]),
            StructureSpec::Parallel { parallel } => json::object(vec![(
                "parallel",
                JsonValue::Array(parallel.iter().map(StructureSpec::to_json).collect()),
            )]),
            StructureSpec::KOfN { k_of_n } => json::object(vec![(
                "k_of_n",
                json::object(vec![
                    ("k", JsonValue::Number(k_of_n.k as f64)),
                    (
                        "of",
                        JsonValue::Array(k_of_n.of.iter().map(StructureSpec::to_json).collect()),
                    ),
                ]),
            )]),
        }
    }
}

impl FaultTreeSpec {
    fn from_json(v: &JsonValue) -> Result<FaultTreeSpec> {
        check_keys(
            as_obj(v, "fault_tree")?,
            &["events", "top", "max_cut_sets", "var_order", "sim"],
            "fault_tree",
        )?;
        let events = req(v, "events", "fault_tree")?
            .as_array()
            .ok_or_else(|| schema_err("fault_tree 'events' must be an array"))?
            .iter()
            .map(EventSpec::from_json)
            .collect::<Result<_>>()?;
        let top = GateSpec::from_json(req(v, "top", "fault_tree")?)?;
        let max_cut_sets = match v.get("max_cut_sets") {
            None | Some(JsonValue::Null) => None,
            Some(m) => Some(
                m.as_usize()
                    .ok_or_else(|| schema_err("'max_cut_sets' must be a non-negative integer"))?,
            ),
        };
        let var_order = match v.get("var_order") {
            None | Some(JsonValue::Null) => None,
            Some(o) => {
                let s = o
                    .as_str()
                    .ok_or_else(|| schema_err("'var_order' must be a string"))?;
                Some(crate::report::VarOrder::parse(s).ok_or_else(|| {
                    schema_err(format!(
                        "'var_order' must be one of auto, input, dfs, weighted, sift (got '{s}')"
                    ))
                })?)
            }
        };
        Ok(FaultTreeSpec {
            events,
            top,
            max_cut_sets,
            var_order,
            sim: SimSpec::from_json_opt(v.get("sim"))?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "events",
                JsonValue::Array(self.events.iter().map(EventSpec::to_json).collect()),
            ),
            ("top", self.top.to_json()),
        ];
        if let Some(m) = self.max_cut_sets {
            entries.push(("max_cut_sets", JsonValue::Number(m as f64)));
        }
        if let Some(o) = self.var_order {
            entries.push(("var_order", JsonValue::from(o.as_str())));
        }
        if let Some(sim) = &self.sim {
            entries.push(("sim", sim.to_json()));
        }
        json::object(entries)
    }
}

impl EventSpec {
    fn from_json(v: &JsonValue) -> Result<EventSpec> {
        check_keys(
            as_obj(v, "event")?,
            &["name", "probability", "ttf_dist", "ttr_dist"],
            "event",
        )?;
        let name = str_field(v, "name", "event")?;
        let probability = match v.get("probability") {
            None | Some(JsonValue::Null) => None,
            Some(p) => Some(
                p.as_f64()
                    .ok_or_else(|| schema_err("'probability' must be a number"))?,
            ),
        };
        let ttf_dist = DistSpec::from_json_opt(v.get("ttf_dist"))?;
        let ttr_dist = DistSpec::from_json_opt(v.get("ttr_dist"))?;
        if probability.is_none() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "event '{name}' needs a 'probability' or a 'ttf_dist'"
            )));
        }
        if ttr_dist.is_some() && ttf_dist.is_none() {
            return Err(schema_err(format!(
                "event '{name}' has a 'ttr_dist' but no 'ttf_dist'"
            )));
        }
        Ok(EventSpec {
            name,
            probability,
            ttf_dist,
            ttr_dist,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("name", JsonValue::from(self.name.as_str()))];
        if let Some(p) = self.probability {
            entries.push(("probability", p.into()));
        }
        if let Some(d) = &self.ttf_dist {
            entries.push(("ttf_dist", d.to_json()));
        }
        if let Some(d) = &self.ttr_dist {
            entries.push(("ttr_dist", d.to_json()));
        }
        json::object(entries)
    }
}

impl GateSpec {
    fn from_json(v: &JsonValue) -> Result<GateSpec> {
        if let Some(name) = v.as_str() {
            return Ok(GateSpec::Event(name.to_owned()));
        }
        let entries = v
            .as_object()
            .ok_or_else(|| schema_err("gate must be an event name or a gate object"))?;
        if entries.len() != 1 {
            return Err(schema_err(
                "gate object must have exactly one key ('and', 'or', or 'k_of_n')",
            ));
        }
        let (key, payload) = &entries[0];
        let inputs = |p: &JsonValue, what: &str| -> Result<Vec<GateSpec>> {
            p.as_array()
                .ok_or_else(|| schema_err(format!("'{what}' must be an array")))?
                .iter()
                .map(GateSpec::from_json)
                .collect()
        };
        match key.as_str() {
            "and" => Ok(GateSpec::And {
                and: inputs(payload, "and")?,
            }),
            "or" => Ok(GateSpec::Or {
                or: inputs(payload, "or")?,
            }),
            "k_of_n" => {
                check_keys(as_obj(payload, "k_of_n")?, &["k", "of"], "k_of_n")?;
                let k = req(payload, "k", "k_of_n")?
                    .as_usize()
                    .ok_or_else(|| schema_err("'k' must be a non-negative integer"))?;
                Ok(GateSpec::KOfN {
                    k_of_n: KOfNGateSpec {
                        k,
                        of: inputs(req(payload, "of", "k_of_n")?, "of")?,
                    },
                })
            }
            other => Err(schema_err(format!("unknown gate type '{other}'"))),
        }
    }

    fn to_json(&self) -> JsonValue {
        match self {
            GateSpec::Event(name) => name.as_str().into(),
            GateSpec::And { and } => json::object(vec![(
                "and",
                JsonValue::Array(and.iter().map(GateSpec::to_json).collect()),
            )]),
            GateSpec::Or { or } => json::object(vec![(
                "or",
                JsonValue::Array(or.iter().map(GateSpec::to_json).collect()),
            )]),
            GateSpec::KOfN { k_of_n } => json::object(vec![(
                "k_of_n",
                json::object(vec![
                    ("k", JsonValue::Number(k_of_n.k as f64)),
                    (
                        "of",
                        JsonValue::Array(k_of_n.of.iter().map(GateSpec::to_json).collect()),
                    ),
                ]),
            )]),
        }
    }
}

impl CtmcSpec {
    fn from_json(v: &JsonValue) -> Result<CtmcSpec> {
        check_keys(
            as_obj(v, "ctmc")?,
            &[
                "states",
                "transitions",
                "initial",
                "up_states",
                "absorbing",
                "at_times",
            ],
            "ctmc",
        )?;
        let states = string_list(req(v, "states", "ctmc")?, "ctmc 'states'")?;
        let transitions = req(v, "transitions", "ctmc")?
            .as_array()
            .ok_or_else(|| schema_err("ctmc 'transitions' must be an array"))?
            .iter()
            .map(TransitionSpec::from_json)
            .collect::<Result<_>>()?;
        let initial = match v.get("initial") {
            None | Some(JsonValue::Null) => None,
            Some(i) => Some(
                i.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| schema_err("'initial' must be a state name"))?,
            ),
        };
        let optional_names = |key: &str| -> Result<Option<Vec<String>>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(list) => Ok(Some(string_list(list, key)?)),
            }
        };
        let at_times = match v.get("at_times") {
            None | Some(JsonValue::Null) => None,
            Some(list) => Some(
                list.as_array()
                    .ok_or_else(|| schema_err("'at_times' must be an array"))?
                    .iter()
                    .map(|t| {
                        t.as_f64()
                            .ok_or_else(|| schema_err("'at_times' entries must be numbers"))
                    })
                    .collect::<Result<Vec<f64>>>()?,
            ),
        };
        Ok(CtmcSpec {
            states,
            transitions,
            initial,
            up_states: optional_names("up_states")?,
            absorbing: optional_names("absorbing")?,
            at_times,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            ("states", json::string_array(&self.states)),
            (
                "transitions",
                JsonValue::Array(
                    self.transitions
                        .iter()
                        .map(TransitionSpec::to_json)
                        .collect(),
                ),
            ),
        ];
        if let Some(i) = &self.initial {
            entries.push(("initial", i.as_str().into()));
        }
        if let Some(up) = &self.up_states {
            entries.push(("up_states", json::string_array(up)));
        }
        if let Some(a) = &self.absorbing {
            entries.push(("absorbing", json::string_array(a)));
        }
        if let Some(times) = &self.at_times {
            entries.push((
                "at_times",
                JsonValue::Array(times.iter().map(|&t| t.into()).collect()),
            ));
        }
        json::object(entries)
    }
}

impl TransitionSpec {
    fn from_json(v: &JsonValue) -> Result<TransitionSpec> {
        check_keys(
            as_obj(v, "transition")?,
            &["from", "to", "rate"],
            "transition",
        )?;
        Ok(TransitionSpec {
            from: str_field(v, "from", "transition")?,
            to: str_field(v, "to", "transition")?,
            rate: f64_field(v, "rate", "transition")?,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("from", self.from.as_str().into()),
            ("to", self.to.as_str().into()),
            ("rate", self.rate.into()),
        ])
    }
}

impl RelGraphSpec {
    fn from_json(v: &JsonValue) -> Result<RelGraphSpec> {
        check_keys(
            as_obj(v, "rel_graph")?,
            &["nodes", "edges", "source", "sink", "all_terminal"],
            "rel_graph",
        )?;
        let edges = req(v, "edges", "rel_graph")?
            .as_array()
            .ok_or_else(|| schema_err("rel_graph 'edges' must be an array"))?
            .iter()
            .map(EdgeSpec::from_json)
            .collect::<Result<_>>()?;
        let all_terminal = match v.get("all_terminal") {
            None | Some(JsonValue::Null) => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| schema_err("'all_terminal' must be a boolean"))?,
        };
        Ok(RelGraphSpec {
            nodes: string_list(req(v, "nodes", "rel_graph")?, "rel_graph 'nodes'")?,
            edges,
            source: str_field(v, "source", "rel_graph")?,
            sink: str_field(v, "sink", "rel_graph")?,
            all_terminal,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("nodes", json::string_array(&self.nodes)),
            (
                "edges",
                JsonValue::Array(self.edges.iter().map(EdgeSpec::to_json).collect()),
            ),
            ("source", self.source.as_str().into()),
            ("sink", self.sink.as_str().into()),
            ("all_terminal", self.all_terminal.into()),
        ])
    }
}

impl EdgeSpec {
    fn from_json(v: &JsonValue) -> Result<EdgeSpec> {
        check_keys(
            as_obj(v, "edge")?,
            &["name", "from", "to", "reliability", "directed"],
            "edge",
        )?;
        let directed = match v.get("directed") {
            None | Some(JsonValue::Null) => false,
            Some(b) => b
                .as_bool()
                .ok_or_else(|| schema_err("'directed' must be a boolean"))?,
        };
        Ok(EdgeSpec {
            name: str_field(v, "name", "edge")?,
            from: str_field(v, "from", "edge")?,
            to: str_field(v, "to", "edge")?,
            reliability: f64_field(v, "reliability", "edge")?,
            directed,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("name", self.name.as_str().into()),
            ("from", self.from.as_str().into()),
            ("to", self.to.as_str().into()),
            ("reliability", self.reliability.into()),
            ("directed", self.directed.into()),
        ])
    }
}

impl SpnSpec {
    fn from_json(v: &JsonValue) -> Result<SpnSpec> {
        check_keys(
            as_obj(v, "spn")?,
            &[
                "places",
                "transitions",
                "max_markings",
                "reach_jobs",
                "shard_bits",
                "expected_tokens",
                "throughput",
            ],
            "spn",
        )?;
        let places = req(v, "places", "spn")?
            .as_array()
            .ok_or_else(|| schema_err("spn 'places' must be an array"))?
            .iter()
            .map(PlaceSpec::from_json)
            .collect::<Result<_>>()?;
        let transitions = req(v, "transitions", "spn")?
            .as_array()
            .ok_or_else(|| schema_err("spn 'transitions' must be an array"))?
            .iter()
            .map(SpnTransitionSpec::from_json)
            .collect::<Result<_>>()?;
        let opt_usize = |key: &str| -> Result<Option<usize>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(m) => Ok(Some(m.as_usize().ok_or_else(|| {
                    schema_err(format!("'{key}' must be a non-negative integer"))
                })?)),
            }
        };
        let shard_bits = match opt_usize("shard_bits")? {
            None => None,
            Some(b) if b <= 16 => Some(b as u32),
            Some(b) => {
                return Err(schema_err(format!("'shard_bits' must be <= 16 (got {b})")));
            }
        };
        let optional_names = |key: &str| -> Result<Option<Vec<String>>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(None),
                Some(list) => Ok(Some(string_list(list, key)?)),
            }
        };
        Ok(SpnSpec {
            places,
            transitions,
            max_markings: opt_usize("max_markings")?,
            reach_jobs: opt_usize("reach_jobs")?,
            shard_bits,
            expected_tokens: optional_names("expected_tokens")?,
            throughput: optional_names("throughput")?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![
            (
                "places",
                JsonValue::Array(self.places.iter().map(PlaceSpec::to_json).collect()),
            ),
            (
                "transitions",
                JsonValue::Array(
                    self.transitions
                        .iter()
                        .map(SpnTransitionSpec::to_json)
                        .collect(),
                ),
            ),
        ];
        if let Some(m) = self.max_markings {
            entries.push(("max_markings", JsonValue::Number(m as f64)));
        }
        if let Some(j) = self.reach_jobs {
            entries.push(("reach_jobs", JsonValue::Number(j as f64)));
        }
        if let Some(b) = self.shard_bits {
            entries.push(("shard_bits", JsonValue::Number(f64::from(b))));
        }
        if let Some(p) = &self.expected_tokens {
            entries.push(("expected_tokens", json::string_array(p)));
        }
        if let Some(t) = &self.throughput {
            entries.push(("throughput", json::string_array(t)));
        }
        json::object(entries)
    }
}

impl PlaceSpec {
    fn from_json(v: &JsonValue) -> Result<PlaceSpec> {
        check_keys(as_obj(v, "place")?, &["name", "tokens"], "place")?;
        let tokens = match v.get("tokens") {
            None | Some(JsonValue::Null) => 0,
            Some(t) => u32::try_from(
                t.as_usize()
                    .ok_or_else(|| schema_err("'tokens' must be a non-negative integer"))?,
            )
            .map_err(|_| schema_err("'tokens' exceeds u32 range"))?,
        };
        Ok(PlaceSpec {
            name: str_field(v, "name", "place")?,
            tokens,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("name", self.name.as_str().into()),
            ("tokens", JsonValue::Number(f64::from(self.tokens))),
        ])
    }
}

impl SpnTransitionSpec {
    fn from_json(v: &JsonValue) -> Result<SpnTransitionSpec> {
        check_keys(
            as_obj(v, "spn transition")?,
            &[
                "name",
                "rate",
                "weight",
                "priority",
                "inputs",
                "outputs",
                "inhibitors",
            ],
            "spn transition",
        )?;
        let name = str_field(v, "name", "spn transition")?;
        let timing = match (v.get("rate"), v.get("weight")) {
            (Some(r), None) => {
                if v.get("priority").is_some() {
                    return Err(schema_err(format!(
                        "timed transition '{name}' cannot have a 'priority'"
                    )));
                }
                SpnTimingSpec::Timed {
                    rate: r
                        .as_f64()
                        .ok_or_else(|| schema_err("'rate' must be a number"))?,
                }
            }
            (None, Some(w)) => {
                let priority =
                    match v.get("priority") {
                        None | Some(JsonValue::Null) => 0,
                        Some(p) => u32::try_from(p.as_usize().ok_or_else(|| {
                            schema_err("'priority' must be a non-negative integer")
                        })?)
                        .map_err(|_| schema_err("'priority' exceeds u32 range"))?,
                    };
                SpnTimingSpec::Immediate {
                    weight: w
                        .as_f64()
                        .ok_or_else(|| schema_err("'weight' must be a number"))?,
                    priority,
                }
            }
            _ => {
                return Err(schema_err(format!(
                    "transition '{name}' must have exactly one of 'rate' (timed) or \
                     'weight' (immediate)"
                )));
            }
        };
        let arcs = |key: &str| -> Result<Vec<ArcSpec>> {
            match v.get(key) {
                None | Some(JsonValue::Null) => Ok(Vec::new()),
                Some(list) => list
                    .as_array()
                    .ok_or_else(|| schema_err(format!("'{key}' must be an array")))?
                    .iter()
                    .map(ArcSpec::from_json)
                    .collect(),
            }
        };
        Ok(SpnTransitionSpec {
            name,
            timing,
            inputs: arcs("inputs")?,
            outputs: arcs("outputs")?,
            inhibitors: arcs("inhibitors")?,
        })
    }

    fn to_json(&self) -> JsonValue {
        let mut entries = vec![("name", JsonValue::from(self.name.as_str()))];
        match &self.timing {
            SpnTimingSpec::Timed { rate } => entries.push(("rate", (*rate).into())),
            SpnTimingSpec::Immediate { weight, priority } => {
                entries.push(("weight", (*weight).into()));
                entries.push(("priority", JsonValue::Number(f64::from(*priority))));
            }
        }
        for (key, arcs) in [
            ("inputs", &self.inputs),
            ("outputs", &self.outputs),
            ("inhibitors", &self.inhibitors),
        ] {
            if !arcs.is_empty() {
                entries.push((
                    key,
                    JsonValue::Array(arcs.iter().map(ArcSpec::to_json).collect()),
                ));
            }
        }
        json::object(entries)
    }
}

impl ArcSpec {
    fn from_json(v: &JsonValue) -> Result<ArcSpec> {
        check_keys(as_obj(v, "arc")?, &["place", "count"], "arc")?;
        let count = match v.get("count") {
            None | Some(JsonValue::Null) => 1,
            Some(c) => u32::try_from(
                c.as_usize()
                    .ok_or_else(|| schema_err("'count' must be a non-negative integer"))?,
            )
            .map_err(|_| schema_err("'count' exceeds u32 range"))?,
        };
        Ok(ArcSpec {
            place: str_field(v, "place", "arc")?,
            count,
        })
    }

    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("place", self.place.as_str().into()),
            ("count", JsonValue::Number(f64::from(self.count))),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbd_round_trip() {
        let json = r#"{
          "rbd": {
            "components": [{"name": "a", "availability": 0.9}],
            "structure": {"series": ["a", {"parallel": ["a", "a"]}]}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let back = spec.to_json().to_json();
        let again = ModelSpec::from_json_str(&back).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn fault_tree_round_trip() {
        let json = r#"{
          "fault_tree": {
            "events": [{"name": "e", "probability": 0.01}],
            "top": {"k_of_n": {"k": 2, "of": ["e", "e", "e"]}}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        assert!(matches!(spec, ModelSpec::FaultTree(_)));
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn rbd_with_dists_and_sim_round_trips() {
        let json = r#"{
          "rbd": {
            "components": [
              {"name": "a",
               "ttf_dist": {"weibull": {"shape": 1.5, "scale": 1000.0}},
               "ttr_dist": {"lognormal": {"mu": 0.5, "sigma": 1.2}}},
              {"name": "b", "availability": 0.99},
              {"name": "c",
               "ttf_dist": {"exponential": {"rate": 0.001}},
               "ttr_dist": {"pareto": {"shape": 2.5, "scale": 3.0}}}
            ],
            "structure": {"series": [{"parallel": ["a", "c"]}, "b"]},
            "sim": {
              "measure": "availability",
              "horizon": 40000.0,
              "seed": 42,
              "jobs": 2,
              "max_replications": 256,
              "rel_precision": 0.001,
              "confidence": 0.99
            }
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        match &spec {
            ModelSpec::Rbd(r) => {
                let sim = r.sim.as_ref().unwrap();
                assert_eq!(sim.measure, SimMeasure::Availability);
                assert_eq!(sim.horizon, Some(40000.0));
                assert_eq!(sim.seed, Some(42));
                assert_eq!(sim.max_replications, Some(256));
                assert_eq!(r.components[0].availability, None);
                assert!(matches!(
                    r.components[0].ttf_dist,
                    Some(DistSpec::Weibull { .. })
                ));
            }
            _ => panic!("expected RBD"),
        }
    }

    #[test]
    fn fault_tree_with_dists_and_sim_round_trips() {
        let json = r#"{
          "fault_tree": {
            "events": [
              {"name": "e",
               "ttf_dist": {"gamma": {"shape": 2.0, "rate": 0.01}},
               "ttr_dist": {"uniform": {"low": 1.0, "high": 9.0}}},
              {"name": "f", "probability": 0.05}
            ],
            "top": {"or": ["e", "f"]},
            "sim": {"measure": "reliability", "mission_time": 5000.0}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn dist_spec_mean_forms_normalize() {
        // {"mean": m} is sugar for rate = 1/m.
        let json = r#"{
          "rbd": {
            "components": [
              {"name": "a",
               "ttf_dist": {"exponential": {"mean": 500.0}},
               "ttr_dist": {"lognormal": {"mean": 4.0, "cv2": 4.0}}}
            ],
            "structure": "a",
            "sim": {"measure": "availability", "horizon": 1000.0}
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let ModelSpec::Rbd(r) = &spec else {
            panic!("expected RBD");
        };
        match r.components[0].ttf_dist.as_ref().unwrap() {
            DistSpec::Exponential { rate } => assert!((rate - 1.0 / 500.0).abs() < 1e-15),
            other => panic!("expected exponential, got {other:?}"),
        }
        match r.components[0].ttr_dist.as_ref().unwrap() {
            DistSpec::LogNormal { mu, sigma } => {
                // mean = exp(mu + sigma^2/2), cv2 = exp(sigma^2) - 1.
                let mean = (mu + sigma * sigma / 2.0).exp();
                let cv2 = (sigma * sigma).exp() - 1.0;
                assert!((mean - 4.0).abs() < 1e-12, "mean {mean}");
                assert!((cv2 - 4.0).abs() < 1e-12, "cv2 {cv2}");
            }
            other => panic!("expected lognormal, got {other:?}"),
        }
        // Normalized parameters survive a serialization round trip.
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn sim_and_dist_specs_reject_malformed_input() {
        let base =
            |body: &str| format!(r#"{{"rbd": {{"components": [{body}], "structure": "a"}}}}"#);
        // Neither availability nor ttf_dist.
        assert!(ModelSpec::from_json_str(&base(r#"{"name": "a"}"#)).is_err());
        // ttr without ttf.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttr_dist": {"exponential": {"rate": 1.0}}}"#
        ))
        .is_err());
        // Unknown distribution family.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"zipf": {"s": 1.0}}}"#
        ))
        .is_err());
        // Unknown key inside a family.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"exponential": {"rate": 1.0, "junk": 2}}}"#
        ))
        .is_err());
        // Both rate and mean.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"exponential": {"rate": 1.0, "mean": 1.0}}}"#
        ))
        .is_err());
        // Mixed lognormal parameterizations.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "a", "ttf_dist": {"lognormal": {"mu": 0.0, "cv2": 1.0}}}"#
        ))
        .is_err());

        let sim = |body: &str| {
            format!(
                r#"{{"rbd": {{"components": [{{"name": "a", "availability": 0.9}}],
                     "structure": "a", "sim": {body}}}}}"#
            )
        };
        // Unknown measure.
        assert!(
            ModelSpec::from_json_str(&sim(r#"{"measure": "throughput", "horizon": 1.0}"#)).is_err()
        );
        // Measure without its time field.
        assert!(ModelSpec::from_json_str(&sim(r#"{"measure": "availability"}"#)).is_err());
        assert!(ModelSpec::from_json_str(&sim(r#"{"measure": "reliability"}"#)).is_err());
        assert!(ModelSpec::from_json_str(&sim(r#"{"measure": "mttf"}"#)).is_err());
        // Unknown sim key.
        assert!(ModelSpec::from_json_str(&sim(
            r#"{"measure": "availability", "horizon": 1.0, "bogus": 3}"#
        ))
        .is_err());
    }

    #[test]
    fn spn_round_trip() {
        let json = r#"{
          "spn": {
            "places": [
              {"name": "idle", "tokens": 3},
              {"name": "busy", "tokens": 0}
            ],
            "transitions": [
              {"name": "start", "rate": 1.5,
               "inputs": [{"place": "idle"}],
               "outputs": [{"place": "busy", "count": 1}],
               "inhibitors": [{"place": "busy", "count": 2}]},
              {"name": "route", "weight": 0.7, "priority": 1,
               "inputs": [{"place": "busy"}],
               "outputs": [{"place": "idle"}]}
            ],
            "max_markings": 5000,
            "reach_jobs": 4,
            "shard_bits": 3,
            "expected_tokens": ["busy"],
            "throughput": ["start"]
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        match &spec {
            ModelSpec::Spn(s) => {
                assert_eq!(s.places.len(), 2);
                assert_eq!(s.places[0].tokens, 3);
                assert_eq!(s.transitions[0].inputs[0].count, 1); // default
                assert_eq!(s.transitions[0].inhibitors[0].count, 2);
                assert!(matches!(
                    s.transitions[1].timing,
                    SpnTimingSpec::Immediate { priority: 1, .. }
                ));
                assert_eq!(s.max_markings, Some(5000));
                assert_eq!(s.reach_jobs, Some(4));
                assert_eq!(s.shard_bits, Some(3));
            }
            _ => panic!("expected SPN spec"),
        }
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn spn_rejects_bad_transitions() {
        let base = |t: &str| {
            format!(
                r#"{{"spn": {{"places": [{{"name": "p", "tokens": 1}}],
                     "transitions": [{t}]}}}}"#
            )
        };
        // Both rate and weight.
        assert!(
            ModelSpec::from_json_str(&base(r#"{"name": "t", "rate": 1.0, "weight": 2.0}"#))
                .is_err()
        );
        // Neither.
        assert!(ModelSpec::from_json_str(&base(r#"{"name": "t"}"#)).is_err());
        // Priority on a timed transition.
        assert!(
            ModelSpec::from_json_str(&base(r#"{"name": "t", "rate": 1.0, "priority": 1}"#))
                .is_err()
        );
        // Unknown arc field.
        assert!(ModelSpec::from_json_str(&base(
            r#"{"name": "t", "rate": 1.0, "inputs": [{"place": "p", "weight": 2}]}"#
        ))
        .is_err());
        // Oversized shard_bits.
        assert!(ModelSpec::from_json_str(
            r#"{"spn": {"places": [{"name": "p", "tokens": 1}],
                 "transitions": [{"name": "t", "rate": 1.0}], "shard_bits": 40}}"#
        )
        .is_err());
    }

    #[test]
    fn ctmc_optional_fields_default() {
        let json = r#"{
          "ctmc": {
            "states": ["up", "down"],
            "transitions": [
              {"from": "up", "to": "down", "rate": 0.01},
              {"from": "down", "to": "up", "rate": 1.0}
            ]
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        if let ModelSpec::Ctmc(c) = spec {
            assert!(c.initial.is_none());
            assert!(c.up_states.is_none());
        } else {
            panic!("expected CTMC");
        }
    }

    #[test]
    fn ctmc_full_round_trip() {
        let json = r#"{
          "ctmc": {
            "states": ["up", "down"],
            "transitions": [{"from": "up", "to": "down", "rate": 0.5}],
            "initial": "up",
            "up_states": ["up"],
            "absorbing": ["down"],
            "at_times": [1.0, 10.0]
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn unknown_fields_rejected() {
        let json = r#"{
          "rbd": {
            "components": [{"name": "a", "availability": 0.9, "mttf": 5}],
            "structure": "a"
          }
        }"#;
        assert!(ModelSpec::from_json_str(json).is_err());
        assert!(ModelSpec::from_json_str(
            r#"{"ctmc": {"states": [], "transitions": [], "bogus": 1}}"#
        )
        .is_err());
        assert!(ModelSpec::from_json_str(r#"{"spn": {}}"#).is_err());
        assert!(ModelSpec::from_json_str(r#"{"rbd": {}, "ctmc": {}}"#).is_err());
    }

    #[test]
    fn canonical_string_is_stable() {
        let a = ModelSpec::from_json_str(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.9}],
                 "structure": "a"}}"#,
        )
        .unwrap();
        let b = ModelSpec::from_json_str(
            r#"{
              "rbd": {
                "components": [{ "availability": 0.9, "name": "a" }],
                "structure": "a"
              }
            }"#,
        )
        .unwrap();
        // Formatting and object key order in the source are irrelevant.
        assert_eq!(a.canonical_string(), b.canonical_string());
    }

    #[test]
    fn rel_graph_round_trip() {
        let json = r#"{
          "rel_graph": {
            "nodes": ["s", "t"],
            "edges": [{"name": "e", "from": "s", "to": "t",
                       "reliability": 0.99, "directed": true}],
            "source": "s",
            "sink": "t"
          }
        }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        if let ModelSpec::RelGraph(g) = &spec {
            assert!(!g.all_terminal);
            assert!(g.edges[0].directed);
        } else {
            panic!("expected rel_graph");
        }
    }
}
