//! Serde data model for specification documents.

use serde::{Deserialize, Serialize};

/// A top-level model document: exactly one model class.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields, rename_all = "snake_case")]
pub enum ModelSpec {
    /// A reliability block diagram.
    Rbd(RbdSpec),
    /// A fault tree.
    FaultTree(FaultTreeSpec),
    /// A continuous-time Markov chain.
    Ctmc(CtmcSpec),
    /// An s-t reliability graph.
    RelGraph(RelGraphSpec),
}

/// Reliability-graph specification.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct RelGraphSpec {
    /// Node names.
    pub nodes: Vec<String>,
    /// Edge declarations.
    pub edges: Vec<EdgeSpec>,
    /// Source terminal.
    pub source: String,
    /// Sink terminal.
    pub sink: String,
    /// Also compute all-terminal reliability (undirected graphs only).
    #[serde(default)]
    pub all_terminal: bool,
}

/// One graph edge (a failure-prone component).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct EdgeSpec {
    /// Edge name.
    pub name: String,
    /// Tail node.
    pub from: String,
    /// Head node.
    pub to: String,
    /// Probability the edge works.
    pub reliability: f64,
    /// Directed edge (default: undirected).
    #[serde(default)]
    pub directed: bool,
}

/// RBD specification.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct RbdSpec {
    /// Component declarations.
    pub components: Vec<RbdComponentSpec>,
    /// The block structure.
    pub structure: StructureSpec,
}

/// One RBD component.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct RbdComponentSpec {
    /// Component name (referenced from the structure).
    pub name: String,
    /// Steady-state availability (or any point probability of being
    /// up).
    pub availability: f64,
}

/// Recursive RBD structure.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(untagged, deny_unknown_fields)]
pub enum StructureSpec {
    /// Reference to a component by name.
    Component(String),
    /// Series group.
    Series {
        /// The members, all required.
        series: Vec<StructureSpec>,
    },
    /// Parallel group.
    Parallel {
        /// The members, any one suffices.
        parallel: Vec<StructureSpec>,
    },
    /// k-of-n group.
    KOfN {
        /// The `{ "k": ..., "of": [...] }` payload.
        k_of_n: KOfNSpec,
    },
}

/// Payload of a k-of-n group.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct KOfNSpec {
    /// Members required to work (RBD) / fail (fault tree).
    pub k: usize,
    /// The members.
    pub of: Vec<StructureSpec>,
}

/// Fault-tree specification.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct FaultTreeSpec {
    /// Basic-event declarations.
    pub events: Vec<EventSpec>,
    /// The top gate.
    pub top: GateSpec,
    /// Cap on intermediate cut sets during enumeration (default
    /// 100 000; the BDD probability itself has no such cap).
    #[serde(default)]
    pub max_cut_sets: Option<usize>,
}

/// One basic event.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct EventSpec {
    /// Event name.
    pub name: String,
    /// Failure probability.
    pub probability: f64,
}

/// Recursive gate structure.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(untagged, deny_unknown_fields)]
pub enum GateSpec {
    /// Reference to a basic event.
    Event(String),
    /// AND gate.
    And {
        /// Inputs; fails when all fail.
        and: Vec<GateSpec>,
    },
    /// OR gate.
    Or {
        /// Inputs; fails when any fails.
        or: Vec<GateSpec>,
    },
    /// k-of-n voting gate.
    KOfN {
        /// The `{ "k": ..., "of": [...] }` payload.
        k_of_n: KOfNGateSpec,
    },
}

/// Payload of a voting gate.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct KOfNGateSpec {
    /// Failures required to trip the gate.
    pub k: usize,
    /// Gate inputs.
    pub of: Vec<GateSpec>,
}

/// CTMC specification.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct CtmcSpec {
    /// State names.
    pub states: Vec<String>,
    /// Transition list.
    pub transitions: Vec<TransitionSpec>,
    /// Initial state (for MTTF / transient measures). Defaults to the
    /// first state.
    #[serde(default)]
    pub initial: Option<String>,
    /// Operational states (availability is their steady-state mass).
    #[serde(default)]
    pub up_states: Option<Vec<String>>,
    /// Failure states for MTTF.
    #[serde(default)]
    pub absorbing: Option<Vec<String>>,
    /// Time points for transient state probabilities.
    #[serde(default)]
    pub at_times: Option<Vec<f64>>,
}

/// One CTMC transition.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct TransitionSpec {
    /// Source state name.
    pub from: String,
    /// Destination state name.
    pub to: String,
    /// Transition rate (per time unit).
    pub rate: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbd_round_trip() {
        let json = r#"{
          "rbd": {
            "components": [{"name": "a", "availability": 0.9}],
            "structure": {"series": ["a", {"parallel": ["a", "a"]}]}
          }
        }"#;
        let spec: ModelSpec = serde_json::from_str(json).unwrap();
        let back = serde_json::to_string(&spec).unwrap();
        let again: ModelSpec = serde_json::from_str(&back).unwrap();
        assert_eq!(spec, again);
    }

    #[test]
    fn fault_tree_round_trip() {
        let json = r#"{
          "fault_tree": {
            "events": [{"name": "e", "probability": 0.01}],
            "top": {"k_of_n": {"k": 2, "of": ["e", "e", "e"]}}
          }
        }"#;
        let spec: ModelSpec = serde_json::from_str(json).unwrap();
        assert!(matches!(spec, ModelSpec::FaultTree(_)));
    }

    #[test]
    fn ctmc_optional_fields_default() {
        let json = r#"{
          "ctmc": {
            "states": ["up", "down"],
            "transitions": [
              {"from": "up", "to": "down", "rate": 0.01},
              {"from": "down", "to": "up", "rate": 1.0}
            ]
          }
        }"#;
        let spec: ModelSpec = serde_json::from_str(json).unwrap();
        if let ModelSpec::Ctmc(c) = spec {
            assert!(c.initial.is_none());
            assert!(c.up_states.is_none());
        } else {
            panic!("expected CTMC");
        }
    }

    #[test]
    fn unknown_fields_rejected() {
        let json = r#"{
          "rbd": {
            "components": [{"name": "a", "availability": 0.9, "mttf": 5}],
            "structure": "a"
          }
        }"#;
        assert!(serde_json::from_str::<ModelSpec>(json).is_err());
    }
}
