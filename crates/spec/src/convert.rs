//! Specification → model conversion and solving.

use crate::json::{self, JsonValue};
use crate::report::{SolveOptions, SolveReport, SolveStats, SteadySolver, VarOrder};
use crate::schema::*;
use reliab_core::fxhash::FxHashMap;
use reliab_core::{downtime_minutes_per_year, Error, Result};
use reliab_dist::{
    Deterministic, Exponential, Gamma, Lifetime, LogNormal, Pareto, Uniform, Weibull,
};
use reliab_ftree::{CompileOptions, FaultTreeBuilder, FtNode, VariableOrdering};
use reliab_markov::{CtmcBuilder, IterativeOptions, StateId, SteadyStateMethod, TransientOptions};
use reliab_obs as obs;
use reliab_rbd::{Block, RbdBuilder};
use reliab_sim::{Measure as SimRunMeasure, SimOptions, SystemSimulator};
use std::time::Instant;

/// Importance measures of one component/event, serialization-friendly.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportanceRow {
    /// Component or basic-event name.
    pub name: String,
    /// Birnbaum importance.
    pub birnbaum: f64,
    /// Criticality importance.
    pub criticality: f64,
    /// Fussell–Vesely importance.
    pub fussell_vesely: f64,
}

impl ImportanceRow {
    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("name", self.name.as_str().into()),
            ("birnbaum", self.birnbaum.into()),
            ("criticality", self.criticality.into()),
            ("fussell_vesely", self.fussell_vesely.into()),
        ])
    }
}

/// Transient state probabilities at one time point.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientRow {
    /// The time point.
    pub time: f64,
    /// `(state, probability)` pairs in declaration order.
    pub probabilities: Vec<(String, f64)>,
}

impl TransientRow {
    fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("time", self.time.into()),
            ("probabilities", named_pairs(&self.probabilities)),
        ])
    }
}

/// `(name, value)` pairs serialize as two-element arrays, matching the
/// historical output format.
fn named_pairs(pairs: &[(String, f64)]) -> JsonValue {
    JsonValue::Array(
        pairs
            .iter()
            .map(|(name, p)| JsonValue::Array(vec![name.as_str().into(), (*p).into()]))
            .collect(),
    )
}

fn name_lists(lists: &[Vec<String>]) -> JsonValue {
    JsonValue::Array(lists.iter().map(|l| json::string_array(l)).collect())
}

fn importance_json(rows: &Option<Vec<ImportanceRow>>) -> JsonValue {
    match rows {
        Some(rows) => JsonValue::Array(rows.iter().map(ImportanceRow::to_json).collect()),
        None => JsonValue::Null,
    }
}

/// Everything a specification solve produces, ready for JSON output.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SolvedMeasures {
    /// RBD results.
    Rbd {
        /// System availability.
        availability: f64,
        /// Downtime in minutes/year implied by the availability.
        downtime_minutes_per_year: f64,
        /// Per-component importance (absent when the system is perfect
        /// at the given inputs).
        importance: Option<Vec<ImportanceRow>>,
    },
    /// Fault-tree results.
    FaultTree {
        /// Exact top-event probability.
        top_event_probability: f64,
        /// Minimal cut sets (event-name lists, ascending order/size).
        minimal_cut_sets: Vec<Vec<String>>,
        /// Per-event importance (absent when the top event is
        /// impossible at the given inputs).
        importance: Option<Vec<ImportanceRow>>,
    },
    /// Reliability-graph results.
    RelGraph {
        /// s-t (two-terminal) reliability.
        reliability: f64,
        /// All-terminal reliability, when requested and defined.
        all_terminal_reliability: Option<f64>,
        /// Minimal s-t path sets (edge-name lists).
        minimal_path_sets: Vec<Vec<String>>,
        /// Minimal s-t cut sets (edge-name lists).
        minimal_cut_sets: Vec<Vec<String>>,
    },
    /// Stochastic Petri net results.
    Spn {
        /// Number of tangible markings (CTMC states) generated.
        num_markings: usize,
        /// Steady-state expected token counts for the requested places.
        expected_tokens: Vec<(String, f64)>,
        /// Steady-state throughput of the requested timed transitions.
        throughput: Vec<(String, f64)>,
    },
    /// Discrete-event simulation results (RBD or fault-tree models
    /// with a `sim` block, or any component model solved with
    /// `--method sim`).
    Sim {
        /// The estimated measure: `"availability"`, `"reliability"`,
        /// or `"mttf"`.
        measure: String,
        /// Point estimate.
        point: f64,
        /// Lower bound of the confidence interval.
        ci_lower: f64,
        /// Upper bound of the confidence interval.
        ci_upper: f64,
        /// Confidence level of the interval (e.g. `0.99`).
        confidence: f64,
        /// Final relative CI half-width (half-width / |point|).
        rel_half_width: f64,
        /// Replications actually run.
        replications: usize,
        /// Total simulated events across all replications.
        events: u64,
        /// Whether the stopping rule met its precision target before
        /// the replication cap.
        converged: bool,
        /// Downtime in minutes/year implied by the point estimate,
        /// when the measure is availability.
        downtime_minutes_per_year: Option<f64>,
    },
    /// CTMC results.
    Ctmc {
        /// Stationary distribution `(state, probability)` — absent for
        /// chains with absorbing structure where no stationary
        /// distribution exists.
        steady_state: Option<Vec<(String, f64)>>,
        /// Steady-state availability over `up_states` (if given).
        availability: Option<f64>,
        /// Downtime in minutes/year (when availability was computed).
        downtime_minutes_per_year: Option<f64>,
        /// MTTF into the `absorbing` set (if given).
        mttf: Option<f64>,
        /// Transient distributions at the requested times.
        transient: Option<Vec<TransientRow>>,
    },
    /// Hierarchical-composition results.
    Hierarchy {
        /// Converged submodel exports `(name, value)` in declaration
        /// order.
        submodels: Vec<(String, f64)>,
        /// The output submodel's name.
        output: String,
        /// The output submodel's export at the fixed point — the
        /// hierarchy's headline value.
        value: f64,
        /// Fixed-point sweeps performed.
        iterations: usize,
        /// Largest absolute export change in the final sweep.
        residual: f64,
    },
    /// Semi-Markov-process results.
    SemiMarkov {
        /// Long-run time fraction per state, in declaration order.
        steady_state: Vec<(String, f64)>,
        /// Steady availability over `up_states` (if given).
        availability: Option<f64>,
        /// Downtime in minutes/year (when availability was computed).
        downtime_minutes_per_year: Option<f64>,
        /// Mean first-passage time from `initial` into `targets` (if
        /// given).
        mean_first_passage: Option<f64>,
        /// Interval availability `(t, (1/t)∫₀ᵗ A(u) du)` rows at the
        /// requested times, via the phase-type expansion.
        interval_availability: Option<Vec<(f64, f64)>>,
    },
    /// Parametric-uncertainty results.
    Uncertainty {
        /// The propagated measure (a [`ScenarioMeasure`] spelling).
        measure: String,
        /// Sample mean of the output measure.
        mean: f64,
        /// Sample standard deviation.
        std_dev: f64,
        /// Lower percentile bound.
        ci_lower: f64,
        /// Upper percentile bound.
        ci_upper: f64,
        /// Confidence level of the percentile interval.
        level: f64,
        /// Monte-Carlo samples drawn.
        samples: usize,
    },
    /// Cut/path-set bounds results (on system unreliability).
    Bounds {
        /// Exact failure probability (SDP over the cut sets, or the
        /// fault tree's BDD probability).
        exact: Option<f64>,
        /// Esary–Proschan lower bound (needs path sets).
        ep_lower: Option<f64>,
        /// Esary–Proschan upper bound.
        ep_upper: Option<f64>,
        /// Truncated-enumeration lower bound (cut sets up to the
        /// truncation order only).
        truncated_lower: f64,
        /// Truncated-enumeration upper bound (worst case for the
        /// unenumerated tail).
        truncated_upper: f64,
        /// The truncation order the bounds were computed at.
        truncation_order: usize,
        /// Cut sets used.
        num_cut_sets: usize,
        /// Path sets used (0 when none were given or derivable).
        num_path_sets: usize,
    },
}

impl SolvedMeasures {
    /// The model class this result came from — the same string as the
    /// spec document's top-level key (plus `"sim"` for simulation
    /// results). This is the stable discriminant consumers should
    /// dispatch on instead of matching the `#[non_exhaustive]` enum;
    /// it is also emitted as the `"kind"` field of the JSON output.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SolvedMeasures::Rbd { .. } => "rbd",
            SolvedMeasures::FaultTree { .. } => "fault_tree",
            SolvedMeasures::RelGraph { .. } => "rel_graph",
            SolvedMeasures::Spn { .. } => "spn",
            SolvedMeasures::Sim { .. } => "sim",
            SolvedMeasures::Ctmc { .. } => "ctmc",
            SolvedMeasures::Hierarchy { .. } => "hierarchy",
            SolvedMeasures::SemiMarkov { .. } => "semi_markov",
            SolvedMeasures::Uncertainty { .. } => "uncertainty",
            SolvedMeasures::Bounds { .. } => "bounds",
        }
    }

    /// The model class's headline scalar, if it has one: availability
    /// for RBD/CTMC/semi-Markov models, the top-event probability for
    /// fault trees, s-t reliability for graphs, the point estimate for
    /// simulations, the fixed-point output for hierarchies, the sample
    /// mean for uncertainty wrappers, and the exact (or truncated
    /// midpoint) probability for bounds.
    #[must_use]
    pub fn primary_value(&self) -> Option<f64> {
        match self {
            SolvedMeasures::Rbd { availability, .. } => Some(*availability),
            SolvedMeasures::FaultTree {
                top_event_probability,
                ..
            } => Some(*top_event_probability),
            SolvedMeasures::RelGraph { reliability, .. } => Some(*reliability),
            SolvedMeasures::Spn {
                expected_tokens,
                throughput,
                ..
            } => expected_tokens
                .first()
                .or_else(|| throughput.first())
                .map(|(_, x)| *x),
            SolvedMeasures::Sim { point, .. } => Some(*point),
            SolvedMeasures::Ctmc {
                availability, mttf, ..
            } => availability.or(*mttf),
            SolvedMeasures::Hierarchy { value, .. } => Some(*value),
            SolvedMeasures::SemiMarkov {
                availability,
                mean_first_passage,
                ..
            } => availability.or(*mean_first_passage),
            SolvedMeasures::Uncertainty { mean, .. } => Some(*mean),
            SolvedMeasures::Bounds {
                exact,
                truncated_lower,
                truncated_upper,
                ..
            } => Some(exact.unwrap_or((truncated_lower + truncated_upper) / 2.0)),
        }
    }

    /// The system availability this result carries, if any: the RBD
    /// availability, or the CTMC/semi-Markov steady-state availability
    /// over `up_states`.
    #[must_use]
    pub fn availability(&self) -> Option<f64> {
        match self {
            SolvedMeasures::Rbd { availability, .. } => Some(*availability),
            SolvedMeasures::Ctmc { availability, .. }
            | SolvedMeasures::SemiMarkov { availability, .. } => *availability,
            SolvedMeasures::Sim { measure, point, .. } if measure == "availability" => Some(*point),
            SolvedMeasures::Uncertainty { measure, mean, .. } if measure == "availability" => {
                Some(*mean)
            }
            _ => None,
        }
    }

    /// The failure probability this result carries, if any: the
    /// fault-tree top-event probability, one minus the graph's s-t
    /// reliability, or the bounds' exact/midpoint unreliability.
    #[must_use]
    pub fn unreliability(&self) -> Option<f64> {
        match self {
            SolvedMeasures::FaultTree {
                top_event_probability,
                ..
            } => Some(*top_event_probability),
            SolvedMeasures::RelGraph { reliability, .. } => Some(1.0 - reliability),
            SolvedMeasures::Sim { measure, point, .. } if measure == "reliability" => {
                Some(1.0 - point)
            }
            SolvedMeasures::Uncertainty { measure, mean, .. } if measure == "unreliability" => {
                Some(*mean)
            }
            SolvedMeasures::Bounds { .. } => self.primary_value(),
            _ => None,
        }
    }

    /// The mean time to failure this result carries (CTMC models with
    /// an `absorbing` set, semi-Markov models with `targets`), if any.
    #[must_use]
    pub fn mttf(&self) -> Option<f64> {
        match self {
            SolvedMeasures::Ctmc { mttf, .. } => *mttf,
            SolvedMeasures::SemiMarkov {
                mean_first_passage, ..
            } => *mean_first_passage,
            SolvedMeasures::Sim { measure, point, .. } if measure == "mttf" => Some(*point),
            SolvedMeasures::Uncertainty { measure, mean, .. } if measure == "mttf" => Some(*mean),
            _ => None,
        }
    }

    /// Serializes to the externally tagged JSON format the CLI emits,
    /// with a leading `"kind"` discriminant:
    /// `{"kind": "rbd", "rbd": {...}}`, `{"kind": "ctmc", "ctmc":
    /// {...}}`, ...
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let opt_num = |x: &Option<f64>| x.map_or(JsonValue::Null, JsonValue::Number);
        let body = match self {
            SolvedMeasures::Rbd {
                availability,
                downtime_minutes_per_year,
                importance,
            } => json::object(vec![
                ("availability", (*availability).into()),
                (
                    "downtime_minutes_per_year",
                    (*downtime_minutes_per_year).into(),
                ),
                ("importance", importance_json(importance)),
            ]),
            SolvedMeasures::FaultTree {
                top_event_probability,
                minimal_cut_sets,
                importance,
            } => json::object(vec![
                ("top_event_probability", (*top_event_probability).into()),
                ("minimal_cut_sets", name_lists(minimal_cut_sets)),
                ("importance", importance_json(importance)),
            ]),
            SolvedMeasures::RelGraph {
                reliability,
                all_terminal_reliability,
                minimal_path_sets,
                minimal_cut_sets,
            } => json::object(vec![
                ("reliability", (*reliability).into()),
                (
                    "all_terminal_reliability",
                    opt_num(all_terminal_reliability),
                ),
                ("minimal_path_sets", name_lists(minimal_path_sets)),
                ("minimal_cut_sets", name_lists(minimal_cut_sets)),
            ]),
            SolvedMeasures::Spn {
                num_markings,
                expected_tokens,
                throughput,
            } => json::object(vec![
                ("num_markings", JsonValue::Number(*num_markings as f64)),
                ("expected_tokens", named_pairs(expected_tokens)),
                ("throughput", named_pairs(throughput)),
            ]),
            SolvedMeasures::Sim {
                measure,
                point,
                ci_lower,
                ci_upper,
                confidence,
                rel_half_width,
                replications,
                events,
                converged,
                downtime_minutes_per_year,
            } => json::object(vec![
                ("measure", measure.as_str().into()),
                ("point", (*point).into()),
                ("ci_lower", (*ci_lower).into()),
                ("ci_upper", (*ci_upper).into()),
                ("confidence", (*confidence).into()),
                ("rel_half_width", (*rel_half_width).into()),
                ("replications", JsonValue::Number(*replications as f64)),
                ("events", JsonValue::Number(*events as f64)),
                ("converged", JsonValue::Bool(*converged)),
                (
                    "downtime_minutes_per_year",
                    opt_num(downtime_minutes_per_year),
                ),
            ]),
            SolvedMeasures::Ctmc {
                steady_state,
                availability,
                downtime_minutes_per_year,
                mttf,
                transient,
            } => json::object(vec![
                (
                    "steady_state",
                    steady_state
                        .as_ref()
                        .map_or(JsonValue::Null, |pi| named_pairs(pi)),
                ),
                ("availability", opt_num(availability)),
                (
                    "downtime_minutes_per_year",
                    opt_num(downtime_minutes_per_year),
                ),
                ("mttf", opt_num(mttf)),
                (
                    "transient",
                    transient.as_ref().map_or(JsonValue::Null, |rows| {
                        JsonValue::Array(rows.iter().map(TransientRow::to_json).collect())
                    }),
                ),
            ]),
            SolvedMeasures::Hierarchy {
                submodels,
                output,
                value,
                iterations,
                residual,
            } => json::object(vec![
                ("submodels", named_pairs(submodels)),
                ("output", output.as_str().into()),
                ("value", (*value).into()),
                ("iterations", JsonValue::Number(*iterations as f64)),
                ("residual", (*residual).into()),
            ]),
            SolvedMeasures::SemiMarkov {
                steady_state,
                availability,
                downtime_minutes_per_year,
                mean_first_passage,
                interval_availability,
            } => json::object(vec![
                ("steady_state", named_pairs(steady_state)),
                ("availability", opt_num(availability)),
                (
                    "downtime_minutes_per_year",
                    opt_num(downtime_minutes_per_year),
                ),
                ("mean_first_passage", opt_num(mean_first_passage)),
                (
                    "interval_availability",
                    interval_availability
                        .as_ref()
                        .map_or(JsonValue::Null, |rows| {
                            JsonValue::Array(
                                rows.iter()
                                    .map(|&(t, a)| {
                                        json::object(vec![
                                            ("time", t.into()),
                                            ("availability", a.into()),
                                        ])
                                    })
                                    .collect(),
                            )
                        }),
                ),
            ]),
            SolvedMeasures::Uncertainty {
                measure,
                mean,
                std_dev,
                ci_lower,
                ci_upper,
                level,
                samples,
            } => json::object(vec![
                ("measure", measure.as_str().into()),
                ("mean", (*mean).into()),
                ("std_dev", (*std_dev).into()),
                ("ci_lower", (*ci_lower).into()),
                ("ci_upper", (*ci_upper).into()),
                ("level", (*level).into()),
                ("samples", JsonValue::Number(*samples as f64)),
            ]),
            SolvedMeasures::Bounds {
                exact,
                ep_lower,
                ep_upper,
                truncated_lower,
                truncated_upper,
                truncation_order,
                num_cut_sets,
                num_path_sets,
            } => json::object(vec![
                ("exact", opt_num(exact)),
                ("ep_lower", opt_num(ep_lower)),
                ("ep_upper", opt_num(ep_upper)),
                ("truncated_lower", (*truncated_lower).into()),
                ("truncated_upper", (*truncated_upper).into()),
                (
                    "truncation_order",
                    JsonValue::Number(*truncation_order as f64),
                ),
                ("num_cut_sets", JsonValue::Number(*num_cut_sets as f64)),
                ("num_path_sets", JsonValue::Number(*num_path_sets as f64)),
            ]),
        };
        json::object(vec![("kind", self.kind().into()), (self.kind(), body)])
    }
}

/// Parses and solves a JSON specification with explicit options,
/// returning measures plus solver telemetry.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for JSON that does not match
/// the schema, [`Error::Model`] for semantic problems (unknown names,
/// duplicate components), and propagates solver errors.
pub fn solve_str_with(text: &str, opts: &SolveOptions) -> Result<SolveReport> {
    let spec = ModelSpec::from_json_str(text)?;
    solve_with(&spec, opts)
}

/// Solves an already-parsed specification with explicit options,
/// returning measures plus solver telemetry.
///
/// # Errors
///
/// See [`solve_str_with`].
pub fn solve_with(spec: &ModelSpec, opts: &SolveOptions) -> Result<SolveReport> {
    // Mint a request-scoped trace id unless one is already ambient
    // (nested hierarchy/uncertainty sub-solves keep their parent's).
    let _trace = obs::ensure_trace_id();
    let _span = obs::span("spec.solve");
    let start = Instant::now();
    let (measures, mut stats) = match spec {
        ModelSpec::Rbd(r) => solve_rbd(r, opts)?,
        ModelSpec::FaultTree(f) => solve_fault_tree(f, opts)?,
        ModelSpec::Ctmc(c) => solve_ctmc(c, opts)?,
        ModelSpec::RelGraph(g) => solve_relgraph(g)?,
        ModelSpec::Spn(s) => solve_spn(s, opts)?,
        ModelSpec::Hierarchy(h) => crate::scenario::solve_hierarchy(h, opts)?,
        ModelSpec::SemiMarkov(s) => crate::scenario::solve_semi_markov(s, opts)?,
        ModelSpec::Uncertainty(u) => crate::scenario::solve_uncertainty(u, opts)?,
        ModelSpec::Bounds(b) => crate::scenario::solve_bounds(b, opts)?,
    };
    stats.wall_time = start.elapsed();
    let kind = measures.kind();
    let wall_ms = stats.wall_time.as_secs_f64() * 1e3;
    obs::counter_add("spec.solves", 1);
    obs::observe_ms("spec.solve_ms", wall_ms);
    obs::observe_ms(&format!("spec.solve_ms.{kind}"), wall_ms);
    obs::event(
        "spec.solved",
        &[
            ("kind", kind.into()),
            ("iterations", stats.iterations.into()),
            (
                "wall_us",
                (stats.wall_time.as_micros().min(u64::MAX as u128) as u64).into(),
            ),
        ],
    );
    Ok(SolveReport { measures, stats })
}

fn bdd_stats_into(stats: &mut SolveStats, b: &reliab_bdd::BddStats) {
    stats.iterations = b.ite_cache_lookups as usize;
    stats.bdd_nodes = Some(b.arena_nodes);
    stats.bdd_cache_lookups = Some(b.ite_cache_lookups);
    stats.bdd_cache_hits = Some(b.ite_cache_hits);
    stats.bdd_cache_evictions = Some(b.ite_cache_evictions);
    stats.bdd_gc_runs = Some(b.gc_runs);
    stats.bdd_gc_reclaimed = Some(b.gc_reclaimed);
    stats.bdd_sift_swaps = Some(b.sift_swaps);
    stats.bdd_peak_live_nodes = Some(b.peak_live_nodes);
    stats.bdd_ite_hit_rate = Some(b.ite_hit_rate());
    stats.bdd_gc_moved = Some(b.gc_moved);
    stats.bdd_par_apply_calls = Some(b.par_apply_calls);
    stats.bdd_workers = Some(b.jobs);
}

fn solve_relgraph(spec: &RelGraphSpec) -> Result<(SolvedMeasures, SolveStats)> {
    use reliab_relgraph::RelGraphBuilder;
    let mut b = RelGraphBuilder::new();
    let mut node_ids = FxHashMap::default();
    for n in &spec.nodes {
        if node_ids.contains_key(n) {
            return Err(Error::model(format!("duplicate node '{n}'")));
        }
        node_ids.insert(n.clone(), b.node(n));
    }
    let node = |name: &str, ids: &FxHashMap<String, reliab_relgraph::NodeIdx>| {
        ids.get(name)
            .copied()
            .ok_or_else(|| Error::model(format!("unknown node '{name}'")))
    };
    let mut probs = Vec::with_capacity(spec.edges.len());
    for e in &spec.edges {
        let u = node(&e.from, &node_ids)?;
        let v = node(&e.to, &node_ids)?;
        if e.directed {
            b.arc(u, v, &e.name);
        } else {
            b.edge(u, v, &e.name);
        }
        probs.push(e.reliability);
    }
    let source = node(&spec.source, &node_ids)?;
    let sink = node(&spec.sink, &node_ids)?;
    let g = b.build(source, sink)?;
    let (reliability, bdd) = g.reliability_with_stats(&probs)?;
    let mut stats = SolveStats::default();
    bdd_stats_into(&mut stats, &bdd);
    let all_terminal_reliability = if spec.all_terminal {
        Some(g.all_terminal_reliability(&probs)?)
    } else {
        None
    };
    let name_of = |es: Vec<reliab_relgraph::EdgeId>| -> Vec<String> {
        es.into_iter().map(|e| g.edge_name(e).to_owned()).collect()
    };
    let minimal_path_sets = g.minimal_path_sets().into_iter().map(&name_of).collect();
    let minimal_cut_sets = g
        .minimal_cut_sets(100_000)?
        .into_iter()
        .map(&name_of)
        .collect();
    Ok((
        SolvedMeasures::RelGraph {
            reliability,
            all_terminal_reliability,
            minimal_path_sets,
            minimal_cut_sets,
        },
        stats,
    ))
}

fn solve_rbd(spec: &RbdSpec, opts: &SolveOptions) -> Result<(SolvedMeasures, SolveStats)> {
    if spec.sim.is_some() || opts.simulate {
        let Some(sim) = &spec.sim else {
            return Err(Error::model(
                "simulation requested but the rbd spec has no 'sim' block",
            ));
        };
        let mut idx = FxHashMap::default();
        for (i, c) in spec.components.iter().enumerate() {
            if idx.insert(c.name.clone(), i).is_some() {
                return Err(Error::model(format!("duplicate component '{}'", c.name)));
            }
        }
        let node = build_sim_structure(&spec.structure, &idx)?;
        let simulator = rbd_simulator(spec, node)?;
        return run_simulation(&simulator, sim, opts);
    }
    let mut b = RbdBuilder::new();
    let mut ids = FxHashMap::default();
    let mut probs = Vec::new();
    for c in &spec.components {
        if ids.contains_key(&c.name) {
            return Err(Error::model(format!("duplicate component '{}'", c.name)));
        }
        ids.insert(c.name.clone(), b.component(&c.name));
        probs.push(component_availability(c)?);
    }
    let root = build_structure(&spec.structure, &ids)?;
    let mut rbd = b.build(root)?;
    let availability = rbd.availability(&probs)?;
    let importance = match rbd.importance(&probs) {
        Ok(rows) => Some(
            rows.into_iter()
                .map(|m| ImportanceRow {
                    name: m.component,
                    birnbaum: m.birnbaum,
                    criticality: m.criticality,
                    fussell_vesely: m.fussell_vesely,
                })
                .collect(),
        ),
        Err(_) => None, // perfect system: importance undefined
    };
    let mut stats = SolveStats::default();
    bdd_stats_into(&mut stats, &rbd.bdd_stats());
    Ok((
        SolvedMeasures::Rbd {
            availability,
            downtime_minutes_per_year: downtime_minutes_per_year(availability)?,
            importance,
        },
        stats,
    ))
}

/// Instantiates a lifetime distribution from its spec.
pub(crate) fn lifetime_from(d: &DistSpec) -> Result<Box<dyn Lifetime>> {
    Ok(match d {
        DistSpec::Exponential { rate } => Box::new(Exponential::new(*rate)?),
        DistSpec::Weibull { shape, scale } => Box::new(Weibull::new(*shape, *scale)?),
        DistSpec::LogNormal { mu, sigma } => Box::new(LogNormal::new(*mu, *sigma)?),
        DistSpec::Pareto { shape, scale } => Box::new(Pareto::new(*shape, *scale)?),
        DistSpec::Gamma { shape, rate } => Box::new(Gamma::new(*shape, *rate)?),
        DistSpec::Uniform { low, high } => Box::new(Uniform::new(*low, *high)?),
        DistSpec::Deterministic { value } => Box::new(Deterministic::new(*value)?),
    })
}

/// Steady availability `E[TTF] / (E[TTF] + E[TTR])` implied by a
/// component's lifetime distributions — exact for *any* distribution
/// shapes, since a single repairable component is an alternating
/// renewal process whose up fraction depends only on the means.
fn derived_availability(name: &str, ttf: Option<&DistSpec>, ttr: Option<&DistSpec>) -> Result<f64> {
    let ttf = ttf.ok_or_else(|| Error::model(format!("'{name}' has no 'ttf_dist'")))?;
    let ttr = ttr.ok_or_else(|| {
        Error::model(format!(
            "'{name}' has a 'ttf_dist' but no 'ttr_dist': give it an explicit \
             probability or a repair distribution"
        ))
    })?;
    let mf = lifetime_from(ttf)?.mean();
    let mr = lifetime_from(ttr)?.mean();
    if !(mf.is_finite() && mr.is_finite() && mf > 0.0 && mr >= 0.0) {
        return Err(Error::model(format!(
            "'{name}': cannot derive a steady availability from distribution \
             means {mf} (ttf) and {mr} (ttr)"
        )));
    }
    Ok(mf / (mf + mr))
}

/// The availability an RBD component contributes to an analytic solve:
/// the explicit value, or the one its lifetime distributions imply.
fn component_availability(c: &RbdComponentSpec) -> Result<f64> {
    match c.availability {
        Some(a) => Ok(a),
        None => derived_availability(&c.name, c.ttf_dist.as_ref(), c.ttr_dist.as_ref()),
    }
}

/// The occurrence probability a basic event contributes to an analytic
/// solve: the explicit value, or one minus the availability its
/// lifetime distributions imply.
pub(crate) fn event_probability(e: &EventSpec) -> Result<f64> {
    match e.probability {
        Some(p) => Ok(p),
        None => Ok(1.0 - derived_availability(&e.name, e.ttf_dist.as_ref(), e.ttr_dist.as_ref())?),
    }
}

/// A compiled structure/gate tree over component indices, cheap to
/// evaluate inside the simulation's hot loop (no hashing, no names).
enum SimNode {
    Leaf(usize),
    All(Vec<SimNode>),
    Any(Vec<SimNode>),
    KOfN { k: usize, of: Vec<SimNode> },
}

impl SimNode {
    /// RBD semantics: does the block work, given component up flags?
    fn eval_up(&self, up: &[bool]) -> bool {
        match self {
            SimNode::Leaf(i) => up[*i],
            SimNode::All(xs) => xs.iter().all(|x| x.eval_up(up)),
            SimNode::Any(xs) => xs.iter().any(|x| x.eval_up(up)),
            SimNode::KOfN { k, of } => of.iter().filter(|x| x.eval_up(up)).count() >= *k,
        }
    }

    /// Fault-tree semantics: has the (top) event occurred, given
    /// component up flags (`up[i]` = basic event `i` has *not*
    /// occurred)?
    fn eval_failed(&self, up: &[bool]) -> bool {
        match self {
            SimNode::Leaf(i) => !up[*i],
            SimNode::All(xs) => xs.iter().all(|x| x.eval_failed(up)),
            SimNode::Any(xs) => xs.iter().any(|x| x.eval_failed(up)),
            SimNode::KOfN { k, of } => of.iter().filter(|x| x.eval_failed(up)).count() >= *k,
        }
    }
}

fn build_sim_structure(s: &StructureSpec, idx: &FxHashMap<String, usize>) -> Result<SimNode> {
    match s {
        StructureSpec::Component(name) => idx
            .get(name)
            .map(|&i| SimNode::Leaf(i))
            .ok_or_else(|| Error::model(format!("unknown component '{name}'"))),
        StructureSpec::Series { series } => Ok(SimNode::All(
            series
                .iter()
                .map(|x| build_sim_structure(x, idx))
                .collect::<Result<_>>()?,
        )),
        StructureSpec::Parallel { parallel } => Ok(SimNode::Any(
            parallel
                .iter()
                .map(|x| build_sim_structure(x, idx))
                .collect::<Result<_>>()?,
        )),
        StructureSpec::KOfN { k_of_n } => Ok(SimNode::KOfN {
            k: k_of_n.k,
            of: k_of_n
                .of
                .iter()
                .map(|x| build_sim_structure(x, idx))
                .collect::<Result<_>>()?,
        }),
    }
}

fn build_sim_gate(g: &GateSpec, idx: &FxHashMap<String, usize>) -> Result<SimNode> {
    match g {
        GateSpec::Event(name) => idx
            .get(name)
            .map(|&i| SimNode::Leaf(i))
            .ok_or_else(|| Error::model(format!("unknown event '{name}'"))),
        GateSpec::And { and } => Ok(SimNode::All(
            and.iter()
                .map(|x| build_sim_gate(x, idx))
                .collect::<Result<_>>()?,
        )),
        GateSpec::Or { or } => Ok(SimNode::Any(
            or.iter()
                .map(|x| build_sim_gate(x, idx))
                .collect::<Result<_>>()?,
        )),
        GateSpec::KOfN { k_of_n } => Ok(SimNode::KOfN {
            k: k_of_n.k,
            of: k_of_n
                .of
                .iter()
                .map(|x| build_sim_gate(x, idx))
                .collect::<Result<_>>()?,
        }),
    }
}

/// Adds one simulated component per spec entry, in declaration order
/// (so spec index == simulator index == stream index).
fn push_component(
    sim: &mut SystemSimulator,
    name: &str,
    ttf: Option<&DistSpec>,
    ttr: Option<&DistSpec>,
) -> Result<()> {
    let ttf = ttf.ok_or_else(|| {
        Error::model(format!("component '{name}' needs a 'ttf_dist' to simulate"))
    })?;
    let ttf = lifetime_from(ttf)?;
    match ttr {
        Some(r) => {
            sim.component(ttf, lifetime_from(r)?);
        }
        None => {
            sim.component_without_repair(ttf);
        }
    }
    Ok(())
}

fn rbd_simulator(spec: &RbdSpec, node: SimNode) -> Result<SystemSimulator> {
    let mut sim = SystemSimulator::new(move |up: &[bool]| node.eval_up(up));
    for c in &spec.components {
        push_component(&mut sim, &c.name, c.ttf_dist.as_ref(), c.ttr_dist.as_ref())?;
    }
    Ok(sim)
}

fn ftree_simulator(spec: &FaultTreeSpec, node: SimNode) -> Result<SystemSimulator> {
    // The system "works" while the top event has not occurred.
    let mut sim = SystemSimulator::new(move |up: &[bool]| !node.eval_failed(up));
    for e in &spec.events {
        push_component(&mut sim, &e.name, e.ttf_dist.as_ref(), e.ttr_dist.as_ref())?;
    }
    Ok(sim)
}

/// Merges spec-level sim knobs with [`SolveOptions`] overrides
/// (overrides win, mirroring the SPN `reach_jobs` convention).
fn effective_sim_options(sim: &SimSpec, opts: &SolveOptions) -> SimOptions {
    let mut o = SimOptions::default();
    if let Some(s) = sim.seed {
        o.seed = s;
    }
    if let Some(j) = sim.jobs {
        o.jobs = j;
    }
    if let Some(m) = sim.max_replications {
        o.max_replications = m;
    }
    if let Some(m) = sim.min_replications {
        o.min_replications = m;
    }
    if let Some(p) = sim.rel_precision {
        o.rel_precision = p;
    }
    if let Some(c) = sim.confidence {
        o.confidence = c;
    }
    if let Some(b) = sim.batches {
        o.batches = b;
    }
    if let Some(w) = sim.warmup_fraction {
        o.warmup_fraction = w;
    }
    if let Some(s) = opts.sim_seed {
        o.seed = s;
    }
    if let Some(m) = opts.sim_replications {
        o.max_replications = m;
    }
    if let Some(p) = opts.sim_rel_precision {
        o.rel_precision = p;
    }
    if opts.sim_jobs != 1 {
        o.jobs = opts.sim_jobs;
    }
    // Keep a tight replication cap self-consistent rather than
    // erroring on min > max.
    o.min_replications = o.min_replications.min(o.max_replications).max(2);
    o
}

fn run_simulation(
    sim: &SystemSimulator,
    spec: &SimSpec,
    opts: &SolveOptions,
) -> Result<(SolvedMeasures, SolveStats)> {
    let need = |x: Option<f64>, what: &str| {
        x.ok_or_else(|| {
            Error::model(format!(
                "sim measure '{}' requires '{what}'",
                spec.measure.as_str()
            ))
        })
    };
    let measure = match spec.measure {
        SimMeasure::Availability => SimRunMeasure::Availability {
            horizon: need(spec.horizon, "horizon")?,
        },
        SimMeasure::Reliability => SimRunMeasure::Reliability {
            mission_time: need(spec.mission_time, "mission_time")?,
        },
        SimMeasure::Mttf => SimRunMeasure::Mttf {
            time_cap: need(spec.time_cap, "time_cap")?,
        },
    };
    let sopts = effective_sim_options(spec, opts);
    let report = sim.simulate(measure, &sopts)?;
    let stats = SolveStats {
        iterations: usize::try_from(report.events).unwrap_or(usize::MAX),
        sim_replications: Some(report.replications),
        sim_events: Some(report.events),
        sim_rounds: Some(report.rounds),
        sim_rel_half_width: Some(report.rel_half_width),
        sim_workers: Some(report.workers),
        sim_converged: Some(report.converged),
        ..Default::default()
    };
    let point = report.interval.point;
    let downtime = match spec.measure {
        SimMeasure::Availability => Some(downtime_minutes_per_year(point)?),
        _ => None,
    };
    Ok((
        SolvedMeasures::Sim {
            measure: spec.measure.as_str().to_owned(),
            point,
            ci_lower: report.interval.lower,
            ci_upper: report.interval.upper,
            confidence: report.interval.level,
            rel_half_width: report.rel_half_width,
            replications: report.replications,
            events: report.events,
            converged: report.converged,
            downtime_minutes_per_year: downtime,
        },
        stats,
    ))
}

fn build_structure(
    s: &StructureSpec,
    ids: &FxHashMap<String, reliab_rbd::ComponentId>,
) -> Result<Block> {
    match s {
        StructureSpec::Component(name) => ids
            .get(name)
            .map(|&c| Block::Component(c))
            .ok_or_else(|| Error::model(format!("unknown component '{name}'"))),
        StructureSpec::Series { series } => Ok(Block::Series(
            series
                .iter()
                .map(|x| build_structure(x, ids))
                .collect::<Result<_>>()?,
        )),
        StructureSpec::Parallel { parallel } => Ok(Block::Parallel(
            parallel
                .iter()
                .map(|x| build_structure(x, ids))
                .collect::<Result<_>>()?,
        )),
        StructureSpec::KOfN { k_of_n } => Ok(Block::KOfN {
            k: k_of_n.k,
            blocks: k_of_n
                .of
                .iter()
                .map(|x| build_structure(x, ids))
                .collect::<Result<_>>()?,
        }),
    }
}

/// The variable ordering a fault-tree solve actually uses: a non-`Auto`
/// option overrides the spec's `var_order` hint; both absent means the
/// depth-first heuristic.
fn effective_ordering(spec: &FaultTreeSpec, opts: &SolveOptions) -> VariableOrdering {
    let chosen = match opts.var_order {
        VarOrder::Auto => spec.var_order.unwrap_or(VarOrder::Auto),
        other => other,
    };
    match chosen {
        VarOrder::Auto | VarOrder::DepthFirst => VariableOrdering::DepthFirst,
        VarOrder::Input => VariableOrdering::Declaration,
        VarOrder::Weighted => VariableOrdering::Weighted,
        VarOrder::Sift => VariableOrdering::Sifted,
    }
}

pub(crate) fn solve_fault_tree(
    spec: &FaultTreeSpec,
    opts: &SolveOptions,
) -> Result<(SolvedMeasures, SolveStats)> {
    if spec.sim.is_some() || opts.simulate {
        let Some(sim) = &spec.sim else {
            return Err(Error::model(
                "simulation requested but the fault_tree spec has no 'sim' block",
            ));
        };
        let mut idx = FxHashMap::default();
        for (i, e) in spec.events.iter().enumerate() {
            if idx.insert(e.name.clone(), i).is_some() {
                return Err(Error::model(format!("duplicate event '{}'", e.name)));
            }
        }
        let node = build_sim_gate(&spec.top, &idx)?;
        let simulator = ftree_simulator(spec, node)?;
        return run_simulation(&simulator, sim, opts);
    }
    let mut b = FaultTreeBuilder::new();
    let mut ids = FxHashMap::default();
    let mut probs = Vec::new();
    for e in &spec.events {
        if ids.contains_key(&e.name) {
            return Err(Error::model(format!("duplicate event '{}'", e.name)));
        }
        ids.insert(e.name.clone(), b.basic_event(&e.name));
        probs.push(event_probability(e)?);
    }
    let top = build_gate(&spec.top, &ids)?;
    let compile = CompileOptions::new()
        .with_ordering(effective_ordering(spec, opts))
        .with_ite_cache_capacity(opts.ite_cache_capacity)
        .with_gc_node_threshold(opts.gc_node_threshold)
        .with_bdd_jobs(opts.bdd_jobs);
    let mut ft = b.build_with(top, &compile)?;
    let q = ft.top_event_probability(&probs)?;
    let cuts = ft
        .minimal_cut_sets(spec.max_cut_sets.unwrap_or(100_000))
        .unwrap_or_else(|_| ft.minimal_cut_sets_bdd());
    let named_cuts: Vec<Vec<String>> = cuts
        .iter()
        .map(|c| {
            c.events()
                .iter()
                .map(|&e| ft.event_name(e).to_owned())
                .collect()
        })
        .collect();
    let importance = match ft.importance(&probs) {
        Ok(rows) => Some(
            rows.into_iter()
                .map(|m| ImportanceRow {
                    name: m.component,
                    birnbaum: m.birnbaum,
                    criticality: m.criticality,
                    fussell_vesely: m.fussell_vesely,
                })
                .collect(),
        ),
        Err(_) => None,
    };
    let mut stats = SolveStats::default();
    bdd_stats_into(&mut stats, &ft.bdd_stats());
    Ok((
        SolvedMeasures::FaultTree {
            top_event_probability: q,
            minimal_cut_sets: named_cuts,
            importance,
        },
        stats,
    ))
}

fn build_gate(g: &GateSpec, ids: &FxHashMap<String, reliab_ftree::EventId>) -> Result<FtNode> {
    match g {
        GateSpec::Event(name) => ids
            .get(name)
            .map(|&e| FtNode::Basic(e))
            .ok_or_else(|| Error::model(format!("unknown event '{name}'"))),
        GateSpec::And { and } => Ok(FtNode::And(
            and.iter()
                .map(|x| build_gate(x, ids))
                .collect::<Result<_>>()?,
        )),
        GateSpec::Or { or } => Ok(FtNode::Or(
            or.iter()
                .map(|x| build_gate(x, ids))
                .collect::<Result<_>>()?,
        )),
        GateSpec::KOfN { k_of_n } => Ok(FtNode::KOfN {
            k: k_of_n.k,
            inputs: k_of_n
                .of
                .iter()
                .map(|x| build_gate(x, ids))
                .collect::<Result<_>>()?,
        }),
    }
}

fn solve_spn(spec: &SpnSpec, opts: &SolveOptions) -> Result<(SolvedMeasures, SolveStats)> {
    use reliab_spn::{PlaceId, ReachabilityOptions, SpnBuilder, TransitionId};
    let mut b = SpnBuilder::new();
    let mut place_ids: FxHashMap<String, PlaceId> = FxHashMap::default();
    for p in &spec.places {
        if place_ids.contains_key(&p.name) {
            return Err(Error::model(format!("duplicate place '{}'", p.name)));
        }
        place_ids.insert(p.name.clone(), b.place(&p.name, p.tokens));
    }
    let place = |name: &str, ids: &FxHashMap<String, PlaceId>| -> Result<PlaceId> {
        ids.get(name)
            .copied()
            .ok_or_else(|| Error::model(format!("unknown place '{name}'")))
    };
    let mut trans_ids: FxHashMap<String, TransitionId> = FxHashMap::default();
    for t in &spec.transitions {
        if trans_ids.contains_key(&t.name) {
            return Err(Error::model(format!("duplicate transition '{}'", t.name)));
        }
        let id = match t.timing {
            SpnTimingSpec::Timed { rate } => b.timed(&t.name, rate),
            SpnTimingSpec::Immediate { weight, priority } => b.immediate(&t.name, weight, priority),
        };
        for a in &t.inputs {
            b.input_arc(id, place(&a.place, &place_ids)?, a.count);
        }
        for a in &t.outputs {
            b.output_arc(id, place(&a.place, &place_ids)?, a.count);
        }
        for a in &t.inhibitors {
            b.inhibitor_arc(id, place(&a.place, &place_ids)?, a.count);
        }
        trans_ids.insert(t.name.clone(), id);
    }
    let spn = b.build()?;

    let mut ropts = ReachabilityOptions::default();
    if let Some(cap) = spec.max_markings {
        ropts.max_markings = cap;
    }
    if let Some(bits) = spec.shard_bits {
        ropts.shard_bits = bits;
    }
    // A non-default option overrides the spec's knob; worker count never
    // changes results (generation is bitwise deterministic).
    ropts.jobs = if opts.reach_jobs != 1 {
        opts.reach_jobs
    } else {
        spec.reach_jobs.unwrap_or(ropts.jobs)
    };

    // Tier selection: an explicit request (the option overrides the
    // spec's hint) or budget-driven escalation when the declared
    // marking cap projects past the memory budget.
    let use_stream = opts.stream
        || spec.solver == Some(SpnSolver::Stream)
        || match (materialized_estimate(spec), opts.mem_budget) {
            (Some(est), Some(budget)) => est > budget,
            _ => false,
        };
    if use_stream {
        return solve_spn_stream(spec, opts, &spn, &ropts, &place_ids, &trans_ids);
    }

    let solved = spn.solve_with(&ropts)?;

    let mut stats = SolveStats::default();
    let reach = solved.reach_stats();
    stats.spn_markings = Some(reach.markings);
    stats.spn_arcs = Some(reach.arcs);
    stats.spn_vanishing_eliminated = Some(reach.vanishing_eliminated);
    stats.spn_shard_max_occupancy = Some(reach.max_shard_occupancy);
    stats.spn_reach_workers = Some(reach.workers);

    let want_tokens = spec.expected_tokens.as_deref().unwrap_or(&[]);
    let want_throughput = spec.throughput.as_deref().unwrap_or(&[]);
    let (expected_tokens, throughput) = if want_tokens.is_empty() && want_throughput.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        // Solve the chain once; both measure families share the π.
        let iter_opts = IterativeOptions {
            tolerance: opts.tolerance,
            max_iterations: opts.max_iterations,
            relaxation: 1.0,
        };
        let method = match opts.steady_solver {
            SteadySolver::Gth => SteadyStateMethod::Gth,
            SteadySolver::Sor => SteadyStateMethod::Sor(iter_opts),
            SteadySolver::Power => SteadyStateMethod::Power(iter_opts),
            _ => SteadyStateMethod::Auto,
        };
        let report = solved.ctmc().steady_state_report(&method)?;
        stats.method = Some(report.method);
        stats.iterations += report.iterations;
        stats.residual = Some(report.residual);
        let pi = report.pi;
        let expected_tokens = want_tokens
            .iter()
            .map(|name| {
                let idx = place(name, &place_ids)?.index();
                let mean = solved
                    .markings()
                    .iter()
                    .zip(&pi)
                    .map(|(m, &p)| p * f64::from(m[idx]))
                    .sum();
                Ok((name.clone(), mean))
            })
            .collect::<Result<Vec<_>>>()?;
        let throughput = want_throughput
            .iter()
            .map(|name| {
                let id = trans_ids
                    .get(name)
                    .copied()
                    .ok_or_else(|| Error::model(format!("unknown transition '{name}'")))?;
                Ok((name.clone(), solved.throughput_given(&pi, id)?))
            })
            .collect::<Result<Vec<_>>>()?;
        (expected_tokens, throughput)
    };

    Ok((
        SolvedMeasures::Spn {
            num_markings: solved.num_markings(),
            expected_tokens,
            throughput,
        },
        stats,
    ))
}

/// Projected peak bytes of the materialized path for a declared marking
/// cap: packed marking arena, intern table, CSR generator (row pointers
/// plus one arc per timed transition per marking at 16 bytes), exit
/// rates and the solution vector. `None` when the spec leaves the cap
/// implicit — there is no declared scale to project from.
fn materialized_estimate(spec: &SpnSpec) -> Option<usize> {
    let cap = spec.max_markings?;
    let timed = spec
        .transitions
        .iter()
        .filter(|t| matches!(t.timing, SpnTimingSpec::Timed { .. }))
        .count();
    Some(cap.saturating_mul(4 * spec.places.len() + 12 + 8 + 16 * timed.max(1) + 16))
}

/// The streaming large-model tier: generate the tangible marking space
/// only (no arcs stored), then solve steady state by regenerating
/// generator rows from the arena on demand. A memory budget the exact
/// streaming solve cannot meet escalates to aggregation bounds, whose
/// bracket midpoints are reported with `stream_bounded` telemetry so
/// consumers see the gap instead of a false point value.
fn solve_spn_stream(
    spec: &SpnSpec,
    opts: &SolveOptions,
    spn: &reliab_spn::Spn,
    ropts: &reliab_spn::ReachabilityOptions,
    place_ids: &FxHashMap<String, reliab_spn::PlaceId>,
    trans_ids: &FxHashMap<String, reliab_spn::TransitionId>,
) -> Result<(SolvedMeasures, SolveStats)> {
    use reliab_stream::{
        bounded_steady_reward, macro_states_for_budget, plan_steady, scan_rates, steady_state,
        ArenaRowSource, PlanOutcome, RowSource, StreamMethod, StreamOptions,
    };
    let space = spn.tangible_space(ropts)?;
    let mut stats = SolveStats::default();
    let sstats = space.stats();
    stats.spn_markings = Some(sstats.markings);
    stats.spn_arcs = Some(sstats.arcs);
    stats.spn_vanishing_eliminated = Some(sstats.vanishing_eliminated);
    stats.spn_reach_workers = Some(1);

    let place = |name: &str| -> Result<reliab_spn::PlaceId> {
        place_ids
            .get(name)
            .copied()
            .ok_or_else(|| Error::model(format!("unknown place '{name}'")))
    };
    let want_tokens = spec.expected_tokens.as_deref().unwrap_or(&[]);
    let want_throughput = spec.throughput.as_deref().unwrap_or(&[]);
    let (expected_tokens, throughput) = if want_tokens.is_empty() && want_throughput.is_empty() {
        (Vec::new(), Vec::new())
    } else {
        let method = match opts.steady_solver {
            SteadySolver::Power => StreamMethod::Power,
            SteadySolver::Sor => StreamMethod::Sor,
            SteadySolver::Gth => {
                return Err(Error::invalid(
                    "the streaming tier has no dense GTH solver; use sor, power or auto",
                ));
            }
            _ => StreamMethod::Auto,
        };
        let sopts = StreamOptions {
            tolerance: opts.tolerance,
            max_iterations: opts.max_iterations,
            method,
            mem_budget: opts.mem_budget,
            ..Default::default()
        };
        let mut src = ArenaRowSource::new(&space);
        let scan = scan_rates(&mut src)?;
        match plan_steady(
            space.num_markings(),
            scan.arcs,
            src.resident_bytes(),
            &sopts,
        ) {
            PlanOutcome::Exact(_) => {
                let report = steady_state(&mut src, &sopts)?;
                stats.method = Some(report.method);
                stats.iterations += report.iterations;
                stats.residual = Some(report.residual);
                stats.stream_blocks = Some(report.plan.blocks);
                stats.stream_cached_blocks = Some(report.plan.cached_blocks);
                stats.stream_peak_bytes = Some(report.plan.peak_bytes());
                stats.stream_bounded = Some(false);
                let pi = report.pi;
                let expected_tokens = want_tokens
                    .iter()
                    .map(|name| {
                        Ok((
                            name.clone(),
                            space.expected_tokens_given(&pi, place(name)?)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?;
                let throughput = want_throughput
                    .iter()
                    .map(|name| {
                        let id = trans_ids
                            .get(name)
                            .copied()
                            .ok_or_else(|| Error::model(format!("unknown transition '{name}'")))?;
                        Ok((name.clone(), space.throughput_given(&pi, id)?))
                    })
                    .collect::<Result<Vec<_>>>()?;
                (expected_tokens, throughput)
            }
            PlanOutcome::NeedsBounds { budget, .. } => {
                let m = macro_states_for_budget(budget);
                stats.method = Some("stream-bounds");
                stats.stream_bounded = Some(true);
                let mut max_gap = 0.0f64;
                let expected_tokens = want_tokens
                    .iter()
                    .map(|name| {
                        let idx = place(name)?.index();
                        let r = bounded_steady_reward(&mut src, m, &mut |i| {
                            f64::from(space.marking(i)[idx])
                        })?;
                        max_gap = max_gap.max(r.bounds.gap());
                        Ok((name.clone(), r.bounds.midpoint()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                // Throughput as a per-state reward: the transition's
                // rate where its input and inhibitor arcs enable it,
                // zero elsewhere (constant rates, so this is exact per
                // state; only the aggregation introduces the bracket).
                let throughput = want_throughput
                    .iter()
                    .map(|name| {
                        let t = spec
                            .transitions
                            .iter()
                            .find(|t| &t.name == name)
                            .ok_or_else(|| Error::model(format!("unknown transition '{name}'")))?;
                        let rate = match t.timing {
                            SpnTimingSpec::Timed { rate } => rate,
                            SpnTimingSpec::Immediate { .. } => {
                                return Err(Error::invalid(format!(
                                    "throughput of immediate transition '{name}' is undefined; \
                                     immediate firings take zero time"
                                )));
                            }
                        };
                        let inputs = t
                            .inputs
                            .iter()
                            .map(|a| Ok((place(&a.place)?.index(), a.count)))
                            .collect::<Result<Vec<_>>>()?;
                        let inhibitors = t
                            .inhibitors
                            .iter()
                            .map(|a| Ok((place(&a.place)?.index(), a.count)))
                            .collect::<Result<Vec<_>>>()?;
                        let r = bounded_steady_reward(&mut src, m, &mut |i| {
                            let mk = space.marking(i);
                            let enabled = inputs.iter().all(|&(p, c)| mk[p] >= c)
                                && inhibitors.iter().all(|&(p, c)| mk[p] < c);
                            if enabled {
                                rate
                            } else {
                                0.0
                            }
                        })?;
                        max_gap = max_gap.max(r.bounds.gap());
                        Ok((name.clone(), r.bounds.midpoint()))
                    })
                    .collect::<Result<Vec<_>>>()?;
                stats.stream_bound_gap = Some(max_gap);
                stats.stream_peak_bytes = Some(src.resident_bytes() as u64 + (m * m * 8) as u64);
                (expected_tokens, throughput)
            }
        }
    };

    Ok((
        SolvedMeasures::Spn {
            num_markings: space.num_markings(),
            expected_tokens,
            throughput,
        },
        stats,
    ))
}

fn solve_ctmc(spec: &CtmcSpec, opts: &SolveOptions) -> Result<(SolvedMeasures, SolveStats)> {
    let mut b = CtmcBuilder::new();
    let mut ids: FxHashMap<String, StateId> = FxHashMap::default();
    for s in &spec.states {
        if ids.contains_key(s) {
            return Err(Error::model(format!("duplicate state '{s}'")));
        }
        ids.insert(s.clone(), b.state(s));
    }
    let lookup = |name: &str, ids: &FxHashMap<String, StateId>| -> Result<StateId> {
        ids.get(name)
            .copied()
            .ok_or_else(|| Error::model(format!("unknown state '{name}'")))
    };
    for t in &spec.transitions {
        let from = lookup(&t.from, &ids)?;
        let to = lookup(&t.to, &ids)?;
        b.transition(from, to, t.rate)?;
    }
    let ctmc = b.build()?;
    let initial_state = match &spec.initial {
        Some(name) => lookup(name, &ids)?,
        None => lookup(&spec.states[0], &ids)?,
    };
    let initial = ctmc.point_mass(initial_state);

    let iter_opts = IterativeOptions {
        tolerance: opts.tolerance,
        max_iterations: opts.max_iterations,
        relaxation: 1.0,
    };
    let method = match opts.steady_solver {
        SteadySolver::Gth => SteadyStateMethod::Gth,
        SteadySolver::Sor => SteadyStateMethod::Sor(iter_opts),
        SteadySolver::Power => SteadyStateMethod::Power(iter_opts),
        _ => SteadyStateMethod::Auto,
    };
    let mut stats = SolveStats::default();
    let steady = ctmc.steady_state_report(&method).ok();
    if let Some(report) = &steady {
        stats.method = Some(report.method);
        stats.iterations += report.iterations;
        stats.residual = Some(report.residual);
    }
    let steady_pi = steady.map(|r| r.pi);
    let steady_named = steady_pi.as_ref().map(|pi| {
        spec.states
            .iter()
            .map(|s| (s.clone(), pi[ids[s].index()]))
            .collect::<Vec<_>>()
    });
    let (availability, downtime) = match (&spec.up_states, &steady_pi) {
        (Some(up), Some(pi)) => {
            let mut a = 0.0;
            for name in up {
                a += pi[lookup(name, &ids)?.index()];
            }
            (Some(a), Some(downtime_minutes_per_year(a)?))
        }
        (Some(_), None) => {
            return Err(Error::model(
                "up_states given but the chain has no stationary distribution",
            ))
        }
        _ => (None, None),
    };
    let mttf = match &spec.absorbing {
        Some(abs) => {
            let states: Vec<StateId> =
                abs.iter().map(|n| lookup(n, &ids)).collect::<Result<_>>()?;
            Some(ctmc.mttf(&initial, &states)?)
        }
        None => None,
    };
    let transient = match &spec.at_times {
        Some(times) => {
            let reports = ctmc.transient_many_report(
                &initial,
                times,
                &TransientOptions::default(),
                opts.transient_jobs,
            )?;
            stats.iterations += reports.iter().map(|r| r.matvecs).sum::<usize>();
            Some(
                times
                    .iter()
                    .zip(reports)
                    .map(|(&t, r)| TransientRow {
                        time: t,
                        probabilities: spec
                            .states
                            .iter()
                            .map(|s| (s.clone(), r.distribution[ids[s].index()]))
                            .collect(),
                    })
                    .collect(),
            )
        }
        None => None,
    };
    Ok((
        SolvedMeasures::Ctmc {
            steady_state: steady_named,
            availability,
            downtime_minutes_per_year: downtime,
            mttf,
            transient,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(text: &str) -> Result<SolveReport> {
        solve_str_with(text, &SolveOptions::default())
    }

    #[test]
    fn rbd_spec_solves() {
        let out = run(r#"{
              "rbd": {
                "components": [
                  {"name": "a", "availability": 0.9},
                  {"name": "b", "availability": 0.9},
                  {"name": "c", "availability": 0.99}
                ],
                "structure": {"series": [{"parallel": ["a", "b"]}, "c"]}
              }
            }"#)
        .unwrap();
        assert!(out.stats.bdd_nodes.unwrap() > 0);
        assert!(out.stats.iterations > 0);
        match out.measures {
            SolvedMeasures::Rbd {
                availability,
                importance,
                ..
            } => {
                assert!((availability - 0.99 * 0.99).abs() < 1e-12);
                assert_eq!(importance.unwrap().len(), 3);
            }
            _ => panic!("expected RBD result"),
        }
    }

    #[test]
    fn fault_tree_spec_solves() {
        let out = run(r#"{
              "fault_tree": {
                "events": [
                  {"name": "p1", "probability": 0.01},
                  {"name": "p2", "probability": 0.01},
                  {"name": "bus", "probability": 0.001}
                ],
                "top": {"or": [{"and": ["p1", "p2"]}, "bus"]}
              }
            }"#)
        .unwrap();
        assert!(out.stats.bdd_cache_lookups.unwrap() > 0);
        match out.measures {
            SolvedMeasures::FaultTree {
                top_event_probability,
                minimal_cut_sets,
                ..
            } => {
                let expected = 1.0 - (1.0 - 1e-4) * (1.0 - 1e-3);
                assert!((top_event_probability - expected).abs() < 1e-12);
                assert_eq!(minimal_cut_sets.len(), 2);
                assert_eq!(minimal_cut_sets[0], vec!["bus"]);
            }
            _ => panic!("expected fault-tree result"),
        }
    }

    #[test]
    fn fault_tree_var_orders_agree_on_probability() {
        // Same tree, every ordering route: the BDD probability is exact
        // under any ordering, so all five must agree with the Input
        // (declaration-order) value to fp noise.
        let spec = |hint: &str| {
            format!(
                r#"{{
                  "fault_tree": {{
                    "events": [
                      {{"name": "p1", "probability": 0.01}},
                      {{"name": "p2", "probability": 0.01}},
                      {{"name": "bus", "probability": 0.001}}
                    ],
                    "top": {{"or": [{{"and": ["p1", "p2"]}}, "bus"]}},
                    "var_order": "{hint}"
                  }}
                }}"#
            )
        };
        let q_of = |report: SolveReport| match report.measures {
            SolvedMeasures::FaultTree {
                top_event_probability,
                ..
            } => top_event_probability,
            _ => panic!("expected fault-tree result"),
        };
        let expected = 1.0 - (1.0 - 1e-4) * (1.0 - 1e-3);
        for hint in ["auto", "input", "dfs", "weighted", "sift"] {
            let q = q_of(run(&spec(hint)).unwrap());
            assert!(
                (q - expected).abs() < 1e-12,
                "var_order {hint}: {q} vs {expected}"
            );
        }
        // A non-Auto option overrides the spec's hint.
        let opts = SolveOptions::default().with_var_order(VarOrder::Sift);
        let q = q_of(solve_str_with(&spec("input"), &opts).unwrap());
        assert!((q - expected).abs() < 1e-12);
    }

    #[test]
    fn fault_tree_bdd_knobs_surface_in_stats() {
        let json = r#"{
              "fault_tree": {
                "events": [
                  {"name": "a", "probability": 0.1},
                  {"name": "b", "probability": 0.2},
                  {"name": "c", "probability": 0.3}
                ],
                "top": {"k_of_n": {"k": 2, "of": ["a", "b", "c"]}}
              }
            }"#;
        let opts = SolveOptions::default()
            .with_ite_cache_capacity(64)
            .with_gc_node_threshold(16);
        let out = solve_str_with(json, &opts).unwrap();
        assert!(out.stats.bdd_cache_evictions.is_some());
        assert!(out.stats.bdd_gc_runs.is_some());
        assert!(out.stats.bdd_gc_reclaimed.is_some());
        assert!(out.stats.bdd_sift_swaps.is_some());
        assert!(out.stats.bdd_peak_live_nodes.unwrap() > 0);
        let text = out.stats.to_json().to_json();
        assert!(text.contains("\"bdd_peak_live_nodes\":"));
    }

    #[test]
    fn fault_tree_var_order_hint_round_trips_and_rejects_junk() {
        let json = r#"{
              "fault_tree": {
                "events": [{"name": "a", "probability": 0.1}],
                "top": "a",
                "var_order": "weighted"
              }
            }"#;
        let spec = ModelSpec::from_json_str(json).unwrap();
        let again = ModelSpec::from_json_str(&spec.to_json().to_json()).unwrap();
        assert_eq!(spec, again);
        match &spec {
            ModelSpec::FaultTree(f) => assert_eq!(f.var_order, Some(VarOrder::Weighted)),
            _ => panic!("expected fault tree"),
        }
        let bad = json.replace("weighted", "random");
        assert!(ModelSpec::from_json_str(&bad).is_err());
    }

    #[test]
    fn ctmc_spec_all_measures() {
        let out = run(r#"{
              "ctmc": {
                "states": ["up", "down"],
                "transitions": [
                  {"from": "up", "to": "down", "rate": 1.0},
                  {"from": "down", "to": "up", "rate": 9.0}
                ],
                "up_states": ["up"],
                "absorbing": ["down"],
                "at_times": [0.1]
              }
            }"#)
        .unwrap();
        assert_eq!(out.stats.method, Some("gth"));
        assert!(out.stats.iterations > 0);
        match out.measures {
            SolvedMeasures::Ctmc {
                availability,
                mttf,
                transient,
                ..
            } => {
                assert!((availability.unwrap() - 0.9).abs() < 1e-12);
                assert!((mttf.unwrap() - 1.0).abs() < 1e-12);
                let rows = transient.unwrap();
                assert_eq!(rows.len(), 1);
                let total: f64 = rows[0].probabilities.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
            _ => panic!("expected CTMC result"),
        }
    }

    #[test]
    fn ctmc_methods_agree_and_report_identity() {
        let text = r#"{
          "ctmc": {
            "states": ["up", "down"],
            "transitions": [
              {"from": "up", "to": "down", "rate": 1.0},
              {"from": "down", "to": "up", "rate": 9.0}
            ],
            "up_states": ["up"]
          }
        }"#;
        let gth = solve_str_with(
            text,
            &SolveOptions::default().with_steady_solver(SteadySolver::Gth),
        )
        .unwrap();
        let sor = solve_str_with(
            text,
            &SolveOptions::default().with_steady_solver(SteadySolver::Sor),
        )
        .unwrap();
        let power = solve_str_with(
            text,
            &SolveOptions::default().with_steady_solver(SteadySolver::Power),
        )
        .unwrap();
        assert_eq!(gth.stats.method, Some("gth"));
        assert_eq!(sor.stats.method, Some("sor"));
        assert_eq!(power.stats.method, Some("power"));
        let a = gth.measures.availability().unwrap();
        assert!((sor.measures.availability().unwrap() - a).abs() < 1e-9);
        assert!((power.measures.availability().unwrap() - a).abs() < 1e-9);
    }

    #[test]
    fn transient_jobs_do_not_change_results() {
        let text = r#"{
          "ctmc": {
            "states": ["up", "down"],
            "transitions": [
              {"from": "up", "to": "down", "rate": 0.3},
              {"from": "down", "to": "up", "rate": 2.0}
            ],
            "at_times": [0.1, 1.0, 10.0, 100.0]
          }
        }"#;
        let seq = run(text).unwrap();
        let par = solve_str_with(text, &SolveOptions::default().with_transient_jobs(4)).unwrap();
        assert_eq!(seq.measures, par.measures);
    }

    #[test]
    fn relgraph_spec_solves_bridge() {
        let out = run(r#"{
              "rel_graph": {
                "nodes": ["s", "a", "c", "t"],
                "edges": [
                  {"name": "e1", "from": "s", "to": "a", "reliability": 0.9},
                  {"name": "e2", "from": "s", "to": "c", "reliability": 0.9},
                  {"name": "e3", "from": "a", "to": "c", "reliability": 0.9},
                  {"name": "e4", "from": "a", "to": "t", "reliability": 0.9},
                  {"name": "e5", "from": "c", "to": "t", "reliability": 0.9}
                ],
                "source": "s",
                "sink": "t",
                "all_terminal": true
              }
            }"#)
        .unwrap();
        assert!(out.stats.bdd_nodes.unwrap() > 0);
        match out.measures {
            SolvedMeasures::RelGraph {
                reliability,
                all_terminal_reliability,
                minimal_path_sets,
                minimal_cut_sets,
            } => {
                let p: f64 = 0.9;
                let expected =
                    2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5);
                assert!((reliability - expected).abs() < 1e-12);
                assert!(all_terminal_reliability.unwrap() <= reliability);
                assert_eq!(minimal_path_sets.len(), 4);
                assert_eq!(minimal_cut_sets.len(), 4);
            }
            _ => panic!("expected rel-graph result"),
        }
    }

    #[test]
    fn spn_spec_solves_mm1k() {
        // M/M/1/3 queue: arrivals inhibited at 3 tokens. Closed-form
        // stationary distribution π_n ∝ ρ^n with ρ = λ/μ.
        let text = r#"{
          "spn": {
            "places": [{"name": "queue", "tokens": 0}],
            "transitions": [
              {"name": "arrive", "rate": 1.0,
               "outputs": [{"place": "queue"}],
               "inhibitors": [{"place": "queue", "count": 3}]},
              {"name": "serve", "rate": 2.0,
               "inputs": [{"place": "queue"}]}
            ],
            "expected_tokens": ["queue"],
            "throughput": ["serve"]
          }
        }"#;
        let out = run(text).unwrap();
        assert_eq!(out.stats.spn_markings, Some(4));
        assert_eq!(out.stats.spn_reach_workers, Some(1));
        assert!(out.stats.spn_arcs.unwrap() > 0);
        assert!(out.stats.method.is_some());
        match &out.measures {
            SolvedMeasures::Spn {
                num_markings,
                expected_tokens,
                throughput,
            } => {
                assert_eq!(*num_markings, 4);
                let rho: f64 = 0.5;
                let z: f64 = (0..4).map(|n| rho.powi(n)).sum();
                let mean: f64 = (0..4).map(|n| f64::from(n) * rho.powi(n) / z).sum();
                assert!((expected_tokens[0].1 - mean).abs() < 1e-9);
                // Served flow = arrival flow admitted: λ·(1 − π_3).
                let expect_tp = 1.0 * (1.0 - rho.powi(3) / z);
                assert!((throughput[0].1 - expect_tp).abs() < 1e-9);
            }
            _ => panic!("expected SPN result"),
        }
        // Worker count never changes the measures.
        let par = solve_str_with(text, &SolveOptions::default().with_reach_jobs(4)).unwrap();
        assert_eq!(par.stats.spn_reach_workers, Some(4));
        assert_eq!(par.measures, out.measures);
        // Serialization carries the spn block.
        let rendered = out.to_json().to_json();
        assert!(rendered.contains("\"spn\":"));
        assert!(rendered.contains("\"spn_markings\":4"));
    }

    #[test]
    fn spn_spec_semantic_errors() {
        // Unknown place in an arc.
        assert!(run(r#"{"spn": {"places": [{"name": "p", "tokens": 1}],
             "transitions": [{"name": "t", "rate": 1.0,
               "inputs": [{"place": "ghost"}]}]}}"#)
        .is_err());
        // Unknown measure targets.
        assert!(run(r#"{"spn": {"places": [{"name": "p", "tokens": 1}],
             "transitions": [{"name": "t", "rate": 1.0, "inputs": [{"place": "p"}],
               "outputs": [{"place": "p"}]}],
             "expected_tokens": ["ghost"]}}"#)
        .is_err());
        // max_markings cap fires.
        assert!(run(r#"{"spn": {"places": [{"name": "p", "tokens": 0}],
             "transitions": [{"name": "grow", "rate": 1.0,
               "outputs": [{"place": "p"}]}],
             "max_markings": 10}}"#)
        .is_err());
    }

    #[test]
    fn semantic_errors_are_reported() {
        // Unknown component reference.
        assert!(run(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.9}],
                 "structure": "nope"}}"#
        )
        .is_err());
        // Duplicate names.
        assert!(run(r#"{"rbd": {"components": [
                 {"name": "a", "availability": 0.9},
                 {"name": "a", "availability": 0.8}],
                 "structure": "a"}}"#)
        .is_err());
        // Bad JSON.
        assert!(run("{").is_err());
        // Unknown state in transitions.
        assert!(run(r#"{"ctmc": {"states": ["up"],
                 "transitions": [{"from": "up", "to": "ghost", "rate": 1.0}]}}"#)
        .is_err());
    }

    #[test]
    fn k_of_n_structure_in_rbd_spec() {
        let out = run(r#"{
              "rbd": {
                "components": [
                  {"name": "a", "availability": 0.9},
                  {"name": "b", "availability": 0.9},
                  {"name": "c", "availability": 0.9}
                ],
                "structure": {"k_of_n": {"k": 2, "of": ["a", "b", "c"]}}
              }
            }"#)
        .unwrap();
        match out.measures {
            SolvedMeasures::Rbd { availability, .. } => {
                let p: f64 = 0.9;
                let expected = 3.0 * p * p * (1.0 - p) + p * p * p;
                assert!((availability - expected).abs() < 1e-12);
            }
            _ => panic!("expected RBD result"),
        }
    }

    #[test]
    fn ctmc_without_optional_measures() {
        let out = run(r#"{
              "ctmc": {
                "states": ["a", "b"],
                "transitions": [
                  {"from": "a", "to": "b", "rate": 2.0},
                  {"from": "b", "to": "a", "rate": 1.0}
                ]
              }
            }"#)
        .unwrap();
        match out.measures {
            SolvedMeasures::Ctmc {
                steady_state,
                availability,
                mttf,
                transient,
                ..
            } => {
                let pi = steady_state.unwrap();
                assert!((pi[0].1 - 1.0 / 3.0).abs() < 1e-12);
                assert!(availability.is_none());
                assert!(mttf.is_none());
                assert!(transient.is_none());
            }
            _ => panic!("expected CTMC result"),
        }
    }

    #[test]
    fn absorbing_ctmc_spec_has_no_steady_state_but_mttf_works() {
        let out = run(r#"{
              "ctmc": {
                "states": ["up", "dead"],
                "transitions": [{"from": "up", "to": "dead", "rate": 0.5}],
                "absorbing": ["dead"]
              }
            }"#)
        .unwrap();
        assert!(out.stats.method.is_none());
        match out.measures {
            SolvedMeasures::Ctmc {
                steady_state, mttf, ..
            } => {
                assert!(steady_state.is_none());
                assert!((mttf.unwrap() - 2.0).abs() < 1e-12);
            }
            _ => panic!("expected CTMC result"),
        }
    }

    #[test]
    fn accessors_pick_the_right_measure() {
        let rbd = run(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.5}],
                 "structure": "a"}}"#,
        )
        .unwrap();
        assert_eq!(rbd.measures.availability(), Some(0.5));
        assert_eq!(rbd.measures.unreliability(), None);
        assert_eq!(rbd.measures.mttf(), None);

        let ft = run(
            r#"{"fault_tree": {"events": [{"name": "e", "probability": 0.25}],
                 "top": "e"}}"#,
        )
        .unwrap();
        assert_eq!(ft.measures.unreliability(), Some(0.25));
        assert_eq!(ft.measures.availability(), None);

        let ctmc = run(r#"{"ctmc": {"states": ["up", "dead"],
                 "transitions": [{"from": "up", "to": "dead", "rate": 0.5}],
                 "absorbing": ["dead"]}}"#)
        .unwrap();
        assert_eq!(ctmc.measures.mttf(), Some(2.0));
    }

    // Two-of-three workstations behind a file server, all exponential:
    // small enough to simulate in milliseconds, rich enough to exercise
    // repair, parallel structure, and the derived-availability path.
    const SIM_RBD: &str = r#"{
      "rbd": {
        "components": [
          {"name": "ws1",
           "ttf_dist": {"exponential": {"mean": 500.0}},
           "ttr_dist": {"exponential": {"mean": 5.0}}},
          {"name": "ws2",
           "ttf_dist": {"exponential": {"mean": 500.0}},
           "ttr_dist": {"exponential": {"mean": 5.0}}},
          {"name": "fs",
           "ttf_dist": {"exponential": {"mean": 2000.0}},
           "ttr_dist": {"exponential": {"mean": 4.0}}}
        ],
        "structure": {"series": [{"parallel": ["ws1", "ws2"]}, "fs"]},
        "sim": {
          "measure": "availability",
          "horizon": 5000.0,
          "seed": 8,
          "max_replications": 128,
          "rel_precision": 0.0,
          "confidence": 0.99
        }
      }
    }"#;

    #[test]
    fn rbd_sim_spec_simulates_and_brackets_the_analytic_value() {
        let out = run(SIM_RBD).unwrap();
        assert_eq!(out.stats.sim_replications, Some(128));
        assert!(out.stats.sim_events.unwrap() > 0);
        assert_eq!(out.stats.sim_workers, Some(1));
        match &out.measures {
            SolvedMeasures::Sim {
                measure,
                point,
                ci_lower,
                ci_upper,
                confidence,
                downtime_minutes_per_year,
                ..
            } => {
                assert_eq!(measure, "availability");
                assert_eq!(*confidence, 0.99);
                // Exponential case: availability is insensitive, so the
                // analytic RBD value is exact.
                let a_ws = 500.0 / 505.0;
                let a_fs = 2000.0 / 2004.0;
                let exact = (1.0 - (1.0 - a_ws) * (1.0 - a_ws)) * a_fs;
                assert!(
                    *ci_lower <= exact && exact <= *ci_upper,
                    "analytic {exact} outside [{ci_lower}, {ci_upper}]"
                );
                assert_eq!(out.measures.availability(), Some(*point));
                assert!(downtime_minutes_per_year.is_some());
            }
            other => panic!("expected sim result, got {other:?}"),
        }
        // The JSON output is tagged "sim" and carries the CI.
        let text = out.to_json().to_json();
        assert!(text.contains("\"sim\":"));
        assert!(text.contains("\"ci_lower\":"));
        assert!(text.contains("\"sim_converged\":"));
    }

    #[test]
    fn sim_results_are_identical_at_any_worker_count() {
        let base = run(SIM_RBD).unwrap();
        for jobs in [2, 4, 8] {
            let par =
                solve_str_with(SIM_RBD, &SolveOptions::default().with_sim_jobs(jobs)).unwrap();
            assert_eq!(par.measures, base.measures, "sim_jobs {jobs}");
            assert_eq!(par.stats.sim_workers, Some(jobs));
        }
    }

    #[test]
    fn sim_options_override_the_spec_block() {
        let out = solve_str_with(
            SIM_RBD,
            &SolveOptions::default()
                .with_sim_replications(64)
                .with_sim_seed(1234),
        )
        .unwrap();
        assert_eq!(out.stats.sim_replications, Some(64));
        // A different seed must change the estimate (vanishingly
        // unlikely to collide to the same 64 trajectories).
        let base =
            solve_str_with(SIM_RBD, &SolveOptions::default().with_sim_replications(64)).unwrap();
        assert_ne!(out.measures, base.measures);
    }

    #[test]
    fn simulate_option_without_sim_block_is_an_error() {
        let spec = r#"{"rbd": {"components": [{"name": "a", "availability": 0.5}],
             "structure": "a"}}"#;
        let err = solve_str_with(spec, &SolveOptions::default().with_simulate(true));
        assert!(err.is_err());
        // And the analytic path still works without the flag.
        assert!(solve_str_with(spec, &SolveOptions::default()).is_ok());
    }

    #[test]
    fn dist_components_without_sim_block_solve_analytically() {
        // No sim block: the solver derives each availability from the
        // distribution means (exact by insensitivity) and runs the BDD.
        let out = run(r#"{
          "rbd": {
            "components": [
              {"name": "a",
               "ttf_dist": {"exponential": {"mean": 900.0}},
               "ttr_dist": {"lognormal": {"mean": 100.0, "cv2": 4.0}}}
            ],
            "structure": "a"
          }
        }"#)
        .unwrap();
        match out.measures {
            SolvedMeasures::Rbd { availability, .. } => {
                assert!((availability - 0.9).abs() < 1e-12);
            }
            _ => panic!("expected analytic RBD result"),
        }
        // But a non-repairable component cannot be solved analytically.
        assert!(run(r#"{
          "rbd": {
            "components": [
              {"name": "a", "ttf_dist": {"exponential": {"mean": 900.0}}}
            ],
            "structure": "a"
          }
        }"#)
        .is_err());
    }

    #[test]
    fn fault_tree_sim_reliability_matches_analytic_series() {
        // Two independent exponential events, OR gate, no repair: the
        // analytic mission reliability is exp(-(l1+l2) t).
        let spec = r#"{
          "fault_tree": {
            "events": [
              {"name": "e1", "ttf_dist": {"exponential": {"rate": 0.002}}},
              {"name": "e2", "ttf_dist": {"exponential": {"rate": 0.001}}}
            ],
            "top": {"or": ["e1", "e2"]},
            "sim": {
              "measure": "reliability",
              "mission_time": 200.0,
              "seed": 11,
              "max_replications": 4096,
              "rel_precision": 0.0
            }
          }
        }"#;
        let out = run(spec).unwrap();
        match &out.measures {
            SolvedMeasures::Sim {
                measure,
                point,
                ci_lower,
                ci_upper,
                ..
            } => {
                assert_eq!(measure, "reliability");
                let exact = (-0.003f64 * 200.0).exp();
                assert!(
                    *ci_lower <= exact && exact <= *ci_upper,
                    "analytic {exact} outside [{ci_lower}, {ci_upper}]"
                );
                assert_eq!(out.measures.unreliability(), Some(1.0 - point));
            }
            other => panic!("expected sim result, got {other:?}"),
        }
    }

    #[test]
    fn sim_mttf_measure_reports_in_mttf_accessor() {
        let spec = r#"{
          "rbd": {
            "components": [
              {"name": "a", "ttf_dist": {"exponential": {"mean": 100.0}}}
            ],
            "structure": "a",
            "sim": {
              "measure": "mttf",
              "time_cap": 1e7,
              "seed": 3,
              "max_replications": 1024,
              "rel_precision": 0.0
            }
          }
        }"#;
        let out = run(spec).unwrap();
        let mttf = out.measures.mttf().unwrap();
        // 1024 replications of an exponential(100): well within 15%.
        assert!((mttf - 100.0).abs() < 15.0, "mttf {mttf}");
    }

    #[test]
    fn result_serializes_to_json() {
        let out = run(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.5}],
                 "structure": "a"}}"#,
        )
        .unwrap();
        let text = out.to_json().to_json_pretty();
        assert!(text.contains("availability"));
        assert!(text.contains("downtime_minutes_per_year"));
        assert!(text.contains("wall_time_ms"));
        // Output is valid JSON.
        assert!(crate::json::parse(&text).is_ok());
    }

    #[test]
    fn kind_discriminant_and_primary_value() {
        let out = run(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.5}],
                 "structure": "a"}}"#,
        )
        .unwrap();
        assert_eq!(out.measures.kind(), "rbd");
        assert_eq!(out.measures.primary_value(), Some(0.5));
        let doc = out.measures.to_json();
        let kind = crate::json::get_path(&doc, "kind").and_then(|v| v.as_str());
        assert_eq!(kind, Some("rbd"));
        assert!(crate::json::get_path(&doc, "rbd.availability").is_some());
    }
}
