//! Specification → model conversion and solving.

use crate::schema::*;
use reliab_core::{downtime_minutes_per_year, Error, Result};
use reliab_ftree::{FaultTreeBuilder, FtNode};
use reliab_markov::{CtmcBuilder, StateId};
use reliab_rbd::{Block, RbdBuilder};
use serde::Serialize;
use std::collections::HashMap;

/// Importance measures of one component/event, serialization-friendly.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct ImportanceRow {
    /// Component or basic-event name.
    pub name: String,
    /// Birnbaum importance.
    pub birnbaum: f64,
    /// Criticality importance.
    pub criticality: f64,
    /// Fussell–Vesely importance.
    pub fussell_vesely: f64,
}

/// Transient state probabilities at one time point.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TransientRow {
    /// The time point.
    pub time: f64,
    /// `(state, probability)` pairs in declaration order.
    pub probabilities: Vec<(String, f64)>,
}

/// Everything a specification solve produces, ready for JSON output.
#[derive(Debug, Clone, Serialize, PartialEq)]
#[serde(rename_all = "snake_case")]
pub enum SolvedMeasures {
    /// RBD results.
    Rbd {
        /// System availability.
        availability: f64,
        /// Downtime in minutes/year implied by the availability.
        downtime_minutes_per_year: f64,
        /// Per-component importance (absent when the system is perfect
        /// at the given inputs).
        importance: Option<Vec<ImportanceRow>>,
    },
    /// Fault-tree results.
    FaultTree {
        /// Exact top-event probability.
        top_event_probability: f64,
        /// Minimal cut sets (event-name lists, ascending order/size).
        minimal_cut_sets: Vec<Vec<String>>,
        /// Per-event importance (absent when the top event is
        /// impossible at the given inputs).
        importance: Option<Vec<ImportanceRow>>,
    },
    /// Reliability-graph results.
    RelGraph {
        /// s-t (two-terminal) reliability.
        reliability: f64,
        /// All-terminal reliability, when requested and defined.
        all_terminal_reliability: Option<f64>,
        /// Minimal s-t path sets (edge-name lists).
        minimal_path_sets: Vec<Vec<String>>,
        /// Minimal s-t cut sets (edge-name lists).
        minimal_cut_sets: Vec<Vec<String>>,
    },
    /// CTMC results.
    Ctmc {
        /// Stationary distribution `(state, probability)` — absent for
        /// chains with absorbing structure where no stationary
        /// distribution exists.
        steady_state: Option<Vec<(String, f64)>>,
        /// Steady-state availability over `up_states` (if given).
        availability: Option<f64>,
        /// Downtime in minutes/year (when availability was computed).
        downtime_minutes_per_year: Option<f64>,
        /// MTTF into the `absorbing` set (if given).
        mttf: Option<f64>,
        /// Transient distributions at the requested times.
        transient: Option<Vec<TransientRow>>,
    },
}

/// Parses and solves a JSON specification document.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] for JSON that does not match
/// the schema, [`Error::Model`] for semantic problems (unknown names,
/// duplicate components), and propagates solver errors.
pub fn solve_str(json: &str) -> Result<SolvedMeasures> {
    let spec: ModelSpec = serde_json::from_str(json)
        .map_err(|e| Error::invalid(format!("specification does not match schema: {e}")))?;
    solve(&spec)
}

/// Solves an already-parsed specification.
///
/// # Errors
///
/// See [`solve_str`].
pub fn solve(spec: &ModelSpec) -> Result<SolvedMeasures> {
    match spec {
        ModelSpec::Rbd(r) => solve_rbd(r),
        ModelSpec::FaultTree(f) => solve_fault_tree(f),
        ModelSpec::Ctmc(c) => solve_ctmc(c),
        ModelSpec::RelGraph(g) => solve_relgraph(g),
    }
}

fn solve_relgraph(spec: &RelGraphSpec) -> Result<SolvedMeasures> {
    use reliab_relgraph::RelGraphBuilder;
    let mut b = RelGraphBuilder::new();
    let mut node_ids = HashMap::new();
    for n in &spec.nodes {
        if node_ids.contains_key(n) {
            return Err(Error::model(format!("duplicate node '{n}'")));
        }
        node_ids.insert(n.clone(), b.node(n));
    }
    let node = |name: &str, ids: &HashMap<String, reliab_relgraph::NodeIdx>| {
        ids.get(name)
            .copied()
            .ok_or_else(|| Error::model(format!("unknown node '{name}'")))
    };
    let mut probs = Vec::with_capacity(spec.edges.len());
    for e in &spec.edges {
        let u = node(&e.from, &node_ids)?;
        let v = node(&e.to, &node_ids)?;
        if e.directed {
            b.arc(u, v, &e.name);
        } else {
            b.edge(u, v, &e.name);
        }
        probs.push(e.reliability);
    }
    let source = node(&spec.source, &node_ids)?;
    let sink = node(&spec.sink, &node_ids)?;
    let g = b.build(source, sink)?;
    let reliability = g.reliability(&probs)?;
    let all_terminal_reliability = if spec.all_terminal {
        Some(g.all_terminal_reliability(&probs)?)
    } else {
        None
    };
    let name_of = |es: Vec<reliab_relgraph::EdgeId>| -> Vec<String> {
        es.into_iter().map(|e| g.edge_name(e).to_owned()).collect()
    };
    let minimal_path_sets = g.minimal_path_sets().into_iter().map(&name_of).collect();
    let minimal_cut_sets = g
        .minimal_cut_sets(100_000)?
        .into_iter()
        .map(&name_of)
        .collect();
    Ok(SolvedMeasures::RelGraph {
        reliability,
        all_terminal_reliability,
        minimal_path_sets,
        minimal_cut_sets,
    })
}

fn solve_rbd(spec: &RbdSpec) -> Result<SolvedMeasures> {
    let mut b = RbdBuilder::new();
    let mut ids = HashMap::new();
    let mut probs = Vec::new();
    for c in &spec.components {
        if ids.contains_key(&c.name) {
            return Err(Error::model(format!("duplicate component '{}'", c.name)));
        }
        ids.insert(c.name.clone(), b.component(&c.name));
        probs.push(c.availability);
    }
    let root = build_structure(&spec.structure, &ids)?;
    let mut rbd = b.build(root)?;
    let availability = rbd.availability(&probs)?;
    let importance = match rbd.importance(&probs) {
        Ok(rows) => Some(
            rows.into_iter()
                .map(|m| ImportanceRow {
                    name: m.component,
                    birnbaum: m.birnbaum,
                    criticality: m.criticality,
                    fussell_vesely: m.fussell_vesely,
                })
                .collect(),
        ),
        Err(_) => None, // perfect system: importance undefined
    };
    Ok(SolvedMeasures::Rbd {
        availability,
        downtime_minutes_per_year: downtime_minutes_per_year(availability)?,
        importance,
    })
}

fn build_structure(
    s: &StructureSpec,
    ids: &HashMap<String, reliab_rbd::ComponentId>,
) -> Result<Block> {
    match s {
        StructureSpec::Component(name) => ids
            .get(name)
            .map(|&c| Block::Component(c))
            .ok_or_else(|| Error::model(format!("unknown component '{name}'"))),
        StructureSpec::Series { series } => Ok(Block::Series(
            series
                .iter()
                .map(|x| build_structure(x, ids))
                .collect::<Result<_>>()?,
        )),
        StructureSpec::Parallel { parallel } => Ok(Block::Parallel(
            parallel
                .iter()
                .map(|x| build_structure(x, ids))
                .collect::<Result<_>>()?,
        )),
        StructureSpec::KOfN { k_of_n } => Ok(Block::KOfN {
            k: k_of_n.k,
            blocks: k_of_n
                .of
                .iter()
                .map(|x| build_structure(x, ids))
                .collect::<Result<_>>()?,
        }),
    }
}

fn solve_fault_tree(spec: &FaultTreeSpec) -> Result<SolvedMeasures> {
    let mut b = FaultTreeBuilder::new();
    let mut ids = HashMap::new();
    let mut probs = Vec::new();
    for e in &spec.events {
        if ids.contains_key(&e.name) {
            return Err(Error::model(format!("duplicate event '{}'", e.name)));
        }
        ids.insert(e.name.clone(), b.basic_event(&e.name));
        probs.push(e.probability);
    }
    let top = build_gate(&spec.top, &ids)?;
    let mut ft = b.build(top)?;
    let q = ft.top_event_probability(&probs)?;
    let cuts = ft
        .minimal_cut_sets(spec.max_cut_sets.unwrap_or(100_000))
        .unwrap_or_else(|_| ft.minimal_cut_sets_bdd());
    let named_cuts: Vec<Vec<String>> = cuts
        .iter()
        .map(|c| {
            c.events()
                .iter()
                .map(|&e| ft.event_name(e).to_owned())
                .collect()
        })
        .collect();
    let importance = match ft.importance(&probs) {
        Ok(rows) => Some(
            rows.into_iter()
                .map(|m| ImportanceRow {
                    name: m.component,
                    birnbaum: m.birnbaum,
                    criticality: m.criticality,
                    fussell_vesely: m.fussell_vesely,
                })
                .collect(),
        ),
        Err(_) => None,
    };
    Ok(SolvedMeasures::FaultTree {
        top_event_probability: q,
        minimal_cut_sets: named_cuts,
        importance,
    })
}

fn build_gate(
    g: &GateSpec,
    ids: &HashMap<String, reliab_ftree::EventId>,
) -> Result<FtNode> {
    match g {
        GateSpec::Event(name) => ids
            .get(name)
            .map(|&e| FtNode::Basic(e))
            .ok_or_else(|| Error::model(format!("unknown event '{name}'"))),
        GateSpec::And { and } => Ok(FtNode::And(
            and.iter().map(|x| build_gate(x, ids)).collect::<Result<_>>()?,
        )),
        GateSpec::Or { or } => Ok(FtNode::Or(
            or.iter().map(|x| build_gate(x, ids)).collect::<Result<_>>()?,
        )),
        GateSpec::KOfN { k_of_n } => Ok(FtNode::KOfN {
            k: k_of_n.k,
            inputs: k_of_n
                .of
                .iter()
                .map(|x| build_gate(x, ids))
                .collect::<Result<_>>()?,
        }),
    }
}

fn solve_ctmc(spec: &CtmcSpec) -> Result<SolvedMeasures> {
    let mut b = CtmcBuilder::new();
    let mut ids: HashMap<String, StateId> = HashMap::new();
    for s in &spec.states {
        if ids.contains_key(s) {
            return Err(Error::model(format!("duplicate state '{s}'")));
        }
        ids.insert(s.clone(), b.state(s));
    }
    let lookup = |name: &str, ids: &HashMap<String, StateId>| -> Result<StateId> {
        ids.get(name)
            .copied()
            .ok_or_else(|| Error::model(format!("unknown state '{name}'")))
    };
    for t in &spec.transitions {
        let from = lookup(&t.from, &ids)?;
        let to = lookup(&t.to, &ids)?;
        b.transition(from, to, t.rate)?;
    }
    let ctmc = b.build()?;
    let initial_state = match &spec.initial {
        Some(name) => lookup(name, &ids)?,
        None => lookup(&spec.states[0], &ids)?,
    };
    let initial = ctmc.point_mass(initial_state);

    let steady = ctmc.steady_state().ok();
    let steady_named = steady.as_ref().map(|pi| {
        spec.states
            .iter()
            .map(|s| (s.clone(), pi[ids[s].index()]))
            .collect::<Vec<_>>()
    });
    let (availability, downtime) = match (&spec.up_states, &steady) {
        (Some(up), Some(pi)) => {
            let mut a = 0.0;
            for name in up {
                a += pi[lookup(name, &ids)?.index()];
            }
            (Some(a), Some(downtime_minutes_per_year(a)?))
        }
        (Some(_), None) => {
            return Err(Error::model(
                "up_states given but the chain has no stationary distribution",
            ))
        }
        _ => (None, None),
    };
    let mttf = match &spec.absorbing {
        Some(abs) => {
            let states: Vec<StateId> = abs
                .iter()
                .map(|n| lookup(n, &ids))
                .collect::<Result<_>>()?;
            Some(ctmc.mttf(&initial, &states)?)
        }
        None => None,
    };
    let transient = match &spec.at_times {
        Some(times) => {
            let mut rows = Vec::with_capacity(times.len());
            for &t in times {
                let pi = ctmc.transient(&initial, t)?;
                rows.push(TransientRow {
                    time: t,
                    probabilities: spec
                        .states
                        .iter()
                        .map(|s| (s.clone(), pi[ids[s].index()]))
                        .collect(),
                });
            }
            Some(rows)
        }
        None => None,
    };
    Ok(SolvedMeasures::Ctmc {
        steady_state: steady_named,
        availability,
        downtime_minutes_per_year: downtime,
        mttf,
        transient,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rbd_spec_solves() {
        let out = solve_str(
            r#"{
              "rbd": {
                "components": [
                  {"name": "a", "availability": 0.9},
                  {"name": "b", "availability": 0.9},
                  {"name": "c", "availability": 0.99}
                ],
                "structure": {"series": [{"parallel": ["a", "b"]}, "c"]}
              }
            }"#,
        )
        .unwrap();
        match out {
            SolvedMeasures::Rbd {
                availability,
                importance,
                ..
            } => {
                assert!((availability - 0.99 * 0.99).abs() < 1e-12);
                assert_eq!(importance.unwrap().len(), 3);
            }
            _ => panic!("expected RBD result"),
        }
    }

    #[test]
    fn fault_tree_spec_solves() {
        let out = solve_str(
            r#"{
              "fault_tree": {
                "events": [
                  {"name": "p1", "probability": 0.01},
                  {"name": "p2", "probability": 0.01},
                  {"name": "bus", "probability": 0.001}
                ],
                "top": {"or": [{"and": ["p1", "p2"]}, "bus"]}
              }
            }"#,
        )
        .unwrap();
        match out {
            SolvedMeasures::FaultTree {
                top_event_probability,
                minimal_cut_sets,
                ..
            } => {
                let expected = 1.0 - (1.0 - 1e-4) * (1.0 - 1e-3);
                assert!((top_event_probability - expected).abs() < 1e-12);
                assert_eq!(minimal_cut_sets.len(), 2);
                assert_eq!(minimal_cut_sets[0], vec!["bus"]);
            }
            _ => panic!("expected fault-tree result"),
        }
    }

    #[test]
    fn ctmc_spec_all_measures() {
        let out = solve_str(
            r#"{
              "ctmc": {
                "states": ["up", "down"],
                "transitions": [
                  {"from": "up", "to": "down", "rate": 1.0},
                  {"from": "down", "to": "up", "rate": 9.0}
                ],
                "up_states": ["up"],
                "absorbing": ["down"],
                "at_times": [0.1]
              }
            }"#,
        )
        .unwrap();
        match out {
            SolvedMeasures::Ctmc {
                availability,
                mttf,
                transient,
                ..
            } => {
                assert!((availability.unwrap() - 0.9).abs() < 1e-12);
                assert!((mttf.unwrap() - 1.0).abs() < 1e-12);
                let rows = transient.unwrap();
                assert_eq!(rows.len(), 1);
                let total: f64 = rows[0].probabilities.iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-9);
            }
            _ => panic!("expected CTMC result"),
        }
    }

    #[test]
    fn relgraph_spec_solves_bridge() {
        let out = solve_str(
            r#"{
              "rel_graph": {
                "nodes": ["s", "a", "c", "t"],
                "edges": [
                  {"name": "e1", "from": "s", "to": "a", "reliability": 0.9},
                  {"name": "e2", "from": "s", "to": "c", "reliability": 0.9},
                  {"name": "e3", "from": "a", "to": "c", "reliability": 0.9},
                  {"name": "e4", "from": "a", "to": "t", "reliability": 0.9},
                  {"name": "e5", "from": "c", "to": "t", "reliability": 0.9}
                ],
                "source": "s",
                "sink": "t",
                "all_terminal": true
              }
            }"#,
        )
        .unwrap();
        match out {
            SolvedMeasures::RelGraph {
                reliability,
                all_terminal_reliability,
                minimal_path_sets,
                minimal_cut_sets,
            } => {
                let p: f64 = 0.9;
                let expected =
                    2.0 * p.powi(2) + 2.0 * p.powi(3) - 5.0 * p.powi(4) + 2.0 * p.powi(5);
                assert!((reliability - expected).abs() < 1e-12);
                assert!(all_terminal_reliability.unwrap() <= reliability);
                assert_eq!(minimal_path_sets.len(), 4);
                assert_eq!(minimal_cut_sets.len(), 4);
            }
            _ => panic!("expected rel-graph result"),
        }
    }

    #[test]
    fn semantic_errors_are_reported() {
        // Unknown component reference.
        assert!(solve_str(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.9}],
                 "structure": "nope"}}"#
        )
        .is_err());
        // Duplicate names.
        assert!(solve_str(
            r#"{"rbd": {"components": [
                 {"name": "a", "availability": 0.9},
                 {"name": "a", "availability": 0.8}],
                 "structure": "a"}}"#
        )
        .is_err());
        // Bad JSON.
        assert!(solve_str("{").is_err());
        // Unknown state in transitions.
        assert!(solve_str(
            r#"{"ctmc": {"states": ["up"],
                 "transitions": [{"from": "up", "to": "ghost", "rate": 1.0}]}}"#
        )
        .is_err());
    }

    #[test]
    fn k_of_n_structure_in_rbd_spec() {
        let out = solve_str(
            r#"{
              "rbd": {
                "components": [
                  {"name": "a", "availability": 0.9},
                  {"name": "b", "availability": 0.9},
                  {"name": "c", "availability": 0.9}
                ],
                "structure": {"k_of_n": {"k": 2, "of": ["a", "b", "c"]}}
              }
            }"#,
        )
        .unwrap();
        match out {
            SolvedMeasures::Rbd { availability, .. } => {
                let p: f64 = 0.9;
                let expected = 3.0 * p * p * (1.0 - p) + p * p * p;
                assert!((availability - expected).abs() < 1e-12);
            }
            _ => panic!("expected RBD result"),
        }
    }

    #[test]
    fn ctmc_without_optional_measures() {
        let out = solve_str(
            r#"{
              "ctmc": {
                "states": ["a", "b"],
                "transitions": [
                  {"from": "a", "to": "b", "rate": 2.0},
                  {"from": "b", "to": "a", "rate": 1.0}
                ]
              }
            }"#,
        )
        .unwrap();
        match out {
            SolvedMeasures::Ctmc {
                steady_state,
                availability,
                mttf,
                transient,
                ..
            } => {
                let pi = steady_state.unwrap();
                assert!((pi[0].1 - 1.0 / 3.0).abs() < 1e-12);
                assert!(availability.is_none());
                assert!(mttf.is_none());
                assert!(transient.is_none());
            }
            _ => panic!("expected CTMC result"),
        }
    }

    #[test]
    fn absorbing_ctmc_spec_has_no_steady_state_but_mttf_works() {
        let out = solve_str(
            r#"{
              "ctmc": {
                "states": ["up", "dead"],
                "transitions": [{"from": "up", "to": "dead", "rate": 0.5}],
                "absorbing": ["dead"]
              }
            }"#,
        )
        .unwrap();
        match out {
            SolvedMeasures::Ctmc {
                steady_state, mttf, ..
            } => {
                assert!(steady_state.is_none());
                assert!((mttf.unwrap() - 2.0).abs() < 1e-12);
            }
            _ => panic!("expected CTMC result"),
        }
    }

    #[test]
    fn result_serializes_to_json() {
        let out = solve_str(
            r#"{"rbd": {"components": [{"name": "a", "availability": 0.5}],
                 "structure": "a"}}"#,
        )
        .unwrap();
        let json = serde_json::to_string_pretty(&out).unwrap();
        assert!(json.contains("availability"));
        assert!(json.contains("downtime_minutes_per_year"));
    }
}
