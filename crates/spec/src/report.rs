//! Solve options and instrumented solve reports — the configuration
//! and telemetry halves of the `solve_with` API.

use crate::convert::SolvedMeasures;
use crate::json::{self, JsonValue};
use std::time::Duration;

/// Tuning knobs for a specification solve.
///
/// `SolveOptions::default()` reproduces the historical behavior of the
/// un-parameterized `solve` exactly: automatic steady-state method
/// selection, `1e-12` tolerance, a 20 000-sweep budget, and sequential
/// transient evaluation.
///
/// The struct is `#[non_exhaustive]`; construct it with
/// [`SolveOptions::default`] and adjust fields directly or through the
/// `with_*` builders:
///
/// ```
/// use reliab_spec::{SolveOptions, SteadySolver};
///
/// let opts = SolveOptions::default()
///     .with_steady_solver(SteadySolver::Power)
///     .with_tolerance(1e-10);
/// assert_eq!(opts.tolerance, 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SolveOptions {
    /// Convergence tolerance for iterative steady-state methods
    /// (SOR, power iteration).
    pub tolerance: f64,
    /// Sweep budget for iterative steady-state methods.
    pub max_iterations: usize,
    /// Steady-state method for CTMC models.
    pub steady_solver: SteadySolver,
    /// Threads for evaluating CTMC transient time points (`at_times`):
    /// `1` is sequential, `0` means one thread per available CPU.
    /// Results are bitwise identical at any setting.
    pub transient_jobs: usize,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerance: 1e-12,
            max_iterations: 20_000,
            steady_solver: SteadySolver::Auto,
            transient_jobs: 1,
        }
    }
}

impl SolveOptions {
    /// Sets the convergence tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Selects the CTMC steady-state method.
    #[must_use]
    pub fn with_steady_solver(mut self, solver: SteadySolver) -> Self {
        self.steady_solver = solver;
        self
    }

    /// Sets the transient-sweep thread count.
    #[must_use]
    pub fn with_transient_jobs(mut self, jobs: usize) -> Self {
        self.transient_jobs = jobs;
        self
    }
}

/// CTMC steady-state method selection, mirroring
/// `reliab_markov::SteadyStateMethod` but carrying no numeric options
/// (those come from [`SolveOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SteadySolver {
    /// GTH for small chains, SOR for large ones (the historical
    /// behavior). Iterative tolerances under `Auto` are the library
    /// defaults, not the [`SolveOptions`] values.
    #[default]
    Auto,
    /// Dense Grassmann–Taksar–Heyman elimination.
    Gth,
    /// Gauss–Seidel sweeps on the sparse generator.
    Sor,
    /// Power iteration on the uniformized DTMC.
    Power,
}

/// Telemetry recorded while solving one specification.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct SolveStats {
    /// Wall-clock time of the whole solve (parse excluded).
    pub wall_time: Duration,
    /// Solver work performed: sweeps plus matrix–vector products for
    /// Markov models, ITE operations for BDD-based combinatorial
    /// models.
    pub iterations: usize,
    /// Final convergence residual of the steady-state solve, when an
    /// iterative method ran (GTH is direct and reports `Some(0.0)`).
    pub residual: Option<f64>,
    /// The steady-state method that actually ran (`"gth"`, `"sor"`,
    /// `"power"`), for CTMC models.
    pub method: Option<&'static str>,
    /// BDD arena size after the solve, for BDD-based models.
    pub bdd_nodes: Option<usize>,
    /// ITE computed-cache lookups, for BDD-based models.
    pub bdd_cache_lookups: Option<u64>,
    /// ITE computed-cache hits, for BDD-based models.
    pub bdd_cache_hits: Option<u64>,
}

impl SolveStats {
    /// Serializes to the JSON stats object emitted by the CLI.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let opt_num = |x: Option<f64>| x.map_or(JsonValue::Null, JsonValue::Number);
        json::object(vec![
            (
                "wall_time_ms",
                JsonValue::Number(self.wall_time.as_secs_f64() * 1e3),
            ),
            ("iterations", JsonValue::Number(self.iterations as f64)),
            ("residual", opt_num(self.residual)),
            (
                "method",
                self.method.map_or(JsonValue::Null, JsonValue::from),
            ),
            ("bdd_nodes", opt_num(self.bdd_nodes.map(|n| n as f64))),
            (
                "bdd_cache_lookups",
                opt_num(self.bdd_cache_lookups.map(|n| n as f64)),
            ),
            (
                "bdd_cache_hits",
                opt_num(self.bdd_cache_hits.map(|n| n as f64)),
            ),
        ])
    }
}

/// The result of solving one specification: the measures plus the
/// telemetry gathered while producing them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SolveReport {
    /// The solved measures.
    pub measures: SolvedMeasures,
    /// Solver telemetry.
    pub stats: SolveStats,
}

impl SolveReport {
    /// Serializes as `{"measures": ..., "stats": ...}`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("measures", self.measures.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_match_historical_solver_settings() {
        let opts = SolveOptions::default();
        assert_eq!(opts.tolerance, 1e-12);
        assert_eq!(opts.max_iterations, 20_000);
        assert_eq!(opts.steady_solver, SteadySolver::Auto);
        assert_eq!(opts.transient_jobs, 1);
    }

    #[test]
    fn builders_compose() {
        let opts = SolveOptions::default()
            .with_tolerance(1e-8)
            .with_max_iterations(99)
            .with_steady_solver(SteadySolver::Gth)
            .with_transient_jobs(0);
        assert_eq!(opts.tolerance, 1e-8);
        assert_eq!(opts.max_iterations, 99);
        assert_eq!(opts.steady_solver, SteadySolver::Gth);
        assert_eq!(opts.transient_jobs, 0);
    }

    #[test]
    fn stats_serialize_with_nulls_for_absent_fields() {
        let stats = SolveStats::default();
        let text = stats.to_json().to_json();
        assert!(text.contains("\"residual\":null"));
        assert!(text.contains("\"iterations\":0"));
    }
}
