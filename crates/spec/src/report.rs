//! Solve options and instrumented solve reports — the configuration
//! and telemetry halves of the `solve_with` API.

use crate::convert::SolvedMeasures;
use crate::json::{self, JsonValue};
use std::time::Duration;

/// Tuning knobs for a specification solve.
///
/// `SolveOptions::default()` reproduces the historical behavior of the
/// un-parameterized `solve` exactly: automatic steady-state method
/// selection, `1e-12` tolerance, a 20 000-sweep budget, and sequential
/// transient evaluation.
///
/// The struct is `#[non_exhaustive]`; construct it with
/// [`SolveOptions::default`] and adjust fields directly or through the
/// `with_*` builders:
///
/// ```
/// use reliab_spec::{SolveOptions, SteadySolver};
///
/// let opts = SolveOptions::default()
///     .with_steady_solver(SteadySolver::Power)
///     .with_tolerance(1e-10);
/// assert_eq!(opts.tolerance, 1e-10);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SolveOptions {
    /// Convergence tolerance for iterative steady-state methods
    /// (SOR, power iteration).
    pub tolerance: f64,
    /// Sweep budget for iterative steady-state methods.
    pub max_iterations: usize,
    /// Steady-state method for CTMC models.
    pub steady_solver: SteadySolver,
    /// Threads for evaluating CTMC transient time points (`at_times`):
    /// `1` is sequential, `0` means one thread per available CPU.
    /// Results are bitwise identical at any setting.
    pub transient_jobs: usize,
    /// BDD variable ordering for fault-tree models. [`VarOrder::Auto`]
    /// defers to the spec's `var_order` field, falling back to the
    /// depth-first heuristic; any other value overrides the spec.
    pub var_order: VarOrder,
    /// ITE computed-cache capacity bound for BDD-based models, in
    /// entries (rounded to a power of two). `0` keeps the kernel
    /// default.
    pub ite_cache_capacity: usize,
    /// Live-node count above which the BDD kernel considers garbage
    /// collection. `0` keeps the kernel default.
    pub gc_node_threshold: usize,
    /// Worker threads for SPN state-space generation: `1` is the
    /// sequential reference, `0` means one worker per available CPU.
    /// The generated CTMC is bitwise identical at any setting. A
    /// non-default value overrides the spec's `reach_jobs` knob.
    pub reach_jobs: usize,
    /// Forces discrete-event simulation for component models (RBD and
    /// fault trees) that carry a `sim` block, even when an analytic
    /// solve would also be possible. Has no effect on models without a
    /// `sim` block other than producing an error, which keeps a typo'd
    /// `--method sim` from silently solving analytically.
    pub simulate: bool,
    /// Replication cap for simulation, overriding the spec's
    /// `max_replications` when set.
    pub sim_replications: Option<usize>,
    /// Relative CI half-width stopping target for simulation,
    /// overriding the spec's `rel_precision` when set.
    pub sim_rel_precision: Option<f64>,
    /// Master seed for simulation, overriding the spec's `seed` when
    /// set. Results are a pure function of the seed and the model.
    pub sim_seed: Option<u64>,
    /// Worker threads for simulation replications: `1` is sequential,
    /// `0` means one worker per available CPU. Estimates are bitwise
    /// identical at any setting. A non-default value overrides the
    /// spec's `jobs` knob.
    pub sim_jobs: usize,
    /// Monte-Carlo samples for uncertainty models, overriding the
    /// spec's `samples` when set.
    pub uncert_samples: Option<usize>,
    /// Convergence tolerance for the hierarchy fixed-point sweep,
    /// overriding the spec's `tolerance` when set.
    pub fixed_point_tol: Option<f64>,
    /// Cut-set truncation order for bounds models, overriding the
    /// spec's `truncation_order` when set.
    pub truncation_order: Option<usize>,
    /// Worker threads for the hierarchy per-sweep submodel solve: `1`
    /// is sequential, `0` means one worker per available CPU. Results
    /// are bitwise identical at any setting. A non-default value
    /// overrides the spec's `jobs` knob.
    pub hier_jobs: usize,
    /// Worker threads for the BDD kernel's partitioned parallel apply
    /// (fault-tree, RBD and bounds models): `1` is sequential, `0`
    /// means one worker per available CPU. The compiled BDD is
    /// canonical, so probabilities are bitwise identical at any
    /// setting.
    pub bdd_jobs: usize,
    /// Forces the streaming large-model tier for SPN models: generator
    /// rows are regenerated from the marking arena on demand instead of
    /// being materialized in CSR. Results match the materialized path
    /// to iterative-solver accuracy; memory drops from `O(arcs)` to the
    /// budgeted slice cache.
    pub stream: bool,
    /// Total byte budget for the streaming tier (row source, iteration
    /// vectors and slice cache combined). `None` means unlimited. A
    /// budget the exact streaming solve cannot meet escalates to the
    /// aggregation bounds path. Setting a budget also auto-escalates
    /// non-stream SPN solves to the streaming tier when the projected
    /// materialized size exceeds it.
    pub mem_budget: Option<usize>,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            tolerance: 1e-12,
            max_iterations: 20_000,
            steady_solver: SteadySolver::Auto,
            transient_jobs: 1,
            var_order: VarOrder::Auto,
            ite_cache_capacity: 0,
            gc_node_threshold: 0,
            reach_jobs: 1,
            simulate: false,
            sim_replications: None,
            sim_rel_precision: None,
            sim_seed: None,
            sim_jobs: 1,
            uncert_samples: None,
            fixed_point_tol: None,
            truncation_order: None,
            hier_jobs: 1,
            bdd_jobs: 1,
            stream: false,
            mem_budget: None,
        }
    }
}

impl SolveOptions {
    /// Sets the convergence tolerance.
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Sets the iteration budget.
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Selects the CTMC steady-state method.
    #[must_use]
    pub fn with_steady_solver(mut self, solver: SteadySolver) -> Self {
        self.steady_solver = solver;
        self
    }

    /// Sets the transient-sweep thread count.
    #[must_use]
    pub fn with_transient_jobs(mut self, jobs: usize) -> Self {
        self.transient_jobs = jobs;
        self
    }

    /// Selects the BDD variable ordering for fault-tree models.
    #[must_use]
    pub fn with_var_order(mut self, order: VarOrder) -> Self {
        self.var_order = order;
        self
    }

    /// Bounds the ITE computed-cache size (entries; `0` = default).
    #[must_use]
    pub fn with_ite_cache_capacity(mut self, capacity: usize) -> Self {
        self.ite_cache_capacity = capacity;
        self
    }

    /// Sets the BDD garbage-collection threshold (`0` = default).
    #[must_use]
    pub fn with_gc_node_threshold(mut self, threshold: usize) -> Self {
        self.gc_node_threshold = threshold;
        self
    }

    /// Sets the SPN reachability worker count (`0` = all CPUs).
    #[must_use]
    pub fn with_reach_jobs(mut self, jobs: usize) -> Self {
        self.reach_jobs = jobs;
        self
    }

    /// Forces discrete-event simulation for component models.
    #[must_use]
    pub fn with_simulate(mut self, simulate: bool) -> Self {
        self.simulate = simulate;
        self
    }

    /// Caps simulation replications, overriding the spec.
    #[must_use]
    pub fn with_sim_replications(mut self, replications: usize) -> Self {
        self.sim_replications = Some(replications);
        self
    }

    /// Sets the simulation stopping precision, overriding the spec.
    #[must_use]
    pub fn with_sim_rel_precision(mut self, rel_precision: f64) -> Self {
        self.sim_rel_precision = Some(rel_precision);
        self
    }

    /// Sets the simulation master seed, overriding the spec.
    #[must_use]
    pub fn with_sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = Some(seed);
        self
    }

    /// Sets the simulation worker count (`0` = all CPUs).
    #[must_use]
    pub fn with_sim_jobs(mut self, jobs: usize) -> Self {
        self.sim_jobs = jobs;
        self
    }

    /// Sets the uncertainty Monte-Carlo sample count, overriding the
    /// spec.
    #[must_use]
    pub fn with_uncert_samples(mut self, samples: usize) -> Self {
        self.uncert_samples = Some(samples);
        self
    }

    /// Sets the hierarchy fixed-point tolerance, overriding the spec.
    #[must_use]
    pub fn with_fixed_point_tol(mut self, tolerance: f64) -> Self {
        self.fixed_point_tol = Some(tolerance);
        self
    }

    /// Sets the bounds truncation order, overriding the spec.
    #[must_use]
    pub fn with_truncation_order(mut self, order: usize) -> Self {
        self.truncation_order = Some(order);
        self
    }

    /// Sets the hierarchy sweep worker count (`0` = all CPUs).
    #[must_use]
    pub fn with_hier_jobs(mut self, jobs: usize) -> Self {
        self.hier_jobs = jobs;
        self
    }

    /// Sets the BDD apply worker count (`1` = sequential, `0` = all
    /// CPUs).
    #[must_use]
    pub fn with_bdd_jobs(mut self, jobs: usize) -> Self {
        self.bdd_jobs = jobs;
        self
    }

    /// Forces the streaming large-model tier for SPN models.
    #[must_use]
    pub fn with_stream(mut self, stream: bool) -> Self {
        self.stream = stream;
        self
    }

    /// Sets the streaming tier's total byte budget.
    #[must_use]
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Some(bytes);
        self
    }
}

/// BDD variable-ordering selection for fault-tree solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum VarOrder {
    /// Use the spec's `var_order` field if present, otherwise the
    /// depth-first heuristic (the recommended default).
    #[default]
    Auto,
    /// Declaration order of the `events` array — the pre-heuristic
    /// behavior, for reproducing historical results.
    Input,
    /// Depth-first traversal of the top gate: events near each other in
    /// the tree get adjacent BDD levels.
    DepthFirst,
    /// Top-down weight heuristic: events reachable through short,
    /// narrow gate paths order first.
    Weighted,
    /// Depth-first initial order refined by sifting (dynamic
    /// reordering). Smallest BDDs, highest compile cost.
    Sift,
}

impl VarOrder {
    /// Parses the CLI / JSON spelling (`"auto"`, `"input"`, `"dfs"`,
    /// `"weighted"`, `"sift"`).
    pub fn parse(s: &str) -> Option<VarOrder> {
        match s {
            "auto" => Some(VarOrder::Auto),
            "input" | "declaration" => Some(VarOrder::Input),
            "dfs" | "depth_first" => Some(VarOrder::DepthFirst),
            "weighted" => Some(VarOrder::Weighted),
            "sift" => Some(VarOrder::Sift),
            _ => None,
        }
    }

    /// The canonical spelling, as accepted by [`VarOrder::parse`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            VarOrder::Auto => "auto",
            VarOrder::Input => "input",
            VarOrder::DepthFirst => "dfs",
            VarOrder::Weighted => "weighted",
            VarOrder::Sift => "sift",
        }
    }
}

/// CTMC steady-state method selection, mirroring
/// `reliab_markov::SteadyStateMethod` but carrying no numeric options
/// (those come from [`SolveOptions`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum SteadySolver {
    /// GTH for small chains, SOR for large ones (the historical
    /// behavior). Iterative tolerances under `Auto` are the library
    /// defaults, not the [`SolveOptions`] values.
    #[default]
    Auto,
    /// Dense Grassmann–Taksar–Heyman elimination.
    Gth,
    /// Gauss–Seidel sweeps on the sparse generator.
    Sor,
    /// Power iteration on the uniformized DTMC.
    Power,
}

/// Telemetry recorded while solving one specification.
#[derive(Debug, Clone, PartialEq, Default)]
#[non_exhaustive]
pub struct SolveStats {
    /// Wall-clock time of the whole solve (parse excluded).
    pub wall_time: Duration,
    /// Solver work performed: sweeps plus matrix–vector products for
    /// Markov models, ITE operations for BDD-based combinatorial
    /// models.
    pub iterations: usize,
    /// Final convergence residual of the steady-state solve, when an
    /// iterative method ran (GTH is direct and reports `Some(0.0)`).
    pub residual: Option<f64>,
    /// The steady-state method that actually ran (`"gth"`, `"sor"`,
    /// `"power"`), for CTMC models.
    pub method: Option<&'static str>,
    /// BDD arena size after the solve, for BDD-based models.
    pub bdd_nodes: Option<usize>,
    /// ITE computed-cache lookups, for BDD-based models.
    pub bdd_cache_lookups: Option<u64>,
    /// ITE computed-cache hits, for BDD-based models.
    pub bdd_cache_hits: Option<u64>,
    /// ITE computed-cache evictions (bounded cache collisions), for
    /// BDD-based models.
    pub bdd_cache_evictions: Option<u64>,
    /// Garbage-collection passes run during the solve.
    pub bdd_gc_runs: Option<u64>,
    /// Nodes reclaimed by garbage collection during the solve.
    pub bdd_gc_reclaimed: Option<u64>,
    /// Adjacent-level swaps performed by sifting, when dynamic
    /// reordering ran.
    pub bdd_sift_swaps: Option<u64>,
    /// High-water mark of live BDD nodes during the solve.
    pub bdd_peak_live_nodes: Option<usize>,
    /// ITE computed-cache hit rate in `[0, 1]`, for BDD-based models.
    pub bdd_ite_hit_rate: Option<f64>,
    /// Live nodes relocated by compacting garbage collection (every GC
    /// pass compacts; `bdd_gc_runs` is the compaction count).
    pub bdd_gc_moved: Option<u64>,
    /// ITE calls dispatched to the work-partitioned parallel apply.
    pub bdd_par_apply_calls: Option<u64>,
    /// Worker threads the BDD apply was configured with.
    pub bdd_workers: Option<usize>,
    /// Tangible markings in the generated state space, for SPN models.
    pub spn_markings: Option<usize>,
    /// CTMC transitions in the generated state space, for SPN models.
    pub spn_arcs: Option<usize>,
    /// Vanishing (immediate) markings eliminated on the fly, for SPN
    /// models.
    pub spn_vanishing_eliminated: Option<u64>,
    /// Largest intern-table shard occupancy, for SPN models.
    pub spn_shard_max_occupancy: Option<usize>,
    /// Worker threads the reachability generation actually used, for
    /// SPN models.
    pub spn_reach_workers: Option<usize>,
    /// Replications the simulation actually ran, for simulated models.
    pub sim_replications: Option<usize>,
    /// Total simulated events across all replications, for simulated
    /// models.
    pub sim_events: Option<u64>,
    /// Stopping-rule rounds the simulation evaluated, for simulated
    /// models.
    pub sim_rounds: Option<usize>,
    /// Final relative CI half-width, for simulated models.
    pub sim_rel_half_width: Option<f64>,
    /// Worker threads the simulation actually used, for simulated
    /// models.
    pub sim_workers: Option<usize>,
    /// Whether the stopping rule converged before the replication cap,
    /// for simulated models.
    pub sim_converged: Option<bool>,
    /// Fixed-point sweeps performed, for hierarchy models.
    pub hier_iterations: Option<usize>,
    /// Final fixed-point residual, for hierarchy models.
    pub hier_residual: Option<f64>,
    /// Worker threads the fixed-point sweep actually used, for
    /// hierarchy models.
    pub hier_workers: Option<usize>,
    /// Phases in the CTMC expansion used for interval availability,
    /// for semi-Markov models.
    pub smp_expanded_states: Option<usize>,
    /// Monte-Carlo samples actually drawn, for uncertainty models.
    pub uncert_samples: Option<usize>,
    /// Worker threads the Monte-Carlo sweep actually used, for
    /// uncertainty models.
    pub uncert_workers: Option<usize>,
    /// Cut sets used, for bounds models.
    pub bounds_cut_sets: Option<usize>,
    /// Truncation order the bounds were computed at, for bounds
    /// models.
    pub bounds_truncation_order: Option<usize>,
    /// Column blocks the streaming steady-state sweep used, when the
    /// streaming tier ran.
    pub stream_blocks: Option<usize>,
    /// Blocks whose column slice stayed cached across sweeps (the rest
    /// were recomputed from the row source every sweep), when the
    /// streaming tier ran.
    pub stream_cached_blocks: Option<usize>,
    /// Planner's peak-resident estimate in bytes (row source, vectors
    /// and slice cache), when the streaming tier ran.
    pub stream_peak_bytes: Option<u64>,
    /// Whether the memory budget forced escalation from the exact
    /// streaming solve to the aggregation bounds path.
    pub stream_bounded: Option<bool>,
    /// Width of the reward bracket, when the bounds escalation ran.
    pub stream_bound_gap: Option<f64>,
}

impl SolveStats {
    /// Serializes to the JSON stats object emitted by the CLI.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let opt_num = |x: Option<f64>| x.map_or(JsonValue::Null, JsonValue::Number);
        json::object(vec![
            (
                "wall_time_ms",
                JsonValue::Number(self.wall_time.as_secs_f64() * 1e3),
            ),
            ("iterations", JsonValue::Number(self.iterations as f64)),
            ("residual", opt_num(self.residual)),
            (
                "method",
                self.method.map_or(JsonValue::Null, JsonValue::from),
            ),
            ("bdd_nodes", opt_num(self.bdd_nodes.map(|n| n as f64))),
            (
                "bdd_cache_lookups",
                opt_num(self.bdd_cache_lookups.map(|n| n as f64)),
            ),
            (
                "bdd_cache_hits",
                opt_num(self.bdd_cache_hits.map(|n| n as f64)),
            ),
            (
                "bdd_cache_evictions",
                opt_num(self.bdd_cache_evictions.map(|n| n as f64)),
            ),
            ("bdd_gc_runs", opt_num(self.bdd_gc_runs.map(|n| n as f64))),
            (
                "bdd_gc_reclaimed",
                opt_num(self.bdd_gc_reclaimed.map(|n| n as f64)),
            ),
            (
                "bdd_sift_swaps",
                opt_num(self.bdd_sift_swaps.map(|n| n as f64)),
            ),
            (
                "bdd_peak_live_nodes",
                opt_num(self.bdd_peak_live_nodes.map(|n| n as f64)),
            ),
            ("bdd_ite_hit_rate", opt_num(self.bdd_ite_hit_rate)),
            ("bdd_gc_moved", opt_num(self.bdd_gc_moved.map(|n| n as f64))),
            (
                "bdd_par_apply_calls",
                opt_num(self.bdd_par_apply_calls.map(|n| n as f64)),
            ),
            ("bdd_workers", opt_num(self.bdd_workers.map(|n| n as f64))),
            ("spn_markings", opt_num(self.spn_markings.map(|n| n as f64))),
            ("spn_arcs", opt_num(self.spn_arcs.map(|n| n as f64))),
            (
                "spn_vanishing_eliminated",
                opt_num(self.spn_vanishing_eliminated.map(|n| n as f64)),
            ),
            (
                "spn_shard_max_occupancy",
                opt_num(self.spn_shard_max_occupancy.map(|n| n as f64)),
            ),
            (
                "spn_reach_workers",
                opt_num(self.spn_reach_workers.map(|n| n as f64)),
            ),
            (
                "sim_replications",
                opt_num(self.sim_replications.map(|n| n as f64)),
            ),
            ("sim_events", opt_num(self.sim_events.map(|n| n as f64))),
            ("sim_rounds", opt_num(self.sim_rounds.map(|n| n as f64))),
            ("sim_rel_half_width", opt_num(self.sim_rel_half_width)),
            ("sim_workers", opt_num(self.sim_workers.map(|n| n as f64))),
            (
                "sim_converged",
                self.sim_converged.map_or(JsonValue::Null, JsonValue::Bool),
            ),
            (
                "hier_iterations",
                opt_num(self.hier_iterations.map(|n| n as f64)),
            ),
            ("hier_residual", opt_num(self.hier_residual)),
            ("hier_workers", opt_num(self.hier_workers.map(|n| n as f64))),
            (
                "smp_expanded_states",
                opt_num(self.smp_expanded_states.map(|n| n as f64)),
            ),
            (
                "uncert_samples",
                opt_num(self.uncert_samples.map(|n| n as f64)),
            ),
            (
                "uncert_workers",
                opt_num(self.uncert_workers.map(|n| n as f64)),
            ),
            (
                "bounds_cut_sets",
                opt_num(self.bounds_cut_sets.map(|n| n as f64)),
            ),
            (
                "bounds_truncation_order",
                opt_num(self.bounds_truncation_order.map(|n| n as f64)),
            ),
            (
                "stream_blocks",
                opt_num(self.stream_blocks.map(|n| n as f64)),
            ),
            (
                "stream_cached_blocks",
                opt_num(self.stream_cached_blocks.map(|n| n as f64)),
            ),
            (
                "stream_peak_bytes",
                opt_num(self.stream_peak_bytes.map(|n| n as f64)),
            ),
            (
                "stream_bounded",
                self.stream_bounded.map_or(JsonValue::Null, JsonValue::Bool),
            ),
            ("stream_bound_gap", opt_num(self.stream_bound_gap)),
        ])
    }
}

/// The result of solving one specification: the measures plus the
/// telemetry gathered while producing them.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SolveReport {
    /// The solved measures.
    pub measures: SolvedMeasures,
    /// Solver telemetry.
    pub stats: SolveStats,
}

impl SolveReport {
    /// Serializes as `{"measures": ..., "stats": ...}`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        json::object(vec![
            ("measures", self.measures.to_json()),
            ("stats", self.stats.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_options_match_historical_solver_settings() {
        let opts = SolveOptions::default();
        assert_eq!(opts.tolerance, 1e-12);
        assert_eq!(opts.max_iterations, 20_000);
        assert_eq!(opts.steady_solver, SteadySolver::Auto);
        assert_eq!(opts.transient_jobs, 1);
    }

    #[test]
    fn builders_compose() {
        let opts = SolveOptions::default()
            .with_tolerance(1e-8)
            .with_max_iterations(99)
            .with_steady_solver(SteadySolver::Gth)
            .with_transient_jobs(0);
        assert_eq!(opts.tolerance, 1e-8);
        assert_eq!(opts.max_iterations, 99);
        assert_eq!(opts.steady_solver, SteadySolver::Gth);
        assert_eq!(opts.transient_jobs, 0);
    }

    #[test]
    fn stats_serialize_with_nulls_for_absent_fields() {
        let stats = SolveStats::default();
        let text = stats.to_json().to_json();
        assert!(text.contains("\"residual\":null"));
        assert!(text.contains("\"iterations\":0"));
        assert!(text.contains("\"bdd_gc_runs\":null"));
        assert!(text.contains("\"bdd_peak_live_nodes\":null"));
    }

    #[test]
    fn var_order_round_trips_through_parse() {
        for order in [
            VarOrder::Auto,
            VarOrder::Input,
            VarOrder::DepthFirst,
            VarOrder::Weighted,
            VarOrder::Sift,
        ] {
            assert_eq!(VarOrder::parse(order.as_str()), Some(order));
        }
        assert_eq!(VarOrder::parse("declaration"), Some(VarOrder::Input));
        assert_eq!(VarOrder::parse("depth_first"), Some(VarOrder::DepthFirst));
        assert_eq!(VarOrder::parse("bogus"), None);
    }

    #[test]
    fn sim_builders_compose_and_default_off() {
        let opts = SolveOptions::default();
        assert!(!opts.simulate);
        assert_eq!(opts.sim_replications, None);
        assert_eq!(opts.sim_rel_precision, None);
        assert_eq!(opts.sim_seed, None);
        assert_eq!(opts.sim_jobs, 1);

        let opts = SolveOptions::default()
            .with_simulate(true)
            .with_sim_replications(512)
            .with_sim_rel_precision(0.01)
            .with_sim_seed(42)
            .with_sim_jobs(4);
        assert!(opts.simulate);
        assert_eq!(opts.sim_replications, Some(512));
        assert_eq!(opts.sim_rel_precision, Some(0.01));
        assert_eq!(opts.sim_seed, Some(42));
        assert_eq!(opts.sim_jobs, 4);
    }

    #[test]
    fn sim_stats_serialize_with_nulls_when_absent() {
        let stats = SolveStats::default();
        let text = stats.to_json().to_json();
        assert!(text.contains("\"sim_replications\":null"));
        assert!(text.contains("\"sim_converged\":null"));

        let stats = SolveStats {
            sim_replications: Some(128),
            sim_converged: Some(true),
            ..SolveStats::default()
        };
        let text = stats.to_json().to_json();
        assert!(text.contains("\"sim_replications\":128"));
        assert!(text.contains("\"sim_converged\":true"));
    }

    #[test]
    fn bdd_knob_builders_compose() {
        let opts = SolveOptions::default()
            .with_var_order(VarOrder::Sift)
            .with_ite_cache_capacity(1 << 12)
            .with_gc_node_threshold(4096);
        assert_eq!(opts.var_order, VarOrder::Sift);
        assert_eq!(opts.ite_cache_capacity, 1 << 12);
        assert_eq!(opts.gc_node_threshold, 4096);
    }
}
