//! # reliab-spec
//!
//! Declarative model specifications: the workspace's answer to
//! SHARPE's input language. Models (RBDs, fault trees, CTMCs,
//! reliability graphs) are written as JSON documents, validated,
//! solved, and reported — enabling version-controlled model files and
//! the `reliab-cli` batch solver without writing Rust.
//!
//! The primary entry point is [`solve_with`] (or [`solve_str_with`]
//! straight from JSON text): it takes a [`SolveOptions`] and returns a
//! [`SolveReport`] carrying both the solved measures and solver
//! telemetry — wall time, iteration counts, convergence residuals, and
//! BDD table sizes.
//!
//! ```
//! use reliab_spec::{solve_str_with, SolveOptions, SolvedMeasures};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! let spec = r#"{
//!   "rbd": {
//!     "components": [
//!       {"name": "pump-a", "availability": 0.99},
//!       {"name": "pump-b", "availability": 0.99},
//!       {"name": "valve",  "availability": 0.999}
//!     ],
//!     "structure": {"series": [{"parallel": ["pump-a", "pump-b"]}, "valve"]}
//!   }
//! }"#;
//! let report = solve_str_with(spec, &SolveOptions::default())?;
//! assert!(report.measures.availability().unwrap() > 0.998);
//! assert!(report.stats.iterations > 0);
//! match &report.measures {
//!     SolvedMeasures::Rbd { availability, .. } => assert!(*availability > 0.998),
//!     _ => unreachable!(),
//! }
//! # Ok(())
//! # }
//! ```
//!
//! [`SolveOptions`] selects the CTMC steady-state method
//! ([`SteadySolver::Gth`] vs. [`SteadySolver::Power`] vs.
//! [`SteadySolver::Sor`]), tolerances, iteration budgets, and the
//! number of threads used for transient time sweeps; its `Default`
//! reproduces the historical un-parameterized behavior exactly. For
//! solving many documents at once on a thread pool, see the
//! `reliab-engine` crate, which wraps this API in a batch front end
//! with memoization.
//!
//! The JSON grammar (one top-level key selects the model class):
//!
//! ```text
//! { "rbd": {
//!     "components": [ {"name": "...", "availability": 0.99}, ... ],
//!     "structure":  "name"
//!                 | {"series":   [structure, ...]}
//!                 | {"parallel": [structure, ...]}
//!                 | {"k_of_n": {"k": 2, "of": [structure, ...]}} } }
//!
//! { "fault_tree": {
//!     "events": [ {"name": "...", "probability": 0.01}, ... ],
//!     "top":    "name"
//!             | {"and": [gate, ...]}
//!             | {"or":  [gate, ...]}
//!             | {"k_of_n": {"k": 2, "of": [gate, ...]}} } }
//!
//! { "ctmc": {
//!     "states": ["up", "down", ...],
//!     "transitions": [ {"from": "up", "to": "down", "rate": 0.01}, ... ],
//!     "initial": "up",                  // optional, for mttf/transient
//!     "up_states": ["up"],              // optional, for availability
//!     "absorbing": ["down"],            // optional, for mttf
//!     "at_times": [100.0, 1000.0] } }   // optional, transient points
//!
//! { "rel_graph": {
//!     "nodes": ["s", "t", ...],
//!     "edges": [ {"name": "...", "from": "s", "to": "t",
//!                 "reliability": 0.99, "directed": false}, ... ],
//!     "source": "s", "sink": "t",
//!     "all_terminal": false } }
//!
//! { "spn": {
//!     "places": [ {"name": "queue", "tokens": 3}, ... ],
//!     "transitions": [
//!       {"name": "arrive", "rate": 1.5,            // timed, or:
//!        "inputs":     [{"place": "pool"}],         // count defaults to 1
//!        "outputs":    [{"place": "queue", "count": 1}],
//!        "inhibitors": [{"place": "queue", "count": 8}]},
//!       {"name": "route", "weight": 0.7, "priority": 1}, ... ],
//!     "max_markings": 1000000,          // optional, exploration cap
//!     "reach_jobs": 4,                  // optional, generation workers
//!     "shard_bits": 6,                  // optional, intern-table shards
//!     "expected_tokens": ["queue"],     // optional, steady-state measure
//!     "throughput": ["arrive"] } }      // optional, steady-state measure
//!
//! { "hierarchy": {
//!     "submodels": [
//!       {"name": "disk", "model": { ...any model document... },
//!        "measure": "availability",     // availability|unreliability|mttf|primary
//!        "initial": 1.0,                // optional fixed-point start
//!        "imports": [                   // optional parameter bindings
//!          {"from": "net", "path": "ctmc.transitions.0.rate"} ]}, ... ],
//!     "output": "disk",                 // optional, default last submodel
//!     "tolerance": 1e-10,               // optional fixed-point knobs
//!     "max_iterations": 10000, "damping": 1.0,
//!     "jobs": 1 } }                     // optional sweep workers (0 = CPUs)
//!
//! { "semi_markov": {
//!     "states": [ {"name": "up", "sojourn": {"weibull":
//!                   {"shape": 2.0, "scale": 1000.0}}}, ... ],
//!     "transitions": [ {"from": "up", "to": "down",
//!                       "probability": 1.0}, ... ],
//!     "initial": "up",                  // optional, for passage/interval
//!     "up_states": ["up"],              // optional, for availability
//!     "targets": ["down"],              // optional, mean first passage
//!     "interval_times": [100.0] } }     // optional, (1/t)∫A(u)du
//!
//! { "uncertainty": {
//!     "model": { ...any model document... },
//!     "parameters": [
//!       {"path": "ctmc.transitions.0.rate",
//!        "prior": {"rate_posterior": {"failures": 12, "total_time": 1e5}}
//!              // or any distribution: {"gamma": {"shape": ..., "rate": ...}}
//!       }, ... ],
//!     "measure": "availability",        // optional, default primary
//!     "samples": 1000, "level": 0.95,   // optional Monte-Carlo knobs
//!     "seed": 24301, "jobs": 0,
//!     "latin_hypercube": false } }
//!
//! { "bounds": {
//!     "events": [ {"name": "...", "probability": 0.01}, ... ],
//!     "cut_sets":  [["a", "b"], ...],
//!     "path_sets": [["a", "c"], ...],   // optional, enables EP bounds
//!     // or instead of the three above:
//!     "fault_tree": { ...fault_tree body... },
//!     "truncation_order": 2 } }         // optional
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod convert;
pub mod json;
mod report;
mod scenario;
mod schema;
pub mod wire;

pub use convert::{solve_str_with, solve_with, ImportanceRow, SolvedMeasures, TransientRow};
pub use report::{SolveOptions, SolveReport, SolveStats, SteadySolver, VarOrder};
pub use schema::{
    ArcSpec, BoundsEventSpec, BoundsSpec, CtmcSpec, DistSpec, EdgeSpec, EventSpec, FaultTreeSpec,
    GateSpec, HierarchySpec, ImportSpec, KOfNGateSpec, KOfNSpec, ModelSpec, PlaceSpec, PriorSpec,
    RbdComponentSpec, RbdSpec, RelGraphSpec, ScenarioMeasure, SemiMarkovSpec, SimSpec,
    SmpStateSpec, SmpTransitionSpec, SpnSolver, SpnSpec, SpnTimingSpec, SpnTransitionSpec,
    StructureSpec, SubmodelSpec, TransitionSpec, UncertainParamSpec, UncertaintySpec,
};
