//! # reliab-spec
//!
//! Declarative model specifications: the workspace's answer to
//! SHARPE's input language. Models (RBDs, fault trees, CTMCs) are
//! written as JSON documents, validated, solved, and reported —
//! enabling version-controlled model files and the `reliab-cli`
//! batch solver without writing Rust.
//!
//! ```
//! use reliab_spec::{solve_str, SolvedMeasures};
//!
//! # fn main() -> Result<(), reliab_core::Error> {
//! let spec = r#"{
//!   "rbd": {
//!     "components": [
//!       {"name": "pump-a", "availability": 0.99},
//!       {"name": "pump-b", "availability": 0.99},
//!       {"name": "valve",  "availability": 0.999}
//!     ],
//!     "structure": {"series": [{"parallel": ["pump-a", "pump-b"]}, "valve"]}
//!   }
//! }"#;
//! let solved = solve_str(spec)?;
//! match solved {
//!     SolvedMeasures::Rbd { availability, .. } => assert!(availability > 0.998),
//!     _ => unreachable!(),
//! }
//! # Ok(())
//! # }
//! ```
//!
//! The JSON grammar (one top-level key selects the model class):
//!
//! ```text
//! { "rbd": {
//!     "components": [ {"name": "...", "availability": 0.99}, ... ],
//!     "structure":  "name"
//!                 | {"series":   [structure, ...]}
//!                 | {"parallel": [structure, ...]}
//!                 | {"k_of_n": {"k": 2, "of": [structure, ...]}} } }
//!
//! { "fault_tree": {
//!     "events": [ {"name": "...", "probability": 0.01}, ... ],
//!     "top":    "name"
//!             | {"and": [gate, ...]}
//!             | {"or":  [gate, ...]}
//!             | {"k_of_n": {"k": 2, "of": [gate, ...]}} } }
//!
//! { "ctmc": {
//!     "states": ["up", "down", ...],
//!     "transitions": [ {"from": "up", "to": "down", "rate": 0.01}, ... ],
//!     "initial": "up",                  // optional, for mttf/transient
//!     "up_states": ["up"],              // optional, for availability
//!     "absorbing": ["down"],            // optional, for mttf
//!     "at_times": [100.0, 1000.0] } }   // optional, transient points
//!
//! { "rel_graph": {
//!     "nodes": ["s", "t", ...],
//!     "edges": [ {"name": "...", "from": "s", "to": "t",
//!                 "reliability": 0.99, "directed": false}, ... ],
//!     "source": "s", "sink": "t",
//!     "all_terminal": false } }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod convert;
mod schema;

pub use convert::{solve, solve_str, ImportanceRow, SolvedMeasures, TransientRow};
pub use schema::{
    CtmcSpec, EdgeSpec, EventSpec, FaultTreeSpec, GateSpec, KOfNGateSpec, KOfNSpec,
    ModelSpec, RbdComponentSpec, RbdSpec, RelGraphSpec, StructureSpec, TransitionSpec,
};
